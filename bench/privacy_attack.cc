// Empirical privacy: the strongest membership attacker vs the paper's
// sample-then-perturb release.
//
// The paper claims a "strengthened privacy guarantee" from combining
// sampling with the Laplace mechanism (Lemma 3.4).  This harness measures
// it: the optimal likelihood-ratio membership adversary attacks the release
// at several sampling probabilities, and its measured advantage is compared
// against both the raw-Laplace ceiling (e^eps-1)/(e^eps+1) and the
// amplified ceiling at eps' = ln(1 - p + p e^eps).
#include <iostream>

#include "bench_common.h"
#include "dp/amplification.h"
#include "dp/membership_attack.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const std::size_t trials = options.trials ? options.trials * 10000 : 60000;
  const std::size_t base_count = 30;

  std::cout << "Membership-inference attack vs the sampled Laplace release\n"
            << "# optimal likelihood-ratio attacker, " << base_count
            << " matching records, " << trials << " trials per cell\n\n";

  TextTable table({"epsilon", "p", "eps'(amplified)", "advantage",
                   "bound(eps')", "bound(eps)"});
  Rng rng(options.seed + 3);
  for (double epsilon : {0.5, 2.0}) {
    for (double p : {0.05, 0.1, 0.25, 0.5, 1.0}) {
      const auto result =
          dp::run_membership_attack(base_count, p, epsilon, trials, rng);
      const double eps_amp = dp::amplified_epsilon(epsilon, p);
      table.add_numeric_row({epsilon, p, eps_amp, result.advantage(),
                             dp::dp_advantage_bound(eps_amp),
                             dp::dp_advantage_bound(epsilon)});
    }
  }
  bench::emit(table, options);
  std::cout << "\n# shape check: the measured advantage always sits under\n"
            << "# BOTH bounds and tracks the amplified one: at p = 0.05 the\n"
            << "# strongest possible attacker is nearly blind even at\n"
            << "# eps = 2, while at p = 1 it approaches the Laplace\n"
            << "# ceiling - sampling itself is most of the privacy.\n";
  return 0;
}
