// Baseline comparison (paper §VI related work, made quantitative):
//
//   paper      — RankCounting samples + amplified Laplace (this paper),
//   hierarchy  — centralized dyadic tree with per-node noise
//                (the Zhang et al. [20] / Chan-Dwork style baseline),
//   sketch     — per-node equi-width histograms with per-bin Laplace noise
//                (each element lands in one bin, so per-node sensitivity 1:
//                a cheap distributed DP baseline).
//
// For each privacy level the harness reports the mean relative error over
// the standard query suite and the bytes each approach ships to the broker.
#include <iostream>

#include "bench_common.h"
#include "common/statistics.h"
#include "dp/hierarchical.h"
#include "dp/laplace_mechanism.h"
#include "estimator/histogram_sketch.h"
#include "query/workload.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const std::size_t trials = options.trials ? options.trials : 20;
  const std::size_t kNodes = 8;
  const double p = 0.15;           // paper approach's sampling probability
  const std::size_t kBins = 64;    // sketch resolution
  const std::size_t kLevels = 10;  // tree resolution (1024 leaves)

  const auto records = bench::load_records(options);
  const data::Dataset dataset(records);
  const auto& column = dataset.column(data::AirQualityIndex::kOzone);
  const auto suite = query::default_evaluation_suite(column);
  const double lo = column.min();
  const double hi = column.max() + 1e-9;
  const std::size_t n = column.size();

  std::cout << "DP range-counting baselines on ozone (|D|=" << n << ", k="
            << kNodes << ", " << trials << " trials)\n"
            << "# paper: p=" << p << " samples + Lap(1/p / eps);"
            << " hierarchy: " << kLevels << "-level dyadic tree;"
            << " sketch: " << kBins << " bins/node + Lap(1/eps)/bin\n\n";

  // Node partition shared by the distributed approaches.
  Rng part_rng(options.seed);
  const auto node_values = data::partition_values(
      column.values(), kNodes, data::PartitionStrategy::kRoundRobin,
      part_rng);

  TextTable table({"epsilon", "err_paper", "err_hierarchy", "err_hier_dist",
                   "err_sketch", "bytes_paper", "bytes_hierarchy",
                   "bytes_sketch"});
  Rng rng(options.seed + 1);
  for (double epsilon : {0.1, 0.5, 1.0, 2.0, 8.0}) {
    RunningStats err_paper, err_tree, err_tree_dist, err_sketch;
    std::size_t bytes_paper = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      // Paper approach: sampled network + Laplace at expected sensitivity.
      auto network =
          bench::make_network(column, kNodes, options.seed + 101 * t);
      network.ensure_sampling_probability(p);
      bytes_paper = network.stats().uplink_bytes;
      const dp::LaplaceMechanism paper_mech(1.0 / p, epsilon);

      // Hierarchical tree over the centralized raw data.
      dp::HierarchicalConfig tree_config;
      tree_config.levels = kLevels;
      tree_config.epsilon = epsilon;
      const dp::HierarchicalMechanism tree(column.values(), lo, hi,
                                           tree_config, rng);

      // Distributed variant: each node builds its OWN noisy tree over its
      // local data (node data is disjoint, so epsilon holds per node) and
      // the broker sums the k noisy answers — no raw data leaves a node,
      // at k times the noise variance.
      std::vector<dp::HierarchicalMechanism> node_trees;
      node_trees.reserve(kNodes);
      for (const auto& vals : node_values) {
        node_trees.emplace_back(vals, lo, hi, tree_config, rng);
      }

      // Distributed noisy sketches.
      const dp::LaplaceMechanism bin_noise(1.0, epsilon);
      estimator::HistogramSketch merged(lo, hi, kBins);
      for (const auto& vals : node_values) {
        estimator::HistogramSketch sketch(vals, lo, hi, kBins);
        merged.merge(sketch);
      }
      // Per-node per-bin noise aggregates to k draws per bin; draw them on
      // the merged sketch equivalently by perturbing each bin query below.

      for (const auto& q : suite) {
        const double truth = static_cast<double>(
            column.exact_range_count(q.lower, q.upper));
        if (truth < static_cast<double>(n) * 0.05) continue;
        err_paper.add(bench::relative_error(
            paper_mech.perturb(network.rank_counting_estimate(q), rng),
            truth));
        err_tree.add(bench::relative_error(tree.query(q), truth));
        double distributed_answer = 0.0;
        for (const auto& node_tree : node_trees) {
          distributed_answer += node_tree.query(q);
        }
        err_tree_dist.add(bench::relative_error(distributed_answer, truth));
        // Sketch estimate + k * (#bins overlapped) worth of noise; emulate
        // by adding one Laplace draw per node (independent noise sums).
        double sketch_answer = merged.estimate(q);
        for (std::size_t node = 0; node < kNodes; ++node) {
          sketch_answer += bin_noise.perturb(0.0, rng);
        }
        err_sketch.add(bench::relative_error(sketch_answer, truth));
      }
    }
    table.add_row(
        {table.format(epsilon), table.format(err_paper.mean()),
         table.format(err_tree.mean()), table.format(err_tree_dist.mean()),
         table.format(err_sketch.mean()), std::to_string(bytes_paper),
         std::to_string(n * sizeof(double)),
         std::to_string(kNodes * kBins * sizeof(double))});
  }
  bench::emit(table, options);
  std::cout << "\n# shape check: at tight epsilon the paper's approach and\n"
            << "# the sketch (low-sensitivity releases) beat the tree (noise\n"
            << "# scales with depth); the tree's snapping error floors it\n"
            << "# at large epsilon; the sketch floors at its bin-skew error;\n"
            << "# the paper ships ~20x fewer bytes than centralizing raw\n"
            << "# data and keeps a tunable accuracy knob.\n";
  return 0;
}
