// Figure 3: querying accuracy vs the accuracy parameters (alpha, delta).
//
// Paper setup: "the accuracy is computed while alpha and delta increase from
// 0.08 to 0.8", with the narrative that the max relative error oscillates
// for delta < 0.3 and stabilizes at a low level for delta > 0.3.  That shape
// is driven by delta's effect on the Theorem 3.3 sampling probability
// (p ~ 1/sqrt(1-delta): more confidence -> more samples -> sharper
// estimates), so the primary sweep here varies delta at the paper's Fig. 4
// alpha (0.055).  A companion sweep varies alpha at fixed delta, where the
// contract loosens and the error budget grows instead.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "common/statistics.h"
#include "estimator/accuracy.h"
#include "query/workload.h"

namespace {

using namespace prc;

struct SweepResult {
  double p = 0.0;
  double max_err = 0.0;
  double mean_err = 0.0;
  double max_err_over_n = 0.0;  // contract metric: |error| / |D|
  double contract_hit_rate = 0.0;
};

SweepResult run_point(const data::Column& column,
                      const std::vector<query::RangeQuery>& suite,
                      const query::AccuracySpec& spec, std::size_t nodes,
                      std::size_t trials, std::uint64_t seed) {
  const std::size_t n = column.size();
  SweepResult result;
  result.p = std::min(
      1.0, estimator::required_sampling_probability(spec, nodes, n));
  RunningStats err_stats, norm_stats;
  std::size_t contract_checks = 0, contract_hits = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    auto network = bench::make_network(column, nodes, seed + 31 * t + 7);
    network.ensure_sampling_probability(result.p);
    for (const auto& q : suite) {
      const double truth = static_cast<double>(
          column.exact_range_count(q.lower, q.upper));
      const double estimate = network.rank_counting_estimate(q);
      const double abs_err = std::abs(estimate - truth);
      norm_stats.add(abs_err / static_cast<double>(n));
      ++contract_checks;
      if (abs_err <= spec.alpha * static_cast<double>(n)) ++contract_hits;
      // Per-query relative error only makes sense at decent selectivity.
      if (truth >= static_cast<double>(n) * 0.25) {
        err_stats.add(abs_err / truth);
      }
    }
  }
  result.max_err = err_stats.max();
  result.mean_err = err_stats.mean();
  result.max_err_over_n = norm_stats.max();
  result.contract_hit_rate = static_cast<double>(contract_hits) /
                             static_cast<double>(contract_checks);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  const std::size_t trials = options.trials ? options.trials : 20;
  const std::size_t kNodes = 8;

  const auto records = bench::load_records(options);
  const data::Dataset dataset(records);
  const auto& column = dataset.column(data::AirQualityIndex::kOzone);
  const auto suite = query::default_evaluation_suite(column);

  std::cout << "Figure 3a: max relative error vs delta (alpha = 0.055, "
               "p from Thm 3.3)\n"
            << "# index=ozone, k=" << kNodes << ", |D|=" << column.size()
            << ", " << trials << " trials per point\n\n";
  TextTable delta_table({"delta", "p(Thm3.3)", "max_rel_err",
                         "mean_rel_err", "max_err/n", "contract_hit"});
  for (double delta = 0.08; delta <= 0.801; delta += 0.06) {
    const auto r = run_point(column, suite, {0.055, delta}, kNodes, trials,
                             options.seed);
    delta_table.add_numeric_row({delta, r.p, r.max_err, r.mean_err,
                                 r.max_err_over_n, r.contract_hit_rate});
  }
  bench::emit(delta_table, options);

  std::cout << "\nFigure 3b: max relative error vs alpha (delta = 0.5)\n\n";
  TextTable alpha_table({"alpha", "p(Thm3.3)", "max_rel_err",
                         "mean_rel_err", "max_err/n", "contract_hit"});
  for (double alpha = 0.08; alpha <= 0.801; alpha += 0.06) {
    const auto r = run_point(column, suite, {alpha, 0.5}, kNodes, trials,
                             options.seed + 1);
    alpha_table.add_numeric_row({alpha, r.p, r.max_err, r.mean_err,
                                 r.max_err_over_n, r.contract_hit_rate});
  }
  bench::emit(alpha_table, options);

  std::cout << "\n# paper shape check (3a): error is largest and noisiest\n"
            << "# for small delta and decreases/stabilizes past ~0.3 as the\n"
            << "# Thm 3.3 probability grows with 1/sqrt(1-delta).\n"
            << "# (3b): loosening alpha shrinks p, so the realized error\n"
            << "# grows with alpha while always honoring the contract.\n";
  return 0;
}
