// Section IV / Example 4.1: arbitrage attack economics.
//
// For several pricing functions and several target contracts, search for
// the best m-query averaging attack and report honest price vs attack cost.
// The Theorem 4.2 family (q = 1) must never lose money; the steep discount
// (q = 2) must lose badly; the linear discount sheet is not variance-keyed
// (property 1 fails) though plain averaging does not beat it.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "pricing/arbitrage.h"
#include "pricing/pricing.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const auto records = bench::load_records(options);
  const std::size_t kNodes = 8;
  const pricing::VarianceModel model(records.size(), kNodes);
  const query::AccuracySpec reference{0.1, 0.5};

  std::cout << "Example 4.1: best averaging attack per pricing function\n\n";

  struct NamedPricing {
    std::string label;
    std::unique_ptr<pricing::PricingFunction> fn;
  };
  std::vector<NamedPricing> pricings;
  pricings.push_back({"psi(V)=c/V (Thm 4.2, q=1)",
                      std::make_unique<pricing::InverseVariancePricing>(
                          model, reference, 100.0, 1.0)});
  pricings.push_back({"psi(V)=c/V^2 (steep, q=2)",
                      std::make_unique<pricing::InverseVariancePricing>(
                          model, reference, 100.0, 2.0)});
  pricings.push_back({"linear discount sheet",
                      std::make_unique<pricing::LinearDiscountPricing>(
                          1.0, 100.0, 50.0)});

  const std::vector<query::AccuracySpec> targets = {
      {0.05, 0.9}, {0.05, 0.7}, {0.10, 0.8}, {0.02, 0.5}};

  const pricing::AttackSimulator simulator(model);
  TextTable table({"pricing", "target", "honest", "attack_cost", "copies",
                   "weak_contract", "savings"});
  for (const auto& named : pricings) {
    for (const auto& target : targets) {
      const auto result = simulator.best_attack(*named.fn, target);
      table.add_row(
          {named.label, target.to_string(),
           table.format(result.honest_price),
           table.format(result.best_attack_cost),
           std::to_string(result.copies),
           result.copies ? result.weaker_spec.to_string() : "-",
           table.format(result.savings())});
    }
  }
  bench::emit(table, options);

  std::cout << "\nTheorem 4.2 property check per pricing function\n\n";
  const pricing::ArbitrageChecker checker(model);
  TextTable check_table(
      {"pricing", "checks", "arbitrage_avoiding", "first_violation"});
  for (const auto& named : pricings) {
    const auto report = checker.check(*named.fn);
    check_table.add_row(
        {named.label, std::to_string(report.checks_performed),
         report.arbitrage_avoiding ? "yes" : "NO",
         report.violations.empty() ? "-"
                                   : report.violations.front().to_string()});
  }
  bench::emit(check_table, options);
  std::cout << "\n# paper shape check: only the q=1 family passes both the\n"
            << "# attack search and the Theorem 4.2 property grid.\n";
  return 0;
}
