// Figure 5: querying accuracy vs privacy budget epsilon, p = 0.4,
// one series per air-quality index (5 series, as in the paper).
//
// Paper setup: epsilon from 0.01 to 8, Laplace noise with the expected
// sensitivity 1/p added to the RankCounting estimate.  Expected shape:
// relative error decreases as epsilon grows (less privacy, more utility);
// at epsilon = 0.1 the paper reports the error still bounded under ~8% for
// all five indexes.
#include <iostream>

#include "bench_common.h"
#include "common/statistics.h"
#include "dp/laplace_mechanism.h"
#include "query/workload.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const std::size_t trials = options.trials ? options.trials : 30;
  const std::size_t kNodes = 8;
  const double p = 0.4;

  const auto records = bench::load_records(options);
  const data::Dataset dataset(records);

  std::cout << "Figure 5: mean relative error vs epsilon (p = 0.4), one "
               "column per air-quality index\n"
            << "# Laplace noise at expected sensitivity 1/p; k=" << kNodes
            << ", " << trials << " trials per point\n\n";

  std::vector<std::string> header = {"epsilon"};
  for (auto index : data::kAllAirQualityIndexes) {
    header.emplace_back(data::index_name(index));
  }
  TextTable table(std::move(header));

  const std::vector<double> epsilons = {0.01, 0.02, 0.05, 0.1, 0.2,
                                        0.5,  1.0,  2.0,  4.0, 8.0};
  const double sensitivity = 1.0 / p;

  // One sampled network per index, reused across the epsilon sweep (the
  // noise dominates; re-sampling per epsilon would only add variance).
  Rng noise_rng(options.seed + 5);
  for (double epsilon : epsilons) {
    std::vector<double> row = {epsilon};
    for (auto index : data::kAllAirQualityIndexes) {
      const auto& column = dataset.column(index);
      const auto suite = query::default_evaluation_suite(column);
      auto network = bench::make_network(
          column, kNodes,
          options.seed + 13 * static_cast<std::uint64_t>(index));
      network.ensure_sampling_probability(p);
      const dp::LaplaceMechanism mechanism(sensitivity, epsilon);
      RunningStats err_stats;
      for (std::size_t t = 0; t < trials; ++t) {
        for (const auto& q : suite) {
          const double truth = static_cast<double>(
              column.exact_range_count(q.lower, q.upper));
          if (truth < static_cast<double>(column.size()) * 0.05) continue;
          const double noisy = mechanism.perturb(
              network.rank_counting_estimate(q), noise_rng);
          err_stats.add(bench::relative_error(noisy, truth));
        }
      }
      row.push_back(err_stats.mean());
    }
    table.add_numeric_row(row);
  }
  bench::emit(table, options);
  std::cout << "\n# paper shape check: error falls monotonically (up to\n"
            << "# noise) as epsilon grows; by epsilon ~ 0.1 every index\n"
            << "# should sit in the single-digit-percent range, flattening\n"
            << "# at the pure-sampling error for large epsilon.\n";
  return 0;
}
