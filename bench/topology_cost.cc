// Topology ablation: flat model vs tree model (the paper's "easily extended
// to a general tree model" claim, made measurable).
//
// Collection cost of one Theorem 3.3 sampling round under: the flat network,
// balanced trees of several fanouts with in-network frame aggregation, and
// the naive store-and-forward tree baseline.  Estimates are identical across
// topologies (the estimator sees the same samples); only bytes differ.
#include <iostream>

#include "bench_common.h"
#include "iot/network.h"
#include "estimator/accuracy.h"
#include "iot/tree_network.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const std::size_t kNodes = 64;

  const auto records = bench::load_records(options);
  const data::Dataset dataset(records);
  const auto& column = dataset.column(data::AirQualityIndex::kOzone);
  const query::AccuracySpec spec{0.03, 0.8};
  const double p = std::min(1.0, estimator::required_sampling_probability(
                                     spec, kNodes, column.size()));

  std::cout << "Topology cost for one sampling round: contract "
            << spec.to_string() << ", p = " << p << ", k = " << kNodes
            << " nodes\n\n";

  Rng rng(options.seed);
  auto node_data = data::partition_values(
      column.values(), kNodes, data::PartitionStrategy::kRoundRobin, rng);

  TextTable table({"topology", "height", "uplink_bytes", "uplink_frames",
                   "samples", "estimate[40,120]"});
  const query::RangeQuery probe{40.0, 120.0};

  {
    iot::NetworkConfig config;
    config.seed = options.seed + 1;
    iot::FlatNetwork flat(node_data, config);
    flat.ensure_sampling_probability(p);
    table.add_row({"flat", "1",
                   std::to_string(flat.stats().uplink_bytes),
                   std::to_string(flat.stats().uplink_messages),
                   std::to_string(flat.stats().samples_transferred),
                   table.format(flat.rank_counting_estimate(probe))});
  }
  for (std::size_t fanout : {16, 4, 2}) {
    for (bool aggregate : {true, false}) {
      iot::TreeConfig config;
      config.fanout = fanout;
      config.aggregate_frames = aggregate;
      config.seed = options.seed + 1;
      iot::TreeNetwork tree(node_data, config);
      tree.ensure_sampling_probability(p);
      table.add_row(
          {"tree f=" + std::to_string(fanout) +
               (aggregate ? " (aggregated)" : " (store&fwd)"),
           std::to_string(tree.height()),
           std::to_string(tree.stats().uplink_bytes),
           std::to_string(tree.stats().uplink_messages),
           std::to_string(tree.stats().samples_transferred),
           table.format(tree.rank_counting_estimate(probe))});
    }
  }
  bench::emit(table, options);

  std::cout << "\nPer-level traffic (tree f=2, aggregated)\n\n";
  iot::TreeConfig config;
  config.fanout = 2;
  config.seed = options.seed + 1;
  iot::TreeNetwork tree(node_data, config);
  tree.ensure_sampling_probability(p);
  TextTable levels({"level(depth)", "links_crossed", "bytes"});
  const auto& stats = tree.level_stats();
  for (std::size_t l = 1; l < stats.size(); ++l) {
    levels.add_row({std::to_string(l), std::to_string(stats[l].links_crossed),
                    std::to_string(stats[l].bytes)});
  }
  bench::emit(levels, options);
  std::cout << "\n# shape check: identical estimates everywhere; deeper\n"
            << "# trees pay more relay bytes; aggregation undercuts\n"
            << "# store-and-forward; traffic concentrates near the root.\n";
  return 0;
}
