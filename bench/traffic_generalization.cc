// Generalization check: the paper's pipeline on a second smart-city domain.
//
// The introduction motivates range counting over "particulate matter level,
// traffic volume or weather data"; this harness re-runs the Fig. 2 sweep on
// synthetic loop-detector traffic counts — a discrete, zero-inflated,
// right-skewed distribution, unlike the smooth AQI levels — and verifies
// the error/probability shape carries over unchanged.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "common/statistics.h"
#include "data/traffic.h"
#include "query/workload.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const std::size_t trials = options.trials ? options.trials : 20;
  const std::size_t kNodes = 8;

  data::TrafficConfig config;
  config.seed = options.seed + 1;
  const auto counts = data::TrafficGenerator(config).generate_counts();
  const data::Column column("traffic", counts);
  const auto suite = query::default_evaluation_suite(column);

  std::cout << "Fig. 2 sweep on traffic-volume data (|D|=" << column.size()
            << ", k=" << kNodes << ", " << trials << " trials per p)\n"
            << "# domain [" << column.min() << ", " << column.max()
            << "], median " << column.quantile(0.5) << ", mean-skewed\n\n";

  // Traffic counts are integers with heavy ties (zero-inflated nights), so
  // quantile-anchored bounds land EXACTLY on tie groups — the estimator's
  // boundary-coincidence weak spot (its analysis assumes continuous data).
  // Measure both: bounds as-is (tie-aligned) and nudged to half-integers
  // (tie-free), to quantify how much of the error is ties vs sampling.
  auto tie_free = suite;
  for (auto& q : tie_free) {
    q.lower = std::floor(q.lower) + 0.5;
    q.upper = std::floor(q.upper) + 0.5;
  }

  TextTable table({"p", "mean_err(tie-aligned)", "mean_err(tie-free)",
                   "samples"});
  for (double p : {0.0173, 0.05, 0.12, 0.25, 0.4048}) {
    RunningStats aligned_err, free_err;
    double samples = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      auto network =
          bench::make_network(column, kNodes, options.seed + 577 * t);
      network.ensure_sampling_probability(p);
      samples += static_cast<double>(
          network.base_station().cached_sample_count());
      for (std::size_t i = 0; i < suite.size(); ++i) {
        const double truth_aligned = static_cast<double>(
            column.exact_range_count(suite[i].lower, suite[i].upper));
        if (truth_aligned >= static_cast<double>(column.size()) * 0.05) {
          aligned_err.add(bench::relative_error(
              network.rank_counting_estimate(suite[i]), truth_aligned));
        }
        const double truth_free = static_cast<double>(
            column.exact_range_count(tie_free[i].lower, tie_free[i].upper));
        if (truth_free >= static_cast<double>(column.size()) * 0.05) {
          free_err.add(bench::relative_error(
              network.rank_counting_estimate(tie_free[i]), truth_free));
        }
      }
    }
    table.add_row({table.format(p), table.format(aligned_err.mean()),
                   table.format(free_err.mean()),
                   std::to_string(static_cast<std::size_t>(
                       samples / static_cast<double>(trials)))});
  }
  bench::emit(table, options);
  std::cout << "\n# shape check: with tie-free bounds the decay matches the\n"
            << "# pollution Fig. 2 (the 8k/p^2 bound is distribution-free).\n"
            << "# Tie-ALIGNED bounds floor at a bias set by the tie-group\n"
            << "# mass at the boundaries — the estimator's documented\n"
            << "# continuous-values assumption, visible only on discrete\n"
            << "# data.  Practical fix: place range bounds between integer\n"
            << "# levels, as any real dashboard would.\n";
  return 0;
}
