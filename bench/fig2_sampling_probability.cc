// Figure 2: querying accuracy vs sampling probability p.
//
// Paper setup: maximum relative error of the sampling algorithm while p
// increases from 0.0173 to 0.4048 over the CityPulse pollution data.
// Expected shape: error is high and oscillating for small p (the paper
// reports up to 27% below p = 0.12 on single runs), drops quickly, and is
// small and stable (<~3%) once >= 5-15% of the data is preserved.
#include <iostream>

#include "bench_common.h"
#include "common/statistics.h"
#include "query/workload.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const std::size_t trials = options.trials ? options.trials : 20;
  const std::size_t kNodes = 8;

  const auto records = bench::load_records(options);
  const data::Dataset dataset(records);
  const auto& column = dataset.column(data::AirQualityIndex::kOzone);
  const auto suite = query::default_evaluation_suite(column);

  std::cout << "Figure 2: max relative error vs sampling probability p\n"
            << "# index=ozone, k=" << kNodes << " nodes, |D|="
            << column.size() << ", " << suite.size() << " range queries, "
            << trials << " trials per p\n\n";

  TextTable table({"p", "max_rel_err", "mean_rel_err", "p95_rel_err",
                   "samples"});
  // The paper sweeps p in [0.0173, 0.4048]; use an even grid over the same
  // interval.
  const std::vector<double> probabilities = {
      0.0173, 0.03, 0.05, 0.08, 0.12, 0.15, 0.20,
      0.25,   0.30, 0.35, 0.4048};

  for (double p : probabilities) {
    RunningStats err_stats;
    std::vector<double> errors;
    double samples = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      auto network = bench::make_network(
          column, kNodes, options.seed + 977 * t + 1);
      network.ensure_sampling_probability(p);
      samples += static_cast<double>(
          network.base_station().cached_sample_count());
      for (const auto& q : suite) {
        const double truth = static_cast<double>(
            column.exact_range_count(q.lower, q.upper));
        if (truth < static_cast<double>(column.size()) * 0.05) {
          continue;  // relative error blows up on near-empty ranges
        }
        const double err = bench::relative_error(
            network.rank_counting_estimate(q), truth);
        err_stats.add(err);
        errors.push_back(err);
      }
    }
    table.add_row({table.format(p), table.format(err_stats.max()),
                   table.format(err_stats.mean()),
                   table.format(quantile(errors, 0.95)),
                   std::to_string(static_cast<std::size_t>(
                       samples / static_cast<double>(trials)))});
  }
  bench::emit(table, options);
  std::cout << "\n# paper shape check: error should fall sharply with p and\n"
            << "# stabilize at a few percent once p exceeds ~0.05-0.15.\n";
  return 0;
}
