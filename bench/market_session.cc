// Market session: the Section IV economics over a whole trading session.
//
// The same consumer population (5 honest, 2 attackers, 50 rounds) shops
// under three broker setups; the tally shows what the pricing choice and
// the per-consumer budget cap do to revenue, arbitrage leakage and privacy
// exposure.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "common/metrics_http.h"
#include "dp/private_counting.h"
#include "market/simulation.h"
#include "query/workload.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const std::size_t kNodes = 8;

  // Live scrape surface: when --metrics-port is given, /metrics serves the
  // registry for the whole run (every counter the session increments is
  // visible mid-run, not just in the post-hoc .prom artifact).
  std::unique_ptr<telemetry::MetricsHttpServer> metrics_server;
  if (options.metrics_port) {
    try {
      metrics_server = std::make_unique<telemetry::MetricsHttpServer>(
          *options.metrics_port);
      std::cout << "# metrics_port " << metrics_server->port() << "\n";
    } catch (const std::exception& e) {
      std::cerr << "# metrics server disabled: " << e.what() << "\n";
    }
  }

  const auto records = bench::load_records(options);
  const data::Dataset dataset(records);
  const auto& column = dataset.column(data::AirQualityIndex::kOzone);
  const auto pool = query::default_evaluation_suite(column);
  const pricing::VarianceModel model(column.size(), kNodes);
  const query::AccuracySpec reference{0.1, 0.5};

  struct Scenario {
    std::string label;
    double exponent;
    double epsilon_cap;
  };
  const std::vector<Scenario> scenarios = {
      {"q=2 steep discount, no cap", 2.0,
       std::numeric_limits<double>::infinity()},
      {"q=1 Thm 4.2, no cap", 1.0, std::numeric_limits<double>::infinity()},
      {"q=1 Thm 4.2, eps-cap 0.02", 1.0, 0.02},
  };

  std::cout << "Market session: 5 honest + 2 attackers, 50 rounds\n\n";
  TextTable table({"scenario", "revenue", "honest_buys", "atk_targets",
                   "atk_queries", "profitable_atks", "arbitrage_leak",
                   "refused", "max_eps_honest", "max_eps_attacker"});
  for (const auto& scenario : scenarios) {
    auto network = bench::make_network(column, kNodes, options.seed + 5);
    dp::PrivateRangeCounter counter(network, {}, options.seed + 7);
    market::BrokerConfig broker_config;
    broker_config.per_consumer_epsilon_cap = scenario.epsilon_cap;
    market::DataBroker broker(
        counter,
        std::make_unique<pricing::InverseVariancePricing>(
            model, reference, 100.0, scenario.exponent),
        broker_config);
    market::SimulationConfig sim_config;
    sim_config.seed = options.seed + 11;
    market::MarketSimulation simulation(broker, model, pool, sim_config);
    const auto report = simulation.run();
    table.add_row(
        {scenario.label, table.format(report.revenue),
         std::to_string(report.honest_purchases),
         std::to_string(report.attacker_targets),
         std::to_string(report.attacker_queries),
         std::to_string(report.profitable_attacks),
         table.format(report.arbitrage_leakage()),
         std::to_string(report.refused_sales),
         table.format(report.max_honest_epsilon),
         table.format(report.max_attacker_epsilon)});
  }
  bench::emit(table, options);

  if (!options.wal_path.empty()) {
    // Durability-overhead mode: replay the arbitrage-free uncapped scenario
    // (the one with the most completed sales, hence the most WAL records)
    // with and without write-ahead logging and report the wall-clock delta.
    const auto& scenario = scenarios[1];
    std::cout << "\nWAL durability overhead (" << scenario.label << ")\n";
    TextTable wal_table(
        {"mode", "wall_us", "revenue", "wal_records", "wal_bytes"});
    double wall_without = 0.0;
    double wall_with = 0.0;
    for (const bool with_wal : {false, true}) {
      auto network = bench::make_network(column, kNodes, options.seed + 5);
      dp::PrivateRangeCounter counter(network, {}, options.seed + 7);
      market::BrokerConfig broker_config;
      broker_config.per_consumer_epsilon_cap = scenario.epsilon_cap;
      market::DataBroker broker(
          counter,
          std::make_unique<pricing::InverseVariancePricing>(
              model, reference, 100.0, scenario.exponent),
          broker_config);
      if (with_wal) {
        std::remove(options.wal_path.c_str());
        broker.attach_wal(options.wal_path);
      }
      market::SimulationConfig sim_config;
      sim_config.seed = options.seed + 11;
      market::MarketSimulation simulation(broker, model, pool, sim_config);
      const auto start = std::chrono::steady_clock::now();
      const auto report = simulation.run();
      const auto wall =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      (with_wal ? wall_with : wall_without) = static_cast<double>(wall);
      const auto* wal = broker.write_ahead_log();
      wal_table.add_row(
          {with_wal ? "wal" : "no-wal", std::to_string(wall),
           wal_table.format(report.revenue),
           std::to_string(wal != nullptr ? wal->records_appended() : 0),
           std::to_string(wal != nullptr ? wal->bytes_appended() : 0)});
    }
    std::cout << wal_table.to_string();
    if (wall_without > 0.0) {
      std::cout << "# wal overhead: "
                << 100.0 * (wall_with - wall_without) / wall_without
                << "% wall-clock\n";
    }
  }

  std::cout << "\n# shape check: under q=2 every attacker acquisition is a\n"
            << "# profitable multi-query attack (large arbitrage leakage);\n"
            << "# under q=1 attacks vanish and leakage is ~0; the epsilon\n"
            << "# cap converts excess demand into refusals and bounds the\n"
            << "# per-consumer exposure.\n";
  return 0;
}
