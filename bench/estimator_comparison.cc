// Section III-A analysis: RankCounting vs BasicCounting.
//
// The paper's analytical claim: BasicCounting variance gamma*(1-p)/p grows
// with the true count (query width), RankCounting's 8k/p^2 does not.  This
// harness measures empirical variance of both estimators across range
// selectivities and reports the communication budget (the sqrt(8k)/alpha
// expected-sample-count claim and the heartbeat-piggyback effect).
#include <iostream>

#include "bench_common.h"
#include "common/statistics.h"
#include "estimator/accuracy.h"
#include "estimator/basic_counting.h"
#include "estimator/rank_counting.h"
#include "query/workload.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const std::size_t trials = options.trials ? options.trials : 300;
  const std::size_t kNodes = 8;
  const double p = 0.1;

  const auto records = bench::load_records(options);
  const data::Dataset dataset(records);
  const auto& column = dataset.column(data::AirQualityIndex::kOzone);
  const std::size_t n = column.size();

  std::cout << "Estimator comparison: empirical variance, RankCounting vs "
               "BasicCounting (p = " << p << ", k = " << kNodes << ")\n\n";

  TextTable table({"selectivity", "truth", "var_rank", "var_basic",
                   "bound_rank(8k/p^2)", "var_basic_theory"});
  for (double width : {0.05, 0.15, 0.30, 0.50, 0.70, 0.90}) {
    const query::RangeQuery q{column.quantile(0.5 - width / 2),
                              column.quantile(0.5 + width / 2)};
    const double truth =
        static_cast<double>(column.exact_range_count(q.lower, q.upper));
    RunningStats rank_stats, basic_stats;
    for (std::size_t t = 0; t < trials; ++t) {
      auto network =
          bench::make_network(column, kNodes, options.seed + 7919 * t);
      network.ensure_sampling_probability(p);
      rank_stats.add(network.rank_counting_estimate(q));
      basic_stats.add(network.basic_counting_estimate(q));
    }
    table.add_row(
        {table.format(width), table.format(truth),
         table.format(rank_stats.variance()),
         table.format(basic_stats.variance()),
         table.format(
             estimator::rank_counting_variance_bound(kNodes, p)),
         table.format(estimator::basic_counting_variance(truth, p))});
  }
  bench::emit(table, options);

  // Communication budget: the expected number of samples for an
  // (alpha, delta) contract is p*n = sqrt(8k)/(alpha sqrt(1-delta)),
  // independent of n.
  std::cout << "\nCommunication budget per contract (Theorem 3.3)\n\n";
  TextTable comm({"alpha", "delta", "p", "samples", "uplink_bytes",
                  "piggybacked", "raw_data_bytes"});
  for (const auto& spec :
       std::vector<query::AccuracySpec>{{0.2, 0.5}, {0.1, 0.5},
                                        {0.055, 0.5}, {0.02, 0.8}}) {
    const double preq = std::min(
        1.0, estimator::required_sampling_probability(spec, kNodes, n));
    auto network = bench::make_network(column, kNodes, options.seed + 17);
    network.ensure_sampling_probability(preq);
    comm.add_row(
        {comm.format(spec.alpha), comm.format(spec.delta),
         comm.format(preq),
         std::to_string(network.base_station().cached_sample_count()),
         std::to_string(network.stats().uplink_bytes),
         std::to_string(network.stats().piggybacked_reports),
         std::to_string(n * sizeof(double))});
  }
  bench::emit(comm, options);

  // End-to-end requirement comparison: the sampling probability (= sample
  // volume) each estimator needs to honor the SAME contract, worst case
  // over queries.  This is the §III-A communication argument in one table.
  std::cout << "\nRequired sampling probability per contract: RankCounting "
               "(Thm 3.3) vs BasicCounting (HT worst case)\n\n";
  TextTable req({"alpha", "delta", "p_rank", "p_basic", "samples_rank",
                 "samples_basic", "ratio"});
  for (const auto& spec :
       std::vector<query::AccuracySpec>{{0.2, 0.5}, {0.1, 0.5},
                                        {0.055, 0.5}, {0.02, 0.8},
                                        {0.01, 0.9}}) {
    const double p_rank = std::min(
        1.0, estimator::required_sampling_probability(spec, kNodes, n));
    const double p_basic = std::min(
        1.0, estimator::basic_counting_required_probability(spec, n));
    req.add_row({req.format(spec.alpha), req.format(spec.delta),
                 req.format(p_rank), req.format(p_basic),
                 std::to_string(static_cast<std::size_t>(
                     p_rank * static_cast<double>(n))),
                 std::to_string(static_cast<std::size_t>(
                     p_basic * static_cast<double>(n))),
                 req.format(p_basic / p_rank)});
  }
  bench::emit(req, options);
  std::cout << "\n# paper shape check: var_rank stays flat across\n"
            << "# selectivity and far below var_basic on wide ranges;\n"
            << "# sample counts track sqrt(8k)/(alpha sqrt(1-delta)) and\n"
            << "# uplink bytes sit orders below shipping the raw data.\n";
  return 0;
}
