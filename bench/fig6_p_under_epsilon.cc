// Figure 6: querying accuracy vs sampling probability under different
// privacy budgets.
//
// Paper setup: p from 0.0173 to 0.25 with Laplace noise at several epsilon
// levels.  Expected shape: accuracy is poor below p ~ 0.15 and improves as
// p grows, for two compounding reasons: more samples shrink the sampling
// error AND the expected sensitivity (1/p) shrinks, so the same epsilon
// needs less noise — the paper's GS(gamma_hat) ~ 1/p observation.
#include <iostream>

#include "bench_common.h"
#include "common/statistics.h"
#include "dp/laplace_mechanism.h"
#include "query/workload.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const std::size_t trials = options.trials ? options.trials : 30;
  const std::size_t kNodes = 8;

  const auto records = bench::load_records(options);
  const data::Dataset dataset(records);
  const auto& column = dataset.column(data::AirQualityIndex::kOzone);
  const auto suite = query::default_evaluation_suite(column);

  const std::vector<double> epsilons = {0.1, 0.5, 1.0, 2.0};
  const std::vector<double> probabilities = {0.0173, 0.03, 0.05, 0.08,
                                             0.12,   0.15, 0.20, 0.25};

  std::cout << "Figure 6: mean relative error vs p under different epsilon\n"
            << "# index=ozone, k=" << kNodes
            << ", expected sensitivity 1/p, " << trials
            << " trials per point\n\n";

  std::vector<std::string> header = {"p"};
  for (double eps : epsilons) {
    header.push_back("eps=" + TextTable({"x"}, 2).format(eps));
  }
  TextTable table(std::move(header));

  Rng noise_rng(options.seed + 11);
  for (double p : probabilities) {
    std::vector<double> row = {p};
    for (double epsilon : epsilons) {
      const dp::LaplaceMechanism mechanism(1.0 / p, epsilon);
      RunningStats err_stats;
      for (std::size_t t = 0; t < trials; ++t) {
        auto network = bench::make_network(
            column, kNodes, options.seed + 271 * t + 3);
        network.ensure_sampling_probability(p);
        for (const auto& q : suite) {
          const double truth = static_cast<double>(
              column.exact_range_count(q.lower, q.upper));
          if (truth < static_cast<double>(column.size()) * 0.05) continue;
          const double noisy = mechanism.perturb(
              network.rank_counting_estimate(q), noise_rng);
          err_stats.add(bench::relative_error(noisy, truth));
        }
      }
      row.push_back(err_stats.mean());
    }
    table.add_numeric_row(row);
  }
  bench::emit(table, options);
  std::cout << "\n# paper shape check: every epsilon series improves with p\n"
            << "# (GS ~ 1/p: more samples -> less noise at equal budget);\n"
            << "# small epsilon amplifies the advantage of larger p.\n";
  return 0;
}
