// Section III-B ablation: what the perturbation optimizer buys.
//
// No figure in the paper corresponds to this directly, but DESIGN.md calls
// out three design choices worth quantifying:
//   1. optimizing over alpha' vs naive fixed splits (alpha' = alpha/2 etc.),
//   2. the expected-sensitivity policy (1/p) vs the worst case (n_i),
//   3. privacy amplification by sampling (reporting epsilon vs epsilon').
#include <iostream>

#include "bench_common.h"
#include "dp/amplification.h"
#include "dp/optimizer.h"
#include "estimator/accuracy.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const auto records = bench::load_records(options);
  const std::size_t kNodes = 8;
  const std::size_t n = records.size();
  const std::size_t max_ni = (n + kNodes - 1) / kNodes;

  const dp::PerturbationOptimizer optimizer;

  std::cout << "Optimizer ablation 1: optimized alpha' vs naive splits "
               "(p = 0.4)\n\n";
  TextTable split_table({"contract", "eps'_optimized", "eps'_mid_split",
                         "eps'_quarter_split", "gain_vs_mid"});
  const double p = 0.4;
  for (const auto& spec :
       std::vector<query::AccuracySpec>{{0.05, 0.8}, {0.08, 0.7},
                                        {0.10, 0.9}, {0.03, 0.6}}) {
    const auto plan = optimizer.optimize(spec, p, kNodes, n);
    if (!plan) continue;
    // Naive split: fix alpha' at a constant fraction of alpha, derive the
    // rest the same way the optimizer does.
    auto naive = [&](double fraction) {
      const double alpha_prime = spec.alpha * fraction;
      const double delta_prime =
          estimator::achieved_delta(p, alpha_prime, kNodes, n);
      if (!(delta_prime > spec.delta)) {
        return std::numeric_limits<double>::infinity();
      }
      const double eps =
          (1.0 / p) / ((spec.alpha - alpha_prime) * static_cast<double>(n)) *
          std::log(delta_prime / (delta_prime - spec.delta));
      return dp::amplified_epsilon(eps, p).value();
    };
    const double mid = naive(0.5);
    const double quarter = naive(0.25);
    split_table.add_row(
        {spec.to_string(), split_table.format(plan->epsilon_amplified),
         split_table.format(mid), split_table.format(quarter),
         split_table.format(mid / plan->epsilon_amplified)});
  }
  bench::emit(split_table, options);

  std::cout << "\nOptimizer ablation 2: sensitivity policy (p = 0.4)\n\n";
  dp::OptimizerConfig worst_config;
  worst_config.sensitivity_policy = dp::SensitivityPolicy::kWorstCase;
  const dp::PerturbationOptimizer worst(worst_config);
  TextTable sens_table({"contract", "eps'_expected(1/p)",
                        "eps'_worst_case(n_i)", "ratio"});
  for (const auto& spec :
       std::vector<query::AccuracySpec>{{0.05, 0.8}, {0.10, 0.9}}) {
    const auto e = optimizer.optimize(spec, p, kNodes, n, max_ni);
    const auto w = worst.optimize(spec, p, kNodes, n, max_ni);
    if (!e || !w) continue;
    sens_table.add_row(
        {spec.to_string(), sens_table.format(e->epsilon_amplified),
         sens_table.format(w->epsilon_amplified),
         sens_table.format(w->epsilon_amplified / e->epsilon_amplified)});
  }
  bench::emit(sens_table, options);

  std::cout << "\nOptimizer ablation 3: amplification by sampling "
               "(contract alpha=0.05, delta=0.8)\n\n";
  TextTable amp_table({"p", "epsilon", "epsilon_amplified", "amplification"});
  for (double pr : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    const auto plan = optimizer.optimize({0.05, 0.8}, pr, kNodes, n);
    if (!plan) {
      amp_table.add_row({amp_table.format(pr), "infeasible", "-", "-"});
      continue;
    }
    amp_table.add_numeric_row(
        {pr, plan->epsilon, plan->epsilon_amplified,
         // Cross-unit ratio on purpose: the amplification factor.
         plan->epsilon.value() / plan->epsilon_amplified.value()});
  }
  bench::emit(amp_table, options);
  std::cout << "\n# shape check: optimization beats fixed splits; the worst-\n"
            << "# case sensitivity inflates the budget by orders of\n"
            << "# magnitude (the paper's reason to adopt E[sens] = 1/p);\n"
            << "# smaller p amplifies more (epsilon/epsilon' grows).\n";
  return 0;
}
