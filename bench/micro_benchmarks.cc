// google-benchmark micro-benchmarks of the hot paths: per-node estimation,
// global estimation, batched multi-query estimation, sampling top-up, the
// perturbation optimizer, Laplace draws, CSV parsing and the (retired)
// per-ingest rank audit.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "data/citypulse.h"
#include "dp/laplace_mechanism.h"
#include "dp/optimizer.h"
#include "estimator/basic_counting.h"
#include "estimator/rank_counting.h"
#include "pricing/arbitrage.h"
#include "pricing/pricing.h"
#include "pricing/variance_model.h"
#include "sampling/local_sampler.h"

namespace {

using namespace prc;

std::vector<double> make_values(std::size_t n) {
  std::vector<double> values(n);
  Rng rng(17);
  for (auto& v : values) v = rng.uniform(0.0, 200.0);
  return values;
}

sampling::RankSampleSet make_sample(std::size_t n, double p) {
  sampling::LocalSampler sampler(make_values(n));
  Rng rng(23);
  sampler.raise_probability(p, rng);
  return sampler.current_sample();
}

void BM_NodeEstimate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto sample = make_sample(n, 0.2);
  const query::RangeQuery range{40.0, 160.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimator::rank_counting_node_estimate(sample, n, 0.2, range));
  }
}
BENCHMARK(BM_NodeEstimate)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BasicEstimate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto sample = make_sample(n, 0.2);
  const query::RangeQuery range{40.0, 160.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimator::basic_counting_node_estimate(sample, 0.2, range));
  }
}
BENCHMARK(BM_BasicEstimate)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GlobalEstimate(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<sampling::RankSampleSet> sets;
  std::vector<estimator::NodeSampleView> views;
  sets.reserve(k);
  for (std::size_t i = 0; i < k; ++i) sets.push_back(make_sample(2000, 0.2));
  for (const auto& s : sets) views.push_back({&s, 2000});
  const query::RangeQuery range{40.0, 160.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimator::rank_counting_estimate(views, 0.2, range));
  }
}
BENCHMARK(BM_GlobalEstimate)->Arg(8)->Arg(64)->Arg(512);

std::vector<query::RangeQuery> make_ranges(std::size_t count) {
  std::vector<query::RangeQuery> ranges;
  ranges.reserve(count);
  Rng rng(41);
  for (std::size_t i = 0; i < count; ++i) {
    const double lo = rng.uniform(0.0, 150.0);
    ranges.push_back({lo, lo + rng.uniform(5.0, 50.0)});
  }
  return ranges;
}

// The workload path before this layer existed: Q independent single-query
// calls.  Compare against BM_BatchEstimate at the same (queries, threads=1)
// to see the pass-fusion win, and against threads>1 for the parallel win —
// the batch is bit-identical to the loop in all cases.
void BM_SingleEstimateLoop(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  std::vector<sampling::RankSampleSet> sets;
  std::vector<estimator::NodeSampleView> views;
  for (std::size_t i = 0; i < 64; ++i) sets.push_back(make_sample(2000, 0.2));
  for (const auto& s : sets) views.push_back({&s, 2000});
  const auto ranges = make_ranges(queries);
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& range : ranges) {
      acc += estimator::rank_counting_estimate(views, 0.2, range);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SingleEstimateLoop)->Arg(10)->Arg(100);

void BM_BatchEstimate(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  parallel::set_thread_count(threads);
  std::vector<sampling::RankSampleSet> sets;
  std::vector<estimator::NodeSampleView> views;
  for (std::size_t i = 0; i < 64; ++i) sets.push_back(make_sample(2000, 0.2));
  for (const auto& s : sets) views.push_back({&s, 2000});
  const auto ranges = make_ranges(queries);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimator::rank_counting_estimate_batch(views, 0.2, ranges));
  }
  parallel::set_thread_count(1);
}
BENCHMARK(BM_BatchEstimate)
    ->Args({10, 1})
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 8});

void BM_SamplerTopUp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = make_values(n);
  Rng rng(31);
  for (auto _ : state) {
    sampling::LocalSampler sampler(values);
    sampler.raise_probability(0.1, rng);
    sampler.raise_probability(0.3, rng);
    benchmark::DoNotOptimize(sampler.sample_count());
  }
}
BENCHMARK(BM_SamplerTopUp)->Arg(1000)->Arg(10000);

// Raw exhaustive-grid search cost as a function of grid size (cache off so
// every iteration pays the full sweep).  This is what the planner cost was
// before the coarse-to-fine strategy; compare with BM_OptimizeColdVsWarm.
void BM_Optimizer(benchmark::State& state) {
  const dp::PerturbationOptimizer optimizer(
      {.grid_points = static_cast<std::size_t>(state.range(0)),
       .search_strategy = dp::SearchStrategy::kExhaustiveGrid,
       .plan_cache_capacity = 0});
  const query::AccuracySpec spec{0.05, 0.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize(spec, 0.4, 8, 17568));
  }
}
BENCHMARK(BM_Optimizer)->Arg(64)->Arg(512)->Arg(4096);

// The production planner, cold vs warm: arg 0 prices a fresh optimizer per
// spec batch (every call is a coarse-to-fine search), arg 1 reuses one
// optimizer so every call after the first batch is a plan-cache hit.
void BM_OptimizeColdVsWarm(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  // A handful of distinct contracts, like a market session's repeat buyers.
  const std::vector<query::AccuracySpec> specs{
      {0.05, 0.8}, {0.06, 0.7}, {0.08, 0.9}, {0.1, 0.5}};
  const dp::PerturbationOptimizer shared;
  for (auto _ : state) {
    if (warm) {
      for (const auto& spec : specs) {
        benchmark::DoNotOptimize(shared.optimize(spec, 0.4, 8, 17568));
      }
    } else {
      const dp::PerturbationOptimizer fresh({.plan_cache_capacity = 0});
      for (const auto& spec : specs) {
        benchmark::DoNotOptimize(fresh.optimize(spec, 0.4, 8, 17568));
      }
    }
  }
}
BENCHMARK(BM_OptimizeColdVsWarm)->Arg(0)->Arg(1);

// The arbitrage attack search over its (alpha, delta, m) lattice.  The
// per-call quote memo prices each lattice cell once instead of once per
// copy count m; this benchmark is the whole-search cost with that memo.
void BM_BestAttackQuoteCache(benchmark::State& state) {
  const pricing::VarianceModel model(17568, 8);
  const pricing::InverseVariancePricing pricing(model, {0.1, 0.5}, 100.0,
                                                1.0);
  const pricing::AttackSimulator simulator(model);
  const query::AccuracySpec target{0.05, 0.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.best_attack(pricing, target));
  }
}
BENCHMARK(BM_BestAttackQuoteCache);

void BM_LaplaceSample(benchmark::State& state) {
  const dp::LaplaceMechanism mechanism(2.5, 0.5);
  Rng rng(37);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.perturb(100.0, rng));
  }
}
BENCHMARK(BM_LaplaceSample);

void BM_CityPulseGenerate(benchmark::State& state) {
  data::CityPulseConfig config;
  config.record_count = static_cast<std::size_t>(state.range(0));
  const data::CityPulseGenerator generator(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate());
  }
}
BENCHMARK(BM_CityPulseGenerate)->Arg(1000)->Arg(17568);

// The station ingests one RankSampleSet per report; construction is the
// sort, nothing else (rank validation is PRC_DCHECK-gated since the
// parallel-collection change).
void BM_RankSampleConstruct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<sampling::RankedValue> values =
      make_sample(n, 0.5).samples();
  for (auto _ : state) {
    auto copy = values;
    sampling::RankSampleSet set(std::move(copy));
    benchmark::DoNotOptimize(set.size());
  }
}
BENCHMARK(BM_RankSampleConstruct)->Arg(1000)->Arg(10000);

// What every release-build ingest used to pay on top: the always-on
// duplicate-rank audit (hash-set insert per sample).  The gap between this
// and BM_RankSampleConstruct is the win from demoting the audit to
// PRC_DCHECK.
void BM_RankSampleConstructPlusAudit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<sampling::RankedValue> values =
      make_sample(n, 0.5).samples();
  for (auto _ : state) {
    auto copy = values;
    sampling::RankSampleSet set(std::move(copy));
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(set.size());
    bool ok = true;
    for (const auto& s : set.samples()) {
      ok = ok && s.rank != 0 && seen.insert(s.rank).second;
    }
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_RankSampleConstructPlusAudit)->Arg(1000)->Arg(10000);

void BM_CsvParse(benchmark::State& state) {
  data::CityPulseConfig config;
  config.record_count = 2000;
  const auto records = data::CityPulseGenerator(config).generate();
  CsvTable table({"timestamp", "sensor_id", "ozone", "particulate_matter",
                  "carbon_monoxide", "sulfur_dioxide", "nitrogen_dioxide"});
  for (const auto& r : records) {
    table.add_row({std::to_string(r.timestamp), std::to_string(r.sensor_id),
                   std::to_string(r.values[0]), std::to_string(r.values[1]),
                   std::to_string(r.values[2]), std::to_string(r.values[3]),
                   std::to_string(r.values[4])});
  }
  const std::string text = to_csv(table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_csv(text));
  }
}
BENCHMARK(BM_CsvParse);

}  // namespace

BENCHMARK_MAIN();
