// Continuous-collection scenario (the paper's "one sample, multiple
// queries" protocol under data arrival).
//
// Data streams into the network day by day; the broker answers a standing
// query after every batch.  Compares three refresh policies:
//   eager    — resync dirty nodes after every batch (always-fresh cache),
//   lazy     — resync only every R batches (stale answers in between),
//   resample — discard and recollect from scratch each batch (the naive
//              strawman the paper's incremental protocol avoids).
// Reports accuracy and cumulative uplink bytes per policy.
#include <iostream>

#include "bench_common.h"
#include "iot/network.h"
#include "common/statistics.h"
#include "query/workload.h"

namespace {

using namespace prc;

struct PolicyResult {
  double mean_rel_err = 0.0;
  double max_rel_err = 0.0;
  std::size_t uplink_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  // --nodes scales the fleet (e.g. 1000 for the parallel-collection
  // speedup scenario); the default stays the paper-sized 8-node setup.
  const std::size_t kNodes = options.nodes != 0 ? options.nodes : 8;
  const double p = 0.15;
  const std::size_t kBatches = 30;

  const auto records = bench::load_records(options);
  const data::Dataset dataset(records);
  const auto& column = dataset.column(data::AirQualityIndex::kOzone);
  const auto& all_values = column.values();
  const std::size_t batch_size = all_values.size() / (kBatches + 1);

  std::cout << "Streaming collection: " << kBatches << " arrival batches of "
            << batch_size << " readings onto " << kNodes
            << " nodes, standing query re-answered per batch (p = " << p
            << ")\n\n";

  const query::RangeQuery standing{60.0, 110.0};

  auto run_policy = [&](std::size_t refresh_every,
                        bool resample_from_scratch) {
    PolicyResult result;
    RunningStats err;
    // Initial corpus: the first batch_size readings.
    std::vector<double> seen(all_values.begin(),
                             all_values.begin() +
                                 static_cast<std::ptrdiff_t>(batch_size));
    Rng rng(options.seed);
    auto initial = data::partition_values(
        seen, kNodes, data::PartitionStrategy::kRoundRobin, rng);
    iot::NetworkConfig net_config;
    net_config.seed = options.seed + 3;
    auto network = std::make_unique<iot::FlatNetwork>(initial, net_config);
    network->ensure_sampling_probability(p);

    for (std::size_t b = 1; b <= kBatches; ++b) {
      const std::size_t begin = b * batch_size;
      const std::size_t end = std::min(begin + batch_size,
                                       all_values.size());
      std::vector<double> batch(all_values.begin() +
                                    static_cast<std::ptrdiff_t>(begin),
                                all_values.begin() +
                                    static_cast<std::ptrdiff_t>(end));
      seen.insert(seen.end(), batch.begin(), batch.end());

      if (resample_from_scratch) {
        const std::size_t carried_bytes = network->stats().uplink_bytes;
        Rng prng(options.seed + b);
        auto node_data = data::partition_values(
            seen, kNodes, data::PartitionStrategy::kRoundRobin, prng);
        iot::NetworkConfig fresh;
        fresh.seed = options.seed + 100 + b;
        auto rebuilt = std::make_unique<iot::FlatNetwork>(node_data, fresh);
        rebuilt->ensure_sampling_probability(p);
        result.uplink_bytes += carried_bytes;  // bank the old network's bill
        network = std::move(rebuilt);
      } else {
        // Each batch is produced by one sensor (arrivals are local to the
        // device that observed them), so only that node's cache goes stale
        // — the incremental protocol resyncs just the dirty node.
        network->append_data(b % kNodes, batch);
        if (b % refresh_every == 0) network->refresh_samples();
      }

      const double truth = static_cast<double>(
          query::exact_range_count(seen, standing));
      const double estimate = network->rank_counting_estimate(standing);
      err.add(bench::relative_error(estimate, truth));
    }
    result.uplink_bytes += network->stats().uplink_bytes;
    result.mean_rel_err = err.mean();
    result.max_rel_err = err.max();
    return result;
  };

  TextTable table({"policy", "mean_rel_err", "max_rel_err", "uplink_bytes"});
  const auto eager = run_policy(1, false);
  table.add_row({"eager refresh (every batch)", table.format(eager.mean_rel_err),
                 table.format(eager.max_rel_err),
                 std::to_string(eager.uplink_bytes)});
  const auto lazy = run_policy(5, false);
  table.add_row({"lazy refresh (every 5 batches)",
                 table.format(lazy.mean_rel_err),
                 table.format(lazy.max_rel_err),
                 std::to_string(lazy.uplink_bytes)});
  const auto scratch = run_policy(1, true);
  table.add_row({"resample from scratch", table.format(scratch.mean_rel_err),
                 table.format(scratch.max_rel_err),
                 std::to_string(scratch.uplink_bytes)});
  bench::emit(table, options);
  std::cout << "\n# shape check: eager refresh tracks the stream; lazy\n"
            << "# refresh pays the same bytes eventually but serves stale\n"
            << "# (high-error) answers between refreshes; from-scratch\n"
            << "# resampling matches eager accuracy at a several-fold\n"
            << "# higher cumulative bill - the incremental top-up protocol\n"
            << "# is what makes one-sample-many-queries economical.\n";
  return 0;
}
