// Degraded collection sweep: what fault injection costs and what the
// coverage-aware estimator buys back.
//
// Sweeps i.i.d. frame loss x node churn x per-frame retry budget.  Each cell
// runs a few escalating top-up rounds under the faulty channel and reports
//   * the coverage the cache actually reached (fraction of known data at the
//     round target) and the frames abandoned by the retry budget,
//   * the uplink bill (bounded budgets trade bytes for completeness),
//   * the relative error of the per-node Horvitz-Thompson estimate vs the
//     seed-style global-p estimate (which silently assumes every node
//     reached the round target and is biased whenever churn left stragglers),
//   * how often the error stayed inside the heterogeneous Chebyshev bound
//     computed from the ACHIEVED per-node probabilities — the honest
//     contract a degraded cache can still quote.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "common/statistics.h"
#include "estimator/accuracy.h"
#include "estimator/rank_counting.h"
#include "query/workload.h"

namespace {

using namespace prc;

std::string attempts_label(std::size_t max_attempts) {
  return max_attempts == 0 ? "inf" : std::to_string(max_attempts);
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  const std::size_t trials = options.trials == 0 ? 10 : options.trials;
  const std::size_t kNodes = 12;

  const auto records = bench::load_records(options);
  const data::Dataset dataset(records);
  const auto& column = dataset.column(data::AirQualityIndex::kOzone);
  const auto& values = column.values();

  // Interior reference query: the middle half of the value distribution.
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  const query::RangeQuery range{sorted[sorted.size() / 4],
                                sorted[(3 * sorted.size()) / 4]};
  const double truth =
      static_cast<double>(query::exact_range_count(values, range));

  const double kLoss[] = {0.0, 0.3, 0.6};
  const double kCrash[] = {0.0, 0.1, 0.3};
  const std::size_t kAttempts[] = {1, 3, 0};
  const double rounds[] = {0.05, 0.1, 0.15, 0.2};

  std::cout << "Degraded collection sweep: " << kNodes << " nodes, "
            << values.size() << " readings, 4 top-up rounds to p = 0.2, "
            << trials << " trials per cell\n"
            << "reference query [" << range.lower << ", " << range.upper
            << "], true count " << truth << "\n\n";

  TextTable table({"loss", "crash", "attempts", "coverage", "dropped",
                   "uplink_kB", "hetero_bias", "globalp_bias", "in_bound"});

  for (const double loss : kLoss) {
    for (const double crash : kCrash) {
      for (const std::size_t max_attempts : kAttempts) {
        RunningStats coverage, dropped, uplink, hetero_err, global_err;
        std::size_t bound_checks = 0;
        std::size_t bound_hits = 0;
        for (std::size_t t = 0; t < trials; ++t) {
          Rng rng(options.seed + t * 977);
          const auto node_data = data::partition_values(
              values, kNodes, data::PartitionStrategy::kRoundRobin, rng);
          iot::NetworkConfig config;
          config.seed = options.seed + t * 31 + 7;
          config.frame_loss_probability = loss;
          config.max_attempts = max_attempts;
          config.faults.crash_probability = crash;
          config.faults.rejoin_probability = 0.5;
          config.faults.seed = options.seed + t * 61 + 13;
          iot::FlatNetwork network(node_data, config);

          for (const double p : rounds) network.ensure_sampling_probability(p);

          const auto cov = network.base_station().coverage();
          coverage.add(cov.coverage);
          dropped.add(static_cast<double>(network.stats().dropped_frames));
          uplink.add(static_cast<double>(network.stats().uplink_bytes) /
                     1024.0);

          // Both estimators can only see data the station has heard of;
          // never-reported nodes are an unavoidable shortfall already
          // captured by the coverage column.  Bias is therefore measured
          // against the KNOWN-data truth, which isolates the estimator
          // property: the seed-style global-p estimate applies the
          // round-target correction to samples stragglers collected at an
          // older, smaller p, so its mean drifts positive under churn,
          // while the per-node correction centers on zero.
          double known_truth = 0.0;
          for (std::size_t i = 0; i < kNodes; ++i) {
            if (network.base_station().node_reported(i)) {
              known_truth += static_cast<double>(
                  query::exact_range_count(node_data[i], range));
            }
          }
          if (known_truth <= 0.0) continue;
          const double hetero = network.rank_counting_estimate(range);
          const double global = estimator::rank_counting_estimate(
              network.base_station().node_views(), cov.target_p, range);
          hetero_err.add((hetero - known_truth) / known_truth);
          global_err.add((global - known_truth) / known_truth);

          if (cov.min_probability > 0.0) {
            ++bound_checks;
            const double bound = estimator::heterogeneous_error_bound(
                network.base_station().node_probabilities(), 0.95);
            if (std::abs(hetero - known_truth) <= bound) ++bound_hits;
          }
        }
        const std::string in_bound =
            bound_checks == 0
                ? "n/a"
                : table.format(static_cast<double>(bound_hits) /
                               static_cast<double>(bound_checks));
        table.add_row({table.format(loss), table.format(crash),
                       attempts_label(max_attempts),
                       table.format(coverage.mean()),
                       table.format(dropped.mean()),
                       table.format(uplink.mean()),
                       table.format(hetero_err.mean()),
                       table.format(global_err.mean()), in_bound});
      }
    }
  }

  bench::emit(table, options);
  std::cout
      << "\n# shape check: with no faults every budget reaches coverage 1\n"
      << "# and both estimators agree.  Loss with attempts=1 drops frames\n"
      << "# and lowers coverage; unbounded retries keep coverage 1 at a\n"
      << "# higher uplink bill.  Churn leaves stragglers at older p_i:\n"
      << "# against the station-known data, globalp_bias drifts positive\n"
      << "# (the round-target correction undercorrects samples collected\n"
      << "# at a smaller p) while hetero_bias centers on zero and stays\n"
      << "# inside the bound quoted from achieved probabilities.\n";
  return 0;
}
