// Quantile tracking from the same rank samples (companion capability of the
// RankCounting machinery — paper reference [6] by the same authors).
//
// For each air-quality index, estimate the {10, 25, 50, 75, 90}% quantiles
// from one sampling round and compare against exact order statistics; sweep
// p to show the rank error shrinking as 1/p.
#include <iostream>

#include "bench_common.h"
#include "common/statistics.h"
#include "estimator/quantile.h"
#include "iot/network.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const std::size_t trials = options.trials ? options.trials : 25;
  const std::size_t kNodes = 8;

  const auto records = bench::load_records(options);
  const data::Dataset dataset(records);

  std::cout << "Quantile tracking from rank samples (k=" << kNodes << ", "
            << trials << " trials)\n\n";

  const std::vector<double> qs = {0.10, 0.25, 0.50, 0.75, 0.90};

  std::cout << "Per-index quantile estimates at p = 0.1 (value-domain "
               "error)\n\n";
  TextTable table({"index", "q", "exact", "mean_estimate", "mean_abs_err",
                   "rank_err"});
  for (auto index : data::kAllAirQualityIndexes) {
    const auto& column = dataset.column(index);
    for (double q : qs) {
      const double exact = column.quantile(q);
      RunningStats est_stats, rank_err_stats;
      for (std::size_t t = 0; t < trials; ++t) {
        auto network = bench::make_network(
            column, kNodes,
            options.seed + 37 * t + static_cast<std::uint64_t>(index));
        network.ensure_sampling_probability(0.1);
        const auto views = network.base_station().node_views();
        const double estimate = estimator::quantile_estimate(
            views, 0.1, q, column.size());
        est_stats.add(estimate);
        // Rank error: how many elements sit between estimate and truth.
        const double est_rank = static_cast<double>(
            column.exact_range_count(column.min(), estimate));
        rank_err_stats.add(std::abs(
            est_rank - q * static_cast<double>(column.size())));
      }
      table.add_row({std::string(data::index_name(index)), table.format(q),
                     table.format(exact), table.format(est_stats.mean()),
                     table.format(std::abs(est_stats.mean() - exact)),
                     table.format(rank_err_stats.mean())});
    }
  }
  bench::emit(table, options);

  std::cout << "\nMedian rank error vs sampling probability (ozone)\n\n";
  const auto& ozone = dataset.column(data::AirQualityIndex::kOzone);
  TextTable sweep({"p", "mean_rank_err", "rank_err_bound(6*sqrt(4k)/p)"});
  for (double p : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    RunningStats rank_err;
    for (std::size_t t = 0; t < trials; ++t) {
      auto network =
          bench::make_network(ozone, kNodes, options.seed + 977 * t);
      network.ensure_sampling_probability(p);
      const auto views = network.base_station().node_views();
      const double estimate =
          estimator::quantile_estimate(views, p, 0.5, ozone.size());
      const double est_rank = static_cast<double>(
          ozone.exact_range_count(ozone.min(), estimate));
      rank_err.add(std::abs(est_rank -
                            0.5 * static_cast<double>(ozone.size())));
    }
    sweep.add_numeric_row({p, rank_err.mean(),
                           6.0 * std::sqrt(4.0 * kNodes) / p});
  }
  bench::emit(sweep, options);
  std::cout << "\n# shape check: rank error scales ~1/p (the one-sided\n"
            << "# prefix estimator's sd is ~2/p per node); value-domain\n"
            << "# error follows the local data density at each quantile.\n";
  return 0;
}
