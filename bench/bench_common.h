// Shared helpers for the experiment binaries.
//
// Every binary reproduces one paper figure/table, runs with no arguments on
// the synthetic CityPulse-like dataset, and accepts:
//   --csv <path>            use a real CityPulse export instead of the
//                           generator
//   --trials <n>            trials per configuration (default per-binary)
//   --seed <n>              master seed
//   --output-csv            also print machine-readable CSV after the table
//   --telemetry-json <path> write the run's TelemetrySnapshot as JSON
//                           (default <binary>.telemetry.json); a Prometheus
//                           exposition twin is written next to it with the
//                           .json suffix replaced by .prom
//   --no-telemetry          skip the snapshot export (both files)
//   --threads <n>           worker threads for the parallel sections
//                           (default: PRC_THREADS env or 1; results are
//                           bit-identical for every value)
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/parallel.h"
#include "common/prometheus.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "data/citypulse.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "iot/network.h"
#include "query/range_query.h"

namespace prc::bench {

struct Options {
  std::optional<std::string> csv_path;
  std::size_t trials = 0;  // 0 = binary default
  std::uint64_t seed = 20140801;
  bool output_csv = false;
  /// Where emit() writes the run's TelemetrySnapshot; empty = disabled.
  std::string telemetry_json_path;
  /// Worker threads the run was configured with (parallel::thread_count()
  /// after --threads was applied).
  std::size_t threads = 1;
  /// Sensor node count override; 0 = the binary's default scenario.
  std::size_t nodes = 0;
  /// Write-ahead log path for the durability-overhead mode (consumed by
  /// market_session; empty = WAL disabled, the default run is untouched).
  std::string wal_path;
  /// When set, market_session serves /metrics and /healthz on this port for
  /// the lifetime of the run (0 = pick an ephemeral port and print it;
  /// nullopt = no HTTP server, the default).
  std::optional<std::uint16_t> metrics_port;
  /// Set by parse_options; emit() turns it into bench.wall_clock_us so the
  /// snapshot carries the run's end-to-end wall time next to its counters.
  std::chrono::steady_clock::time_point start_time;
};

inline Options parse_options(int argc, char** argv) {
  ArgParser parser(argv[0],
                   "prc experiment binary (see DESIGN.md for the index)");
  parser.option("csv", "run on a real CityPulse CSV export")
      .option("trials", "trials per configuration (0 = binary default)")
      .option("seed", "master seed")
      .flag("output-csv", "also print machine-readable CSV")
      .option("telemetry-json",
              "telemetry snapshot path (default <binary>.telemetry.json)")
      .flag("no-telemetry", "skip the telemetry snapshot export")
      .option("threads",
              "worker threads for parallel sections (default: PRC_THREADS "
              "env or 1)")
      .option("nodes", "sensor node count (0 = binary default)")
      .option("wal",
              "write-ahead log path: adds a durability-overhead comparison "
              "(market_session only; default runs are unaffected)")
      .option("metrics-port",
              "serve /metrics and /healthz on this port for the run's "
              "lifetime (market_session only; 0 = ephemeral)");
  try {
    if (!parser.parse(argc, argv)) std::exit(0);  // --help
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n" << parser.help();
    std::exit(2);
  }
  Options options;
  options.start_time = std::chrono::steady_clock::now();
  if (const auto threads = parser.get_uint("threads", 0); threads > 0) {
    parallel::set_thread_count(static_cast<std::size_t>(threads));
  }
  options.threads = parallel::thread_count();
  options.nodes = static_cast<std::size_t>(parser.get_uint("nodes", 0));
  if (const auto wal = parser.get("wal")) options.wal_path = *wal;
  if (parser.get("metrics-port")) {
    options.metrics_port =
        static_cast<std::uint16_t>(parser.get_uint("metrics-port", 0));
  }
  options.csv_path = parser.get("csv");
  options.trials = static_cast<std::size_t>(parser.get_uint("trials", 0));
  options.seed = parser.get_uint("seed", options.seed);
  options.output_csv = parser.has("output-csv");
  if (!parser.has("no-telemetry")) {
    if (const auto path = parser.get("telemetry-json")) {
      options.telemetry_json_path = *path;
    } else {
      // Default: <binary>.telemetry.json next to the working directory.
      std::string program = argv[0];
      const auto slash = program.find_last_of('/');
      if (slash != std::string::npos) program = program.substr(slash + 1);
      options.telemetry_json_path = program + ".telemetry.json";
    }
  }
  return options;
}

/// Loads the evaluation dataset: a real export when --csv was given,
/// otherwise the paper-shaped synthetic generator.
inline std::vector<data::AirQualityRecord> load_records(
    const Options& options) {
  PRC_TRACE_SPAN("bench.load_records");
  telemetry::ScopedTimer timer(
      telemetry::histogram("bench.load_records_duration_us"));
  if (options.csv_path) {
    std::cout << "# dataset: " << *options.csv_path << "\n";
    return data::read_records_csv(*options.csv_path);
  }
  data::CityPulseConfig config;
  config.seed = options.seed;
  std::cout << "# dataset: synthetic CityPulse-like ("
            << config.record_count << " records, seed " << config.seed
            << ")\n";
  return data::CityPulseGenerator(config).generate();
}

/// Builds a k-node flat network holding one column's values.
inline iot::FlatNetwork make_network(const data::Column& column,
                                     std::size_t nodes, std::uint64_t seed) {
  PRC_TRACE_SPAN("bench.make_network");
  telemetry::ScopedTimer timer(
      telemetry::histogram("bench.make_network_duration_us"));
  Rng rng(seed);
  auto node_data = data::partition_values(
      column.values(), nodes, data::PartitionStrategy::kRoundRobin, rng);
  iot::NetworkConfig config;
  config.seed = seed + 1;
  return iot::FlatNetwork(std::move(node_data), config);
}

/// |estimate - truth| / truth; the measure the paper's figures plot.
/// Returns 0 for truth == 0 and estimate == 0, infinity if only truth is 0.
inline double relative_error(double estimate, double truth) {
  if (truth == 0.0) {
    return estimate == 0.0 ? 0.0
                           : std::numeric_limits<double>::infinity();
  }
  return std::abs(estimate - truth) / truth;
}

inline void emit(const TextTable& table, const Options& options) {
  std::cout << table.to_string();
  if (options.output_csv) {
    std::cout << "\n# CSV\n" << table.to_csv();
  }
  if (!options.telemetry_json_path.empty()) {
    // Stamp the run shape into the snapshot so scripts/bench_compare.py can
    // compare like with like: wall-clock is informational (machines and
    // thread counts differ), the counters are the exact contract.
    const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - options.start_time);
    telemetry::gauge("bench.wall_clock_us")
        .set(static_cast<double>(wall.count()));
    telemetry::gauge("bench.threads")
        .set(static_cast<double>(options.threads));
    // Gauge, not counter: trace.spans_dropped must stay outside the
    // bit-exact counter contract bench_compare.py gates.
    trace::publish_telemetry();
    const auto snapshot = telemetry::Telemetry::registry().snapshot();
    std::ofstream out(options.telemetry_json_path);
    out << snapshot.to_json() << "\n";
    if (out) {
      std::cout << "# telemetry: " << options.telemetry_json_path << " ("
                << snapshot.metric_count() << " metrics)\n";
    } else {
      std::cerr << "# telemetry: cannot write "
                << options.telemetry_json_path << "\n";
    }
    // The same snapshot in Prometheus exposition format, next to the JSON
    // (<name>.telemetry.json -> <name>.telemetry.prom), so bench artifacts
    // are greppable with standard scrape tooling.  bench_compare.py skips
    // .prom files; the JSON stays the comparison format.
    std::string prom_path = options.telemetry_json_path;
    const std::string json_suffix = ".json";
    if (prom_path.size() >= json_suffix.size() &&
        prom_path.compare(prom_path.size() - json_suffix.size(),
                          json_suffix.size(), json_suffix) == 0) {
      prom_path.resize(prom_path.size() - json_suffix.size());
    }
    prom_path += ".prom";
    std::ofstream prom_out(prom_path);
    prom_out << telemetry::prometheus::render(snapshot);
    if (prom_out) {
      std::cout << "# telemetry: " << prom_path << " (exposition 0.0.4)\n";
    } else {
      std::cerr << "# telemetry: cannot write " << prom_path << "\n";
    }
  }
}

}  // namespace prc::bench
