// Shared helpers for the experiment binaries.
//
// Every binary reproduces one paper figure/table, runs with no arguments on
// the synthetic CityPulse-like dataset, and accepts:
//   --csv <path>     use a real CityPulse export instead of the generator
//   --trials <n>     trials per configuration (default per-binary)
//   --seed <n>       master seed
//   --output-csv     also print machine-readable CSV after the table
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/rng.h"
#include "common/table.h"
#include "data/citypulse.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "iot/network.h"
#include "query/range_query.h"

namespace prc::bench {

struct Options {
  std::optional<std::string> csv_path;
  std::size_t trials = 0;  // 0 = binary default
  std::uint64_t seed = 20140801;
  bool output_csv = false;
};

inline Options parse_options(int argc, char** argv) {
  ArgParser parser(argv[0],
                   "prc experiment binary (see DESIGN.md for the index)");
  parser.option("csv", "run on a real CityPulse CSV export")
      .option("trials", "trials per configuration (0 = binary default)")
      .option("seed", "master seed")
      .flag("output-csv", "also print machine-readable CSV");
  try {
    if (!parser.parse(argc, argv)) std::exit(0);  // --help
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n" << parser.help();
    std::exit(2);
  }
  Options options;
  options.csv_path = parser.get("csv");
  options.trials = static_cast<std::size_t>(parser.get_uint("trials", 0));
  options.seed = parser.get_uint("seed", options.seed);
  options.output_csv = parser.has("output-csv");
  return options;
}

/// Loads the evaluation dataset: a real export when --csv was given,
/// otherwise the paper-shaped synthetic generator.
inline std::vector<data::AirQualityRecord> load_records(
    const Options& options) {
  if (options.csv_path) {
    std::cout << "# dataset: " << *options.csv_path << "\n";
    return data::read_records_csv(*options.csv_path);
  }
  data::CityPulseConfig config;
  config.seed = options.seed;
  std::cout << "# dataset: synthetic CityPulse-like ("
            << config.record_count << " records, seed " << config.seed
            << ")\n";
  return data::CityPulseGenerator(config).generate();
}

/// Builds a k-node flat network holding one column's values.
inline iot::FlatNetwork make_network(const data::Column& column,
                                     std::size_t nodes, std::uint64_t seed) {
  Rng rng(seed);
  auto node_data = data::partition_values(
      column.values(), nodes, data::PartitionStrategy::kRoundRobin, rng);
  iot::NetworkConfig config;
  config.seed = seed + 1;
  return iot::FlatNetwork(std::move(node_data), config);
}

/// |estimate - truth| / truth; the measure the paper's figures plot.
/// Returns 0 for truth == 0 and estimate == 0, infinity if only truth is 0.
inline double relative_error(double estimate, double truth) {
  if (truth == 0.0) {
    return estimate == 0.0 ? 0.0
                           : std::numeric_limits<double>::infinity();
  }
  return std::abs(estimate - truth) / truth;
}

inline void emit(const TextTable& table, const Options& options) {
  std::cout << table.to_string();
  if (options.output_csv) {
    std::cout << "\n# CSV\n" << table.to_csv();
  }
}

}  // namespace prc::bench
