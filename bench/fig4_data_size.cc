// Figure 4: sampling probability vs data size.
//
// Paper setup: alpha = 0.055, delta = 0.5; the dataset is scaled from 10%
// to 100% of the original and the Theorem 3.3 sampling probability is
// plotted.  Expected shape: p falls like 1/n, so the absolute number of
// samples collected converges to a constant — the "suitable for big data"
// claim (overhead does not grow with data volume).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "estimator/accuracy.h"

int main(int argc, char** argv) {
  using namespace prc;
  const auto options = bench::parse_options(argc, argv);
  const std::size_t kNodes = 8;
  const query::AccuracySpec spec{0.055, 0.5};

  const auto records = bench::load_records(options);

  std::cout << "Figure 4: sampling probability vs data size (alpha=0.055, "
               "delta=0.5)\n"
            << "# k=" << kNodes << " nodes\n\n";

  TextTable table({"data_fraction", "n", "p(Thm3.3)", "expected_samples",
                   "measured_samples"});
  for (int percent = 10; percent <= 100; percent += 10) {
    const std::size_t count =
        records.size() * static_cast<std::size_t>(percent) / 100;
    const data::Dataset dataset = data::Dataset::prefix(records, count);
    const auto& column = dataset.column(data::AirQualityIndex::kOzone);
    const std::size_t n = column.size();
    const double p = std::min(
        1.0, estimator::required_sampling_probability(spec, kNodes, n));

    auto network = bench::make_network(column, kNodes,
                                       options.seed + percent);
    network.ensure_sampling_probability(p);
    table.add_row({table.format(percent / 100.0), std::to_string(n),
                   table.format(p),
                   table.format(p * static_cast<double>(n)),
                   std::to_string(
                       network.base_station().cached_sample_count())});
  }
  bench::emit(table, options);
  std::cout << "\n# paper shape check: p should decay ~1/n while the sample\n"
            << "# count stays flat (the sqrt(8k)*2/(alpha*sqrt(1-delta))\n"
            << "# constant), so bigger data does NOT mean more traffic.\n";
  return 0;
}
