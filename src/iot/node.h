// A simulated smart device holding a local data multiset.
#pragma once

#include <vector>

#include "common/rng.h"
#include "iot/messages.h"
#include "sampling/local_sampler.h"

namespace prc::iot {

/// One sensor node in the flat network.  Owns its raw local data and its
/// sampling state; only samples (with ranks) and the local cardinality ever
/// leave the node.
class SensorNode {
 public:
  /// `rng` is this node's private stream (split from the network master).
  SensorNode(int id, std::vector<double> values, Rng rng);

  int id() const noexcept { return id_; }
  std::size_t data_count() const noexcept { return sampler_.data_count(); }
  double inclusion_probability() const noexcept {
    return sampler_.inclusion_probability();
  }
  std::size_t sample_count() const noexcept { return sampler_.sample_count(); }

  bool online() const noexcept { return online_; }
  void set_online(bool online) noexcept { online_ = online; }

  /// Handles a SampleRequest: tops the local sample up to the requested
  /// probability and returns the report carrying only the new samples.
  /// An offline node returns no report (the caller observes the dropout).
  SampleReport handle(const SampleRequest& request);

  /// Continuous collection: new readings arrive at the device.  Each is
  /// sampled at the current inclusion probability; ranks shift, so the node
  /// becomes dirty and must retransmit its full sample next refresh.
  void append_data(const std::vector<double>& values);

  /// True when an append invalidated the base station's cached copy.
  bool dirty() const noexcept { return dirty_; }

  /// Marks the station's cached copy of this node as unusable, forcing a
  /// full resync on the next refresh.  The network calls this when a
  /// partially delivered delta had to be discarded: the node's local sampler
  /// already advanced to the new probability, so the missing samples can
  /// only be recovered by retransmitting the whole sample.
  void invalidate_cached_sample() noexcept { dirty_ = true; }

  /// The full-resync report (entire current sample + updated n_i); clears
  /// the dirty flag.  Used by the network's refresh round.
  SampleReport full_report();

 private:
  int id_;
  sampling::LocalSampler sampler_;
  Rng rng_;
  bool online_ = true;
  bool dirty_ = false;
};

}  // namespace prc::iot
