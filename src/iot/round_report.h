// What actually happened during one collection round.
//
// The seed simulator retransmitted forever, so a round could only ever end
// one way and nothing above iot/ could observe degradation.  With bounded
// retries and fault injection a round can complete *partially*; RoundReport
// is the record the estimator, DP session, and market layers consult before
// asserting an accuracy contract that the collected samples may no longer
// support.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace prc::iot {

/// Outcome of one node's participation in a round.
enum class NodeOutcome : std::uint8_t {
  /// The node's report (delta or full resync) fully reached the station;
  /// its effective inclusion probability now equals the round target.
  kDelivered,
  /// Retry budgets ran out on the request or on report frames; the station
  /// kept the node's previous cache and the node will resync next round.
  kDropped,
  /// The node was offline (manually or by churn) and has never reported:
  /// the station knows nothing about its data.
  kOffline,
  /// The node was offline/severed but the station holds samples from an
  /// earlier round — valid, but at an OLDER inclusion probability.  These
  /// are the nodes that bias a global-p estimate.
  kStale,
};

const char* to_string(NodeOutcome outcome) noexcept;

struct RoundReport {
  /// The probability the round was raising the cache to.
  double target_p = 0.0;
  /// New samples the station actually ingested this round.
  std::size_t new_samples = 0;
  /// Per-node outcome, indexed by node id.
  std::vector<NodeOutcome> outcomes;
  /// Retransmissions performed during this round (across all frames).
  std::size_t retries = 0;
  /// Frames abandoned after max_attempts this round.
  std::size_t dropped_frames = 0;
  /// Tree model only: reports lost because an offline interior node severed
  /// the subtree containing their origin for the round.
  std::size_t severed_reports = 0;
  /// Fraction of the station-known data held by nodes whose effective
  /// inclusion probability reached target_p.
  double coverage = 0.0;
  /// Smallest effective inclusion probability over nodes with known data
  /// (0 when some node has never reported at all).
  double min_probability = 0.0;

  std::size_t delivered_nodes() const noexcept { return count(NodeOutcome::kDelivered); }
  std::size_t dropped_nodes() const noexcept { return count(NodeOutcome::kDropped); }
  std::size_t offline_nodes() const noexcept {
    return count(NodeOutcome::kOffline) + count(NodeOutcome::kStale);
  }
  std::size_t stale_nodes() const noexcept { return count(NodeOutcome::kStale); }

  /// True when every node delivered at the round target.
  bool complete() const noexcept {
    return delivered_nodes() == outcomes.size();
  }

  std::string to_string() const;

 private:
  std::size_t count(NodeOutcome outcome) const noexcept;
};

}  // namespace prc::iot
