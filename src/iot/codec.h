// Binary wire codec for the sampling protocol messages.
//
// The simulator's cost accounting is based on each message's wire_size();
// this codec makes that model honest: encode() produces exactly
// wire_size() bytes (fixed 20-byte header + fixed-width fields), and
// decode() round-trips every message.  The header carries a magic byte, a
// message type, the source node id and a payload length, which is what a
// minimal reliable datagram protocol for constrained devices needs.
//
// Layout (all integers little-endian):
//   header (20 B): magic 'P' (1) | type (1) | flags (2) | node_id (4) |
//                  payload_len (4) | sequence (4) | crc32 (4)
//   SampleRequest payload:  target_p (8 B double)
//   SampleReport payload:   data_count (8 B u64) | {value f64, rank u64}*
//   Heartbeat payload:      empty
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "iot/messages.h"

namespace prc::iot {

enum class MessageType : std::uint8_t {
  kSampleRequest = 1,
  kSampleReport = 2,
  kHeartbeat = 3,
};

/// Raised by decode on malformed input (bad magic, truncated payload,
/// CRC mismatch, unknown type).
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// CRC-32 (IEEE 802.3 polynomial) over a byte span; used for frame
/// integrity in the header.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

std::vector<std::uint8_t> encode(const SampleRequest& message,
                                 std::uint32_t sequence = 0);
std::vector<std::uint8_t> encode(const SampleReport& message,
                                 std::uint32_t sequence = 0);
std::vector<std::uint8_t> encode(const Heartbeat& message,
                                 std::uint32_t sequence = 0);

/// Type of an encoded frame (validates header + CRC first).
MessageType peek_type(const std::vector<std::uint8_t>& frame);

SampleRequest decode_sample_request(const std::vector<std::uint8_t>& frame);
SampleReport decode_sample_report(const std::vector<std::uint8_t>& frame);
Heartbeat decode_heartbeat(const std::vector<std::uint8_t>& frame);

}  // namespace prc::iot
