// The base station: caches node samples and answers estimates from them.
//
// Holds, per node, the accumulated rank-annotated sample and the reported
// local cardinality.  The "one sample, multiple queries" property of the
// paper falls out of this cache: queries are answered from it without
// touching the network, and only a request for a higher sampling
// probability triggers a top-up round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "estimator/rank_counting.h"
#include "iot/messages.h"
#include "query/range_query.h"
#include "sampling/rank_sample.h"

namespace prc::iot {

class BaseStation {
 public:
  explicit BaseStation(std::size_t node_count);

  std::size_t node_count() const noexcept { return entries_.size(); }

  /// Sum of reported n_i over all nodes (0 until first reports arrive).
  std::size_t total_data_count() const noexcept;

  /// Sampling probability the cache is currently valid for.
  double sampling_probability() const noexcept { return p_; }

  /// Total samples cached across nodes.
  std::size_t cached_sample_count() const noexcept;

  /// Ingests one node's report (merges the new samples into the cache).
  void ingest(const SampleReport& report);

  /// Replaces one node's cached sample wholesale.  Used after continuous
  /// collection appends shift the node's local ranks: merged deltas would be
  /// stale, so the node retransmits its full sample.
  void replace(const SampleReport& full_report);

  /// Records that a top-up round to probability `p` completed.  Reports from
  /// offline nodes may be missing; the cache simply keeps their old samples,
  /// which keeps estimates unbiased for the data that did report.
  void commit_round(double p);

  /// Views over the cache in the estimator's format.
  std::vector<estimator::NodeSampleView> node_views() const;

  /// RankCounting estimate from the cache.  Requires a completed round
  /// (sampling_probability() > 0).
  double rank_counting_estimate(const query::RangeQuery& range) const;

  /// BasicCounting baseline estimate from the same cache.
  double basic_counting_estimate(const query::RangeQuery& range) const;

  /// Checkpointing: serializes the whole cache (per-node samples, counts,
  /// current probability) to bytes via the wire codec, so a broker can
  /// restart without a fresh collection round.  deserialize() reconstructs
  /// an equivalent station; throws CodecError / std::invalid_argument on
  /// malformed input.
  std::vector<std::uint8_t> serialize() const;
  static BaseStation deserialize(const std::vector<std::uint8_t>& bytes);

 private:
  struct NodeEntry {
    sampling::RankSampleSet samples;
    std::size_t data_count = 0;
    bool reported = false;
  };

  std::vector<NodeEntry> entries_;
  double p_ = 0.0;
};

}  // namespace prc::iot
