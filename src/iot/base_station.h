// The base station: caches node samples and answers estimates from them.
//
// Holds, per node, the accumulated rank-annotated sample, the reported
// local cardinality, and the *effective inclusion probability* p_i the
// cached sample is valid for.  The "one sample, multiple queries" property
// of the paper falls out of this cache: queries are answered from it without
// touching the network, and only a request for a higher sampling
// probability triggers a top-up round.
//
// Per-node probabilities matter under degraded collection: a node that was
// offline (or whose frames were dropped) across a top-up round keeps a
// perfectly valid Bernoulli(p_old) sample while the rest of the fleet moved
// to p_new.  Estimating with one global p would bias that node's
// contribution; the station therefore records p_i per node and the
// RankCounting path applies the per-node Horvitz–Thompson correction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/thread_annotations.h"
#include "estimator/rank_counting.h"
#include "iot/messages.h"
#include "query/range_query.h"
#include "sampling/rank_sample.h"

namespace prc::iot {

/// Aggregate view of how well the cache covers the fleet; what the DP
/// session and the broker consult before asserting an accuracy contract.
struct CoverageSummary {
  /// The last committed round target.
  double target_p = 0.0;
  /// Smallest effective p_i over nodes with known data; 0 when some node
  /// has never reported (its data is entirely invisible to estimates).
  double min_probability = 0.0;
  /// Largest effective p_i (privacy amplification must use this one:
  /// the most-included node enjoys the least amplification).
  double max_probability = 0.0;
  /// Fraction of station-known data held at p_i >= target_p.
  double coverage = 0.0;
  std::size_t reported_nodes = 0;
  /// Reported nodes whose p_i lags the round target.
  std::size_t stale_nodes = 0;
  std::size_t node_count = 0;

  /// Every node reported and none lag the round target.
  bool complete() const noexcept {
    return node_count > 0 && reported_nodes == node_count && stale_nodes == 0;
  }
};

/// Thread-safety: every public method takes the internal mutex, so scalar
/// queries and ingest/commit calls may race freely once collection goes
/// parallel.  The exceptions are node_views() (the returned views alias the
/// cache — keep the station quiescent while an estimator consumes them) and
/// the reference returned by SamplingNetwork::base_station().  The
/// PRC_GUARDED_BY annotations make clang's -Wthread-safety enforce the
/// discipline on the _locked helpers when PRC_THREAD_SAFETY_ANALYSIS is on.
class BaseStation {
 public:
  explicit BaseStation(std::size_t node_count);

  // Copyable (checkpoint restore returns by value); the mutex itself is
  // never copied — each station guards its own cache.
  BaseStation(const BaseStation& other);
  BaseStation& operator=(const BaseStation& other);

  std::size_t node_count() const noexcept;

  /// Sum of reported n_i over all nodes (0 until first reports arrive).
  std::size_t total_data_count() const noexcept;

  /// The last committed round target (the probability the cache would be
  /// valid for if every node had delivered).
  double sampling_probability() const noexcept;

  /// Effective inclusion probability of one node's cached sample (0 until
  /// the node first delivers).
  double node_probability(std::size_t node) const;

  /// True once the node has delivered at least one report.
  bool node_reported(std::size_t node) const;

  /// All effective probabilities, indexed by node.
  std::vector<double> node_probabilities() const;

  /// Coverage of the cache relative to the last committed round target.
  CoverageSummary coverage() const noexcept;

  /// Total samples cached across nodes.
  std::size_t cached_sample_count() const noexcept;

  /// Ingests one node's report (merges the new samples into the cache).
  void ingest(const SampleReport& report);

  /// Replaces one node's cached sample wholesale.  Used after continuous
  /// collection appends shift the node's local ranks: merged deltas would be
  /// stale, so the node retransmits its full sample.
  void replace(const SampleReport& full_report);

  /// Records that a top-up round to probability `p` completed with every
  /// node delivering (the fault-free convenience form).
  void commit_round(double p);

  /// Records a possibly-partial round: only nodes with refreshed[i] == true
  /// had their full report/delta delivered, so only their effective p_i is
  /// raised to `p`.  Everyone else keeps their older p_i — which is what
  /// keeps estimates unbiased when the round degrades.
  void commit_round(double p, const std::vector<bool>& refreshed);

  /// Views over the cache in the estimator's format.
  std::vector<estimator::NodeSampleView> node_views() const;

  /// RankCounting estimate from the cache, applying each node's own p_i
  /// (heterogeneous Horvitz–Thompson correction).  Requires a completed
  /// round (sampling_probability() > 0).
  double rank_counting_estimate(const query::RangeQuery& range) const;

  /// Batched RankCounting: answers all ranges against ONE consistent cache
  /// snapshot (the mutex is held for the whole batch) and returns exactly
  /// the values per-range rank_counting_estimate() calls would, bit for
  /// bit, at any thread count.
  std::vector<double> rank_counting_estimate_batch(
      std::span<const query::RangeQuery> ranges) const;

  /// BasicCounting baseline estimate from the same cache.  Deliberately
  /// kept at the seed-style single global probability: it is the biased
  /// baseline the degraded-operation benches compare against.
  double basic_counting_estimate(const query::RangeQuery& range) const;

  /// Checkpointing: serializes the whole cache (per-node samples, counts,
  /// effective probabilities, current round target) to bytes via the wire
  /// codec, so a broker can restart without a fresh collection round.
  /// deserialize() reconstructs an equivalent station; throws CodecError /
  /// std::invalid_argument on malformed input.
  std::vector<std::uint8_t> serialize() const;
  static BaseStation deserialize(const std::vector<std::uint8_t>& bytes);

 private:
  struct NodeEntry {
    sampling::RankSampleSet samples;
    std::size_t data_count = 0;
    double probability = 0.0;  // effective p_i of the cached sample
    bool reported = false;
  };

  // Owning copy of the per-node state the rank-counting estimators read:
  // staged under mutex_, consumed after it is released, so the pool-backed
  // estimate never runs with the station lock held (report ingestion would
  // queue behind query latency otherwise).
  struct EstimateSnapshot {
    std::vector<sampling::RankSampleSet> samples;
    std::vector<std::size_t> data_counts;
    std::vector<double> probabilities;
    std::vector<estimator::NodeSampleView> views() const;
  };
  EstimateSnapshot estimate_snapshot() const;

  // Unlocked bodies shared by the public methods (which lock) and by
  // internal callers that already hold the mutex.
  std::size_t total_data_count_locked() const PRC_REQUIRES(mutex_);
  std::vector<double> node_probabilities_locked() const PRC_REQUIRES(mutex_);
  CoverageSummary coverage_locked() const PRC_REQUIRES(mutex_);
  std::vector<estimator::NodeSampleView> node_views_locked() const
      PRC_REQUIRES(mutex_);
  void replace_locked(const SampleReport& full_report) PRC_REQUIRES(mutex_);
  void commit_round_locked(double p, const std::vector<bool>& refreshed)
      PRC_REQUIRES(mutex_);

  mutable std::mutex mutex_;
  std::vector<NodeEntry> entries_ PRC_GUARDED_BY(mutex_);
  double p_ PRC_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace prc::iot
