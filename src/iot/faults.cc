#include "iot/faults.h"

#include <cmath>

#include "common/check.h"

namespace prc::iot {
namespace {

void check_probability(double value, const char* name) {
  PRC_CHECK(std::isfinite(value) && value >= 0.0 && value <= 1.0)
      << name << " must be in [0, 1], got " << value;
}

}  // namespace

void FaultConfig::validate() const {
  check_probability(crash_probability, "crash_probability");
  check_probability(rejoin_probability, "rejoin_probability");
  check_probability(good_to_bad, "good_to_bad");
  check_probability(bad_to_good, "bad_to_good");
  // Loss in either channel state must leave a delivery path open, otherwise
  // an unbounded-retry network could spin forever inside one frame.
  PRC_CHECK(loss_good >= 0.0 && loss_good < 1.0)
      << "loss_good must be in [0, 1), got " << loss_good;
  PRC_CHECK(loss_bad >= 0.0 && loss_bad < 1.0)
      << "loss_bad must be in [0, 1), got " << loss_bad;
  PRC_CHECK(!(good_to_bad > 0.0) || bad_to_good > 0.0)
      << "bad_to_good must be positive when good_to_bad is (bursts must end)";
  check_probability(duplication_probability, "duplication_probability");
}

FaultSchedule::FaultSchedule(const FaultConfig& config, std::size_t node_count)
    : config_(config), enabled_(config.enabled()) {
  config_.validate();
  if (!enabled_) return;
  Rng master(config_.seed);
  // The retired shared duplication stream is still split off first so the
  // per-node stream layout (churn + burst sequences) is unchanged from
  // earlier releases; duplication now draws from the per-node streams.
  (void)master.split();
  nodes_.resize(node_count);
  for (auto& node : nodes_) node.rng = master.split();
}

void FaultSchedule::begin_round() {
  if (!enabled_) return;
  ++rounds_;
  for (auto& node : nodes_) {
    if (node.offline) {
      if (node.rng.bernoulli(config_.rejoin_probability)) node.offline = false;
    } else if (node.rng.bernoulli(config_.crash_probability)) {
      node.offline = true;
    }
  }
}

bool FaultSchedule::node_offline(std::size_t node) const {
  if (!enabled_) return false;
  return nodes_.at(node).offline;
}

std::size_t FaultSchedule::offline_node_count() const noexcept {
  std::size_t count = 0;
  for (const auto& node : nodes_) count += node.offline ? 1 : 0;
  return count;
}

bool FaultSchedule::attempt_lost(std::size_t node) {
  if (!enabled_) return false;
  auto& state = nodes_.at(node);
  // Transition first, then draw the loss from the state the attempt sees:
  // a burst that starts on this attempt already degrades it.
  if (state.channel_bad) {
    if (state.rng.bernoulli(config_.bad_to_good)) state.channel_bad = false;
  } else if (state.rng.bernoulli(config_.good_to_bad)) {
    state.channel_bad = true;
  }
  return state.rng.bernoulli(state.channel_bad ? config_.loss_bad
                                               : config_.loss_good);
}

bool FaultSchedule::duplicate_frame(std::size_t node) {
  if (!enabled_) return false;
  return nodes_.at(node).rng.bernoulli(config_.duplication_probability);
}

}  // namespace prc::iot
