#include "iot/tree_network.h"

#include <algorithm>
#include <stdexcept>

namespace prc::iot {
namespace {

/// Tree slots: slot 0 is the base station; sensor node i occupies slot
/// i + 1.  With fanout f, the parent of slot s (s >= 1) is slot (s-1)/f.
std::size_t parent_slot(std::size_t slot, std::size_t fanout) {
  return (slot - 1) / fanout;
}

}  // namespace

TreeNetwork::TreeNetwork(std::vector<std::vector<double>> node_data,
                         TreeConfig config)
    : station_(node_data.size()),
      loss_rng_(Rng(config.seed).split()),
      config_(config) {
  if (node_data.empty()) {
    throw std::invalid_argument("tree network needs >= 1 node");
  }
  if (config_.fanout == 0) {
    throw std::invalid_argument("tree fanout must be >= 1");
  }
  if (config_.frame_loss_probability < 0.0 ||
      config_.frame_loss_probability >= 1.0) {
    throw std::invalid_argument("frame loss probability must be in [0, 1)");
  }
  Rng master(config.seed);
  nodes_.reserve(node_data.size());
  for (std::size_t i = 0; i < node_data.size(); ++i) {
    total_data_count_ += node_data[i].size();
    nodes_.emplace_back(static_cast<int>(i), std::move(node_data[i]),
                        master.split());
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    height_ = std::max(height_, depth(i));
  }
  level_stats_.assign(height_ + 1, TreeLevelStats{});
}

std::size_t TreeNetwork::depth(std::size_t node) const {
  if (node >= nodes_.size()) throw std::out_of_range("node index");
  std::size_t slot = node + 1;
  std::size_t d = 0;
  while (slot != 0) {
    slot = parent_slot(slot, config_.fanout);
    ++d;
  }
  return d;
}

std::size_t TreeNetwork::transmit_link(std::size_t frame_bytes,
                                       std::size_t level) {
  std::size_t attempts = 1;
  while (loss_rng_.bernoulli(config_.frame_loss_probability)) {
    ++attempts;
    ++stats_.retransmissions;
  }
  stats_.uplink_messages += attempts;
  stats_.uplink_bytes += attempts * frame_bytes;
  auto& lvl = level_stats_.at(level);
  lvl.links_crossed += attempts;
  lvl.bytes += attempts * frame_bytes;
  return attempts;
}

std::size_t TreeNetwork::ensure_sampling_probability(double p) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("sampling probability must be in (0, 1]");
  }
  if (p <= station_.sampling_probability()) return 0;

  // Downlink: the request floods the tree, one frame per parent->child
  // link (k links total).
  const SampleRequest probe{0, p};
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::size_t attempts = 1;
    while (loss_rng_.bernoulli(config_.frame_loss_probability)) {
      ++attempts;
      ++stats_.retransmissions;
    }
    stats_.downlink_messages += attempts;
    stats_.downlink_bytes += attempts * probe.wire_size();
  }

  // Every node tops up locally; the base station receives all payloads
  // regardless of routing (reliable links), so ingest directly.
  std::vector<std::size_t> new_samples_per_node(nodes_.size(), 0);
  std::size_t total_new = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    SampleReport report = nodes_[i].handle(SampleRequest{
        static_cast<int>(i), p});
    new_samples_per_node[i] = report.new_samples.size();
    total_new += report.new_samples.size();
    stats_.samples_transferred += report.new_samples.size();
    station_.ingest(report);
  }

  // Uplink accounting.
  if (config_.aggregate_frames) {
    // Coalesced convergecast: process slots bottom-up; each node forwards
    // its subtree's samples (plus one n_i scalar per subtree node) to its
    // parent in as few frames as possible.
    const std::size_t slots = nodes_.size() + 1;
    std::vector<std::size_t> subtree_samples(slots, 0);
    std::vector<std::size_t> subtree_nodes(slots, 0);
    for (std::size_t slot = slots - 1; slot >= 1; --slot) {
      const std::size_t node = slot - 1;
      subtree_samples[slot] += new_samples_per_node[node];
      subtree_nodes[slot] += 1;
      const std::size_t payload = subtree_samples[slot] * kSampleWireBytes +
                                  subtree_nodes[slot] * sizeof(std::uint64_t);
      const std::size_t frames = std::max<std::size_t>(
          1, (subtree_samples[slot] + kMaxSamplesPerFrame - 1) /
                 kMaxSamplesPerFrame);
      transmit_link(frames * kMessageHeaderBytes + payload, depth(node));
      const std::size_t parent = parent_slot(slot, config_.fanout);
      subtree_samples[parent] += subtree_samples[slot];
      subtree_nodes[parent] += subtree_nodes[slot];
    }
  } else {
    // Naive store-and-forward: each node's own report is relayed as its own
    // frame chain across every link on the path to the root.
    for (std::size_t node = 0; node < nodes_.size(); ++node) {
      const std::size_t samples = new_samples_per_node[node];
      const std::size_t frames = std::max<std::size_t>(
          1, (samples + kMaxSamplesPerFrame - 1) / kMaxSamplesPerFrame);
      const std::size_t bytes = frames * kMessageHeaderBytes +
                                samples * kSampleWireBytes +
                                sizeof(std::uint64_t);
      const std::size_t node_depth = depth(node);
      // The report crosses node_depth links, charged at levels
      // node_depth, node_depth-1, ..., 1.
      for (std::size_t level = node_depth; level >= 1; --level) {
        transmit_link(bytes, level);
      }
    }
  }
  station_.commit_round(p);
  return total_new;
}

}  // namespace prc::iot
