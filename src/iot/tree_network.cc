#include "iot/tree_network.h"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace prc::iot {
namespace {

/// Tree slots: slot 0 is the base station; sensor node i occupies slot
/// i + 1.  With fanout f, the parent of slot s (s >= 1) is slot (s-1)/f.
std::size_t parent_slot(std::size_t slot, std::size_t fanout) {
  return (slot - 1) / fanout;
}

std::size_t backoff_slots_after(std::size_t failed_attempts) {
  return std::size_t{1} << std::min<std::size_t>(failed_attempts - 1, 10);
}

}  // namespace

TreeNetwork::TreeNetwork(std::vector<std::vector<double>> node_data,
                         TreeConfig config)
    : station_(node_data.size()),
      config_(config),
      faults_(config.faults, node_data.size()) {
  if (node_data.empty()) {
    throw std::invalid_argument("tree network needs >= 1 node");
  }
  if (config_.fanout == 0) {
    throw std::invalid_argument("tree fanout must be >= 1");
  }
  if (config_.frame_loss_probability < 0.0 ||
      config_.frame_loss_probability >= 1.0) {
    throw std::invalid_argument("frame loss probability must be in [0, 1)");
  }
  Rng master(config.seed);
  nodes_.reserve(node_data.size());
  for (std::size_t i = 0; i < node_data.size(); ++i) {
    total_data_count_ += node_data[i].size();
    nodes_.emplace_back(static_cast<int>(i), std::move(node_data[i]),
                        master.split());
  }
  // Channel streams: same master, split after the k sampling streams (see
  // FlatNetwork's constructor for the layout rationale).
  channel_rngs_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    channel_rngs_.push_back(master.split());
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    height_ = std::max(height_, depth(i));
  }
  level_stats_.assign(height_ + 1, TreeLevelStats{});
}

std::size_t TreeNetwork::depth(std::size_t node) const {
  if (node >= nodes_.size()) throw std::out_of_range("node index");
  std::size_t slot = node + 1;
  std::size_t d = 0;
  while (slot != 0) {
    slot = parent_slot(slot, config_.fanout);
    ++d;
  }
  return d;
}

void TreeNetwork::set_node_online(std::size_t node, bool online) {
  nodes_.at(node).set_online(online);
}

bool TreeNetwork::route_to_root_alive(std::size_t node) const {
  if (node >= nodes_.size()) throw std::out_of_range("node index");
  std::size_t slot = parent_slot(node + 1, config_.fanout);
  while (slot != 0) {
    const std::size_t relay = slot - 1;
    if (!nodes_[relay].online() || faults_.node_offline(relay)) return false;
    slot = parent_slot(slot, config_.fanout);
  }
  return true;
}

std::size_t TreeNetwork::transmit_link(std::size_t frame_bytes,
                                       std::size_t level, std::size_t origin) {
  Rng& rng = channel_rngs_[origin];
  std::size_t attempts = 1;
  while (rng.bernoulli(config_.frame_loss_probability)) {
    ++attempts;
    ++stats_.retransmissions;
  }
  stats_.uplink_messages += attempts;
  stats_.uplink_bytes += attempts * frame_bytes;
  stats_.frames_attempted += 1;
  stats_.frames_delivered += 1;
  auto& lvl = level_stats_.at(level);
  lvl.links_crossed += attempts;
  lvl.bytes += attempts * frame_bytes;
  return attempts;
}

TreeNetwork::Delivery TreeNetwork::transmit_link_bounded(
    std::size_t frame_bytes, std::size_t level, std::size_t origin,
    CommunicationStats& stats, std::vector<TreeLevelStats>& levels) {
  Rng& rng = channel_rngs_[origin];
  Delivery result;
  ++stats.frames_attempted;
  auto& lvl = levels.at(level);
  for (;;) {
    ++result.attempts;
    ++stats.uplink_messages;
    stats.uplink_bytes += frame_bytes;
    ++lvl.links_crossed;
    lvl.bytes += frame_bytes;
    const bool iid_lost = rng.bernoulli(config_.frame_loss_probability);
    const bool burst_lost = faults_.attempt_lost(origin);
    if (!iid_lost && !burst_lost) {
      result.delivered = true;
      ++stats.frames_delivered;
      if (faults_.duplicate_frame(origin)) {
        ++stats.duplicated_frames;
        ++stats.uplink_messages;
        stats.uplink_bytes += frame_bytes;
      }
      return result;
    }
    ++stats.retransmissions;
    if (config_.max_attempts != 0 && result.attempts >= config_.max_attempts) {
      ++stats.dropped_frames;
      return result;
    }
    stats.backoff_slots += backoff_slots_after(result.attempts);
  }
}

TreeNetwork::Delivery TreeNetwork::transmit_downlink_bounded(
    std::size_t frame_bytes, std::size_t node, CommunicationStats& stats) {
  Rng& rng = channel_rngs_[node];
  Delivery result;
  ++stats.frames_attempted;
  for (;;) {
    ++result.attempts;
    ++stats.downlink_messages;
    stats.downlink_bytes += frame_bytes;
    const bool iid_lost = rng.bernoulli(config_.frame_loss_probability);
    const bool burst_lost = faults_.attempt_lost(node);
    if (!iid_lost && !burst_lost) {
      result.delivered = true;
      ++stats.frames_delivered;
      return result;
    }
    ++stats.retransmissions;
    if (config_.max_attempts != 0 && result.attempts >= config_.max_attempts) {
      ++stats.dropped_frames;
      return result;
    }
    stats.backoff_slots += backoff_slots_after(result.attempts);
  }
}

RoundReport TreeNetwork::ensure_sampling_probability(double p) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("sampling probability must be in (0, 1]");
  }
  RoundReport report;
  report.target_p = p;
  report.outcomes.assign(nodes_.size(), NodeOutcome::kDelivered);

  if (p <= station_.sampling_probability()) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (station_.node_probability(i) >= p) continue;
      report.outcomes[i] = station_.node_reported(i) ? NodeOutcome::kStale
                                                     : NodeOutcome::kOffline;
    }
    const CoverageSummary cov = station_.coverage();
    report.coverage = cov.coverage;
    report.min_probability = cov.min_probability;
    telemetry::counter("iot.rounds_noop").increment();
    return report;
  }

  const bool all_online = std::all_of(
      nodes_.begin(), nodes_.end(),
      [](const SensorNode& node) { return node.online(); });
  if (faults_.enabled() || config_.max_attempts != 0 || !all_online) {
    return run_degraded_round(p);
  }

  PRC_TRACE_SPAN("iot.round");
  telemetry::ScopedTimer round_timer(
      telemetry::histogram("iot.round_duration_us"));
  const CommunicationStats stats_before = stats_;

  // ---- Fault-free path: the seed accounting, byte for byte. ----

  // Downlink: the request floods the tree, one frame per parent->child
  // link (k links total), each drawn from the target node's channel stream.
  const SampleRequest probe{0, p};
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::size_t attempts = 1;
    while (channel_rngs_[i].bernoulli(config_.frame_loss_probability)) {
      ++attempts;
      ++stats_.retransmissions;
    }
    stats_.downlink_messages += attempts;
    stats_.downlink_bytes += attempts * probe.wire_size();
    stats_.frames_attempted += 1;
    stats_.frames_delivered += 1;
  }

  // Every node tops up locally; the base station receives all payloads
  // regardless of routing (reliable links), so ingest directly.  Node
  // top-up is the compute-heavy phase and is embarrassingly parallel: each
  // node touches only its own sampler, its own slot here, and the mutexed
  // station (whose per-node entries are disjoint).
  std::vector<std::size_t> new_samples_per_node(nodes_.size(), 0);
  parallel::parallel_for_each(nodes_.size(), [&](std::size_t i) {
    SampleReport node_report = nodes_[i].handle(SampleRequest{
        static_cast<int>(i), p});
    if (nodes_[i].dirty()) {
      // A drop in an earlier degraded round left the cache behind the
      // node's sampler; resync in full before merging any further deltas.
      node_report = nodes_[i].full_report();
      new_samples_per_node[i] = node_report.new_samples.size();
      station_.replace(node_report);
      return;
    }
    new_samples_per_node[i] = node_report.new_samples.size();
    station_.ingest(node_report);
  });
  std::size_t total_new = 0;
  for (const std::size_t count : new_samples_per_node) total_new += count;
  stats_.samples_transferred += total_new;

  // Uplink accounting.
  const std::size_t retrans_before = stats_.retransmissions;
  if (config_.aggregate_frames) {
    // Coalesced convergecast: process slots bottom-up; each node forwards
    // its subtree's samples (plus one n_i scalar per subtree node) to its
    // parent in as few frames as possible.
    const std::size_t slots = nodes_.size() + 1;
    std::vector<std::size_t> subtree_samples(slots, 0);
    std::vector<std::size_t> subtree_nodes(slots, 0);
    for (std::size_t slot = slots - 1; slot >= 1; --slot) {
      const std::size_t node = slot - 1;
      subtree_samples[slot] += new_samples_per_node[node];
      subtree_nodes[slot] += 1;
      const std::size_t payload = subtree_samples[slot] * kSampleWireBytes +
                                  subtree_nodes[slot] * sizeof(std::uint64_t);
      const std::size_t frames = std::max<std::size_t>(
          1, (subtree_samples[slot] + kMaxSamplesPerFrame - 1) /
                 kMaxSamplesPerFrame);
      transmit_link(frames * kMessageHeaderBytes + payload, depth(node), node);
      const std::size_t parent = parent_slot(slot, config_.fanout);
      subtree_samples[parent] += subtree_samples[slot];
      subtree_nodes[parent] += subtree_nodes[slot];
    }
  } else {
    // Naive store-and-forward: each node's own report is relayed as its own
    // frame chain across every link on the path to the root.
    for (std::size_t node = 0; node < nodes_.size(); ++node) {
      const std::size_t samples = new_samples_per_node[node];
      const std::size_t frames = std::max<std::size_t>(
          1, (samples + kMaxSamplesPerFrame - 1) / kMaxSamplesPerFrame);
      const std::size_t bytes = frames * kMessageHeaderBytes +
                                samples * kSampleWireBytes +
                                sizeof(std::uint64_t);
      const std::size_t node_depth = depth(node);
      // The report crosses node_depth links, charged at levels
      // node_depth, node_depth-1, ..., 1.
      for (std::size_t level = node_depth; level >= 1; --level) {
        transmit_link(bytes, level, node);
      }
    }
  }
  station_.commit_round(p);
  report.new_samples = total_new;
  report.retries = stats_.retransmissions - retrans_before;
  const CoverageSummary cov = station_.coverage();
  report.coverage = cov.coverage;
  report.min_probability = cov.min_probability;
  last_round_ = report;
  publish_round_metrics(stats_before, stats_, report);
  return report;
}

RoundReport TreeNetwork::run_degraded_round(double p) {
  PRC_TRACE_SPAN("iot.round");
  telemetry::ScopedTimer round_timer(
      telemetry::histogram("iot.round_duration_us"));
  const CommunicationStats stats_before = stats_;
  RoundReport report;
  report.target_p = p;
  report.outcomes.assign(nodes_.size(), NodeOutcome::kDelivered);
  faults_.begin_round();
  const std::size_t retrans_before = stats_.retransmissions;
  const std::size_t dropped_before = stats_.dropped_frames;
  std::vector<bool> refreshed(nodes_.size(), false);

  const SampleRequest probe{0, p};
  // Per-node lanes, merged serially in node order after the parallel
  // region; every stochastic draw a node makes comes from its own channel /
  // fault streams, so the round is bit-identical at any thread count.
  // Relay liveness (route_to_root_alive) reads churn state frozen by
  // begin_round() above — no node mutates it during the round.
  struct NodeLane {
    CommunicationStats stats;
    std::vector<TreeLevelStats> levels;
    std::size_t new_samples = 0;
    bool refreshed = false;
    bool severed = false;
  };
  std::vector<NodeLane> lanes(nodes_.size());

  parallel::parallel_for_each(nodes_.size(), [&](std::size_t i) {
    auto& node = nodes_[i];
    auto& lane = lanes[i];
    lane.levels.assign(height_ + 1, TreeLevelStats{});
    const bool offline = !node.online() || faults_.node_offline(i);
    const bool severed = !route_to_root_alive(i);
    const auto prior_outcome = station_.node_probability(i) > 0.0
                                   ? NodeOutcome::kStale
                                   : NodeOutcome::kOffline;
    if (severed) {
      // A dead relay cuts the node off in both directions: the request never
      // arrives and nothing the node sends can reach the root.
      lane.severed = true;
      report.outcomes[i] = prior_outcome;
      return;
    }
    const Delivery down =
        transmit_downlink_bounded(probe.wire_size(), i, lane.stats);
    if (offline) {
      report.outcomes[i] = prior_outcome;
      return;
    }
    if (!down.delivered) {
      // The node never heard the request; its sampler did not move.
      report.outcomes[i] = NodeOutcome::kDropped;
      return;
    }
    SampleReport node_report = node.handle(SampleRequest{node.id(), p});
    bool full_resync = false;
    if (node.dirty()) {
      // A previous drop left the station's cache behind the node's sampler;
      // a delta on top of that gap would under-count.  Send the full sample.
      node_report = node.full_report();
      full_resync = true;
    }
    // Degraded uplink: the report is relayed store-and-forward across every
    // link on the path to the root (aggregation is not attempted while the
    // topology is unstable), one bounded frame chain per link.  Delivery is
    // atomic: a drop on any link discards the whole report.
    const std::size_t samples = node_report.new_samples.size();
    const std::size_t frames = std::max<std::size_t>(
        1, (samples + kMaxSamplesPerFrame - 1) / kMaxSamplesPerFrame);
    const std::size_t bytes = frames * kMessageHeaderBytes +
                              samples * kSampleWireBytes +
                              sizeof(std::uint64_t);
    bool delivered = true;
    const std::size_t node_depth = depth(i);
    for (std::size_t level = node_depth; level >= 1 && delivered; --level) {
      delivered =
          transmit_link_bounded(bytes, level, i, lane.stats, lane.levels)
              .delivered;
    }
    if (delivered) {
      if (full_resync) {
        station_.replace(node_report);
      } else {
        station_.ingest(node_report);
      }
      lane.new_samples = samples;
      lane.stats.samples_transferred += samples;
      lane.refreshed = true;
    } else {
      node.invalidate_cached_sample();
      report.outcomes[i] = NodeOutcome::kDropped;
    }
  });

  // Serial merge in node index order.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& lane = lanes[i];
    stats_ += lane.stats;
    for (std::size_t level = 0; level < lane.levels.size(); ++level) {
      level_stats_[level].links_crossed += lane.levels[level].links_crossed;
      level_stats_[level].bytes += lane.levels[level].bytes;
    }
    report.new_samples += lane.new_samples;
    if (lane.severed) ++report.severed_reports;
    refreshed[i] = lane.refreshed;
  }

  station_.commit_round(p, refreshed);
  report.retries = stats_.retransmissions - retrans_before;
  report.dropped_frames = stats_.dropped_frames - dropped_before;
  const CoverageSummary cov = station_.coverage();
  report.coverage = cov.coverage;
  report.min_probability = cov.min_probability;
  last_round_ = report;
  publish_round_metrics(stats_before, stats_, report);
  return report;
}

}  // namespace prc::iot
