#include "iot/codec.h"

#include <array>
#include <cstring>

#include "common/check.h"

namespace prc::iot {
namespace {

constexpr std::uint8_t kMagic = 'P';
constexpr std::size_t kHeaderSize = kMessageHeaderBytes;
// Header field offsets.
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffType = 1;
constexpr std::size_t kOffFlags = 2;
constexpr std::size_t kOffNodeId = 4;
constexpr std::size_t kOffPayloadLen = 8;
constexpr std::size_t kOffSequence = 12;
constexpr std::size_t kOffCrc = 16;

static_assert(kMessageHeaderBytes == 20, "codec layout assumes 20B header");

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::size_t offset,
             std::uint32_t value) {
  PRC_DCHECK(offset + 4 <= out.size())
      << "put_u32 out of bounds: offset " << offset << " in frame of "
      << out.size();
  for (int i = 0; i < 4; ++i) {
    out[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in,
                      std::size_t offset) {
  PRC_DCHECK(offset + 4 <= in.size())
      << "get_u32 out of bounds: offset " << offset << " in frame of "
      << in.size();
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(in[offset + static_cast<std::size_t>(i)])
             << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in,
                      std::size_t offset) {
  PRC_DCHECK(offset + 8 <= in.size())
      << "get_u64 out of bounds: offset " << offset << " in frame of "
      << in.size();
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(in[offset + static_cast<std::size_t>(i)])
             << (8 * i);
  }
  return value;
}

double get_f64(const std::vector<std::uint8_t>& in, std::size_t offset) {
  const std::uint64_t bits = get_u64(in, offset);
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Builds header + reserves the payload; the CRC is stamped by seal().
std::vector<std::uint8_t> make_frame(MessageType type, int node_id,
                                     std::uint32_t payload_len,
                                     std::uint32_t sequence) {
  std::vector<std::uint8_t> frame(kHeaderSize, 0);
  frame[kOffMagic] = kMagic;
  frame[kOffType] = static_cast<std::uint8_t>(type);
  frame[kOffFlags] = 0;
  frame[kOffFlags + 1] = 0;
  put_u32(frame, kOffNodeId, static_cast<std::uint32_t>(node_id));
  put_u32(frame, kOffPayloadLen, payload_len);
  put_u32(frame, kOffSequence, sequence);
  frame.reserve(kHeaderSize + payload_len);
  return frame;
}

/// Computes the CRC over everything except the CRC field itself.
void seal(std::vector<std::uint8_t>& frame) {
  const std::uint32_t head_crc = crc32(frame.data(), kOffCrc);
  const std::uint32_t body_crc =
      frame.size() > kHeaderSize
          ? crc32(frame.data() + kHeaderSize, frame.size() - kHeaderSize)
          : 0;
  put_u32(frame, kOffCrc, head_crc ^ body_crc);
}

void validate(const std::vector<std::uint8_t>& frame, MessageType expected) {
  if (frame.size() < kHeaderSize) throw CodecError("frame shorter than header");
  if (frame[kOffMagic] != kMagic) throw CodecError("bad magic");
  const auto type = static_cast<MessageType>(frame[kOffType]);
  if (type != expected) throw CodecError("unexpected message type");
  const std::uint32_t payload_len = get_u32(frame, kOffPayloadLen);
  if (frame.size() != kHeaderSize + payload_len) {
    throw CodecError("payload length mismatch");
  }
  const std::uint32_t stored = get_u32(frame, kOffCrc);
  const std::uint32_t head_crc = crc32(frame.data(), kOffCrc);
  const std::uint32_t body_crc =
      frame.size() > kHeaderSize
          ? crc32(frame.data() + kHeaderSize, frame.size() - kHeaderSize)
          : 0;
  if (stored != (head_crc ^ body_crc)) throw CodecError("crc mismatch");
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = crc_table()[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::vector<std::uint8_t> encode(const SampleRequest& message,
                                 std::uint32_t sequence) {
  auto frame = make_frame(MessageType::kSampleRequest, message.node_id,
                          sizeof(double), sequence);
  put_f64(frame, message.target_p);
  seal(frame);
  return frame;
}

std::vector<std::uint8_t> encode(const SampleReport& message,
                                 std::uint32_t sequence) {
  const auto payload_len = static_cast<std::uint32_t>(
      sizeof(std::uint64_t) + message.new_samples.size() * kSampleWireBytes);
  auto frame = make_frame(MessageType::kSampleReport, message.node_id,
                          payload_len, sequence);
  put_u64(frame, static_cast<std::uint64_t>(message.data_count));
  for (const auto& sample : message.new_samples) {
    put_f64(frame, sample.value);
    put_u64(frame, sample.rank);
  }
  seal(frame);
  return frame;
}

std::vector<std::uint8_t> encode(const Heartbeat& message,
                                 std::uint32_t sequence) {
  auto frame = make_frame(MessageType::kHeartbeat, message.node_id, 0,
                          sequence);
  seal(frame);
  return frame;
}

MessageType peek_type(const std::vector<std::uint8_t>& frame) {
  if (frame.size() < kHeaderSize) throw CodecError("frame shorter than header");
  if (frame[kOffMagic] != kMagic) throw CodecError("bad magic");
  const auto type = static_cast<MessageType>(frame[kOffType]);
  switch (type) {
    case MessageType::kSampleRequest:
    case MessageType::kSampleReport:
    case MessageType::kHeartbeat:
      return type;
  }
  throw CodecError("unknown message type");
}

SampleRequest decode_sample_request(const std::vector<std::uint8_t>& frame) {
  validate(frame, MessageType::kSampleRequest);
  if (frame.size() != kHeaderSize + sizeof(double)) {
    throw CodecError("sample request payload size");
  }
  SampleRequest message;
  message.node_id = static_cast<int>(get_u32(frame, kOffNodeId));
  message.target_p = get_f64(frame, kHeaderSize);
  return message;
}

SampleReport decode_sample_report(const std::vector<std::uint8_t>& frame) {
  validate(frame, MessageType::kSampleReport);
  const std::size_t payload = frame.size() - kHeaderSize;
  if (payload < sizeof(std::uint64_t) ||
      (payload - sizeof(std::uint64_t)) % kSampleWireBytes != 0) {
    throw CodecError("sample report payload size");
  }
  SampleReport message;
  message.node_id = static_cast<int>(get_u32(frame, kOffNodeId));
  message.data_count =
      static_cast<std::size_t>(get_u64(frame, kHeaderSize));
  const std::size_t count =
      (payload - sizeof(std::uint64_t)) / kSampleWireBytes;
  message.new_samples.reserve(count);
  std::size_t offset = kHeaderSize + sizeof(std::uint64_t);
  for (std::size_t i = 0; i < count; ++i) {
    sampling::RankedValue sample;
    sample.value = get_f64(frame, offset);
    sample.rank = get_u64(frame, offset + sizeof(double));
    message.new_samples.push_back(sample);
    offset += kSampleWireBytes;
  }
  return message;
}

Heartbeat decode_heartbeat(const std::vector<std::uint8_t>& frame) {
  validate(frame, MessageType::kHeartbeat);
  Heartbeat message;
  message.node_id = static_cast<int>(get_u32(frame, kOffNodeId));
  return message;
}

}  // namespace prc::iot
