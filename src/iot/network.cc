#include "iot/network.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "iot/codec.h"

namespace prc::iot {

namespace {

// Exponential backoff after the a-th failed attempt (1-based), capped so a
// long outage cannot overflow the slot counter: 1, 2, 4, ..., 1024.
std::size_t backoff_slots_after(std::size_t failed_attempts) {
  return std::size_t{1} << std::min<std::size_t>(failed_attempts - 1, 10);
}

}  // namespace

void publish_round_metrics(const CommunicationStats& before,
                           const CommunicationStats& after,
                           const RoundReport& report) {
  auto& registry = telemetry::Telemetry::registry();
  registry.counter("iot.rounds").increment();
  registry.counter("iot.frames_attempted")
      .increment(after.frames_attempted - before.frames_attempted);
  registry.counter("iot.frames_delivered")
      .increment(after.frames_delivered - before.frames_delivered);
  registry.counter("iot.frames_dropped")
      .increment(after.dropped_frames - before.dropped_frames);
  registry.counter("iot.retransmissions")
      .increment(after.retransmissions - before.retransmissions);
  registry.counter("iot.uplink_bytes")
      .increment(after.uplink_bytes - before.uplink_bytes);
  registry.counter("iot.downlink_bytes")
      .increment(after.downlink_bytes - before.downlink_bytes);
  registry.counter("iot.samples_transferred").increment(report.new_samples);
  registry.gauge("iot.round_coverage").set(report.coverage);
  registry.gauge("iot.round_min_probability").set(report.min_probability);
  registry.histogram("iot.round_new_samples")
      .record(static_cast<double>(report.new_samples));
}

FlatNetwork::FlatNetwork(std::vector<std::vector<double>> node_data,
                         NetworkConfig config)
    : station_(node_data.size()),
      config_(config),
      faults_(config.faults, node_data.size()) {
  if (node_data.empty()) {
    throw std::invalid_argument("network needs >= 1 node");
  }
  if (config_.frame_loss_probability < 0.0 ||
      config_.frame_loss_probability >= 1.0) {
    throw std::invalid_argument("frame loss probability must be in [0, 1)");
  }
  if (config_.bit_corruption_probability < 0.0 ||
      config_.bit_corruption_probability >= 1.0) {
    throw std::invalid_argument("bit corruption probability must be in [0, 1)");
  }
  Rng master(config.seed);
  nodes_.reserve(node_data.size());
  for (std::size_t i = 0; i < node_data.size(); ++i) {
    total_data_count_ += node_data[i].size();
    nodes_.emplace_back(static_cast<int>(i), std::move(node_data[i]),
                        master.split());
  }
  // Channel streams come from the SAME master, after the k sampling splits:
  // node sampling streams keep their historical values, and every node's
  // link randomness is an independent child a parallel round can consume
  // without ordering constraints.
  channel_rngs_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    channel_rngs_.push_back(master.split());
  }
}

void FlatNetwork::set_node_online(std::size_t node, bool online) {
  nodes_.at(node).set_online(online);
}

FlatNetwork::Delivery FlatNetwork::transmit(std::size_t frame_bytes,
                                            bool uplink, std::size_t node,
                                            CommunicationStats& stats) {
  Rng& rng = channel_rngs_[node];
  Delivery result;
  ++stats.frames_attempted;
  for (;;) {
    ++result.attempts;
    if (uplink) {
      ++stats.uplink_messages;
      stats.uplink_bytes += frame_bytes;
    } else {
      ++stats.downlink_messages;
      stats.downlink_bytes += frame_bytes;
    }
    // Draw the i.i.d. loss first, from the node's own channel stream.  The
    // burst channel is stepped even when the i.i.d. draw already lost the
    // frame — the fade process evolves with every attempt on the air, not
    // per delivery.
    const bool iid_lost = rng.bernoulli(config_.frame_loss_probability);
    const bool burst_lost = faults_.attempt_lost(node);
    if (!iid_lost && !burst_lost) {
      result.delivered = true;
      ++stats.frames_delivered;
      maybe_duplicate(frame_bytes, uplink, node, stats);
      return result;
    }
    ++stats.retransmissions;
    if (config_.max_attempts != 0 && result.attempts >= config_.max_attempts) {
      ++stats.dropped_frames;
      return result;
    }
    stats.backoff_slots += backoff_slots_after(result.attempts);
  }
}

void FlatNetwork::maybe_duplicate(std::size_t frame_bytes, bool uplink,
                                  std::size_t node,
                                  CommunicationStats& stats) {
  if (!faults_.duplicate_frame(node)) return;
  ++stats.duplicated_frames;
  if (uplink) {
    ++stats.uplink_messages;
    stats.uplink_bytes += frame_bytes;
  } else {
    ++stats.downlink_messages;
    stats.downlink_bytes += frame_bytes;
  }
}

FlatNetwork::Delivery FlatNetwork::deliver_frame(const SampleReport& frame,
                                                 SampleReport& out,
                                                 CommunicationStats& stats) {
  const auto node = static_cast<std::size_t>(frame.node_id);
  if (!config_.byte_accurate) {
    const Delivery result =
        transmit(frame.wire_size(), /*uplink=*/true, node, stats);
    if (result.delivered) out = frame;
    return result;
  }
  // Byte-accurate path: serialize for real, lose/corrupt per attempt, and
  // keep retransmitting (within the budget) until a frame survives both the
  // channel and the CRC check.
  Rng& rng = channel_rngs_[node];
  Delivery result;
  ++stats.frames_attempted;
  for (;;) {
    auto encoded = encode(frame);
    ++result.attempts;
    stats.uplink_messages += 1;
    stats.uplink_bytes += encoded.size();
    bool failed = false;
    const bool iid_lost = rng.bernoulli(config_.frame_loss_probability);
    const bool burst_lost = faults_.attempt_lost(node);
    if (iid_lost || burst_lost) {
      ++stats.retransmissions;
      failed = true;
    } else {
      if (rng.bernoulli(config_.bit_corruption_probability)) {
        const auto byte_index = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(encoded.size()) - 1));
        const auto bit =
            static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
        encoded[byte_index] ^= bit;
      }
      try {
        out = decode_sample_report(encoded);
        result.delivered = true;
        ++stats.frames_delivered;
        maybe_duplicate(encoded.size(), /*uplink=*/true, node, stats);
        return result;
      } catch (const CodecError&) {
        ++stats.corrupted_frames;
        ++stats.retransmissions;
        failed = true;
      }
    }
    if (failed && config_.max_attempts != 0 &&
        result.attempts >= config_.max_attempts) {
      ++stats.dropped_frames;
      return result;
    }
    stats.backoff_slots += backoff_slots_after(result.attempts);
  }
}

RoundReport FlatNetwork::ensure_sampling_probability(double p) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("sampling probability must be in (0, 1]");
  }
  RoundReport report;
  report.target_p = p;
  report.outcomes.assign(nodes_.size(), NodeOutcome::kDelivered);

  if (p <= station_.sampling_probability()) {
    // The cache already satisfies the request: no traffic, no churn step.
    // Report where each node stands relative to the *requested* p.
    telemetry::counter("iot.rounds_noop").increment();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (station_.node_probability(i) >= p) continue;
      report.outcomes[i] = station_.node_reported(i) ? NodeOutcome::kStale
                                                     : NodeOutcome::kOffline;
    }
    const CoverageSummary cov = station_.coverage();
    report.coverage = cov.coverage;
    report.min_probability = cov.min_probability;
    return report;
  }

  PRC_TRACE_SPAN("iot.round");
  telemetry::ScopedTimer round_timer(
      telemetry::histogram("iot.round_duration_us"));
  const CommunicationStats stats_before = stats_;
  faults_.begin_round();
  const std::size_t retrans_before = stats_.retransmissions;
  const std::size_t dropped_before = stats_.dropped_frames;
  std::vector<bool> refreshed(nodes_.size(), false);

  // Per-node lanes: each node's report generation + channel simulation runs
  // independently (its own channel RNG, burst state, and stats lane; the
  // station is internally mutexed and its per-node entries are disjoint),
  // so the loop parallelizes with no cross-node ordering.  Lanes are merged
  // serially in node order below, making the round bit-identical at any
  // thread count.
  struct NodeLane {
    CommunicationStats stats;
    std::size_t new_samples = 0;
    bool refreshed = false;
  };
  std::vector<NodeLane> lanes(nodes_.size());

  parallel::parallel_for_each(nodes_.size(), [&](std::size_t i) {
    auto& node = nodes_[i];
    auto& lane = lanes[i];
    const SampleRequest request{node.id(), p};
    // The station does not know which nodes crashed; the request goes out
    // regardless (and is charged), exactly like the real downlink.
    const Delivery down =
        transmit(request.wire_size(), /*uplink=*/false, i, lane.stats);
    const bool offline = !node.online() || faults_.node_offline(i);
    if (!down.delivered) {
      // The node never heard the request, so its local sampler did not move:
      // the station cache stays consistent, just older.
      report.outcomes[i] = NodeOutcome::kDropped;
      return;
    }
    if (offline) {
      PRC_LOG_DEBUG << "node " << node.id() << " offline; skipping round";
      report.outcomes[i] = station_.node_probability(i) > 0.0
                               ? NodeOutcome::kStale
                               : NodeOutcome::kOffline;
      return;
    }
    SampleReport node_report = node.handle(request);
    if (node.dirty()) {
      // Appends since the last resync shifted this node's ranks, so the
      // station's cached deltas are in a stale rank epoch.  The node sends
      // its full current sample instead and the station replaces the cache.
      node_report = node.full_report();
      if (transmit_full_report(node_report, lane.stats)) {
        lane.new_samples = node_report.new_samples.size();
        lane.stats.samples_transferred += node_report.new_samples.size();
        lane.refreshed = true;
      } else {
        // The node's sampler already advanced to p, but the station never
        // saw the refreshed sample: force a full resync next opportunity.
        node.invalidate_cached_sample();
        report.outcomes[i] = NodeOutcome::kDropped;
      }
      return;
    }

    // Small reports piggyback on the periodic heartbeat: charge only the
    // sample payload, not an extra frame header.  (Byte-accurate mode has
    // no standalone frame for a piggybacked delta, so it always frames.)
    if (!config_.byte_accurate &&
        node_report.new_samples.size() <= kHeartbeatPiggybackSamples) {
      const Delivery up =
          transmit(node_report.new_samples.size() * kSampleWireBytes +
                       sizeof(std::uint64_t),
                   /*uplink=*/true, i, lane.stats);
      if (up.delivered) {
        ++lane.stats.piggybacked_reports;
        lane.new_samples = node_report.new_samples.size();
        lane.stats.samples_transferred += node_report.new_samples.size();
        station_.ingest(node_report);
        lane.refreshed = true;
      } else {
        node.invalidate_cached_sample();
        report.outcomes[i] = NodeOutcome::kDropped;
      }
      return;
    }
    // Otherwise split into frames of kMaxSamplesPerFrame samples each.
    // Ingestion is atomic per node: a delta is only committed when every
    // frame delivered — a half-ingested delta would leave the cache in no
    // well-defined probability state at all.
    std::vector<SampleReport> arrived;
    bool all_delivered = true;
    std::size_t offset = 0;
    do {
      const std::size_t take = std::min(
          kMaxSamplesPerFrame, node_report.new_samples.size() - offset);
      SampleReport frame;
      frame.node_id = node_report.node_id;
      frame.data_count = node_report.data_count;
      frame.new_samples.assign(
          node_report.new_samples.begin() + static_cast<std::ptrdiff_t>(offset),
          node_report.new_samples.begin() +
              static_cast<std::ptrdiff_t>(offset + take));
      SampleReport delivered;
      if (!deliver_frame(frame, delivered, lane.stats).delivered) {
        all_delivered = false;
        break;  // the sender aborts the rest of the burst
      }
      arrived.push_back(std::move(delivered));
      offset += take;
    } while (offset < node_report.new_samples.size());
    if (all_delivered) {
      for (const auto& frame : arrived) station_.ingest(frame);
      lane.new_samples = node_report.new_samples.size();
      lane.stats.samples_transferred += node_report.new_samples.size();
      lane.refreshed = true;
    } else {
      node.invalidate_cached_sample();
      report.outcomes[i] = NodeOutcome::kDropped;
    }
  });

  // Serial merge in node index order.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    stats_ += lanes[i].stats;
    report.new_samples += lanes[i].new_samples;
    refreshed[i] = lanes[i].refreshed;
  }

  station_.commit_round(p, refreshed);
  report.retries = stats_.retransmissions - retrans_before;
  report.dropped_frames = stats_.dropped_frames - dropped_before;
  const CoverageSummary cov = station_.coverage();
  report.coverage = cov.coverage;
  report.min_probability = cov.min_probability;
  last_round_ = report;
  publish_round_metrics(stats_before, stats_, report);
  return report;
}

bool FlatNetwork::transmit_full_report(const SampleReport& report,
                                       CommunicationStats& stats) {
  // Full resync never piggybacks (it is not a delta); split into frames for
  // delivery, reassemble what actually arrived, then replace the cache
  // wholesale — but only if EVERY frame made it (a partial full-sample
  // would silently shrink the node's apparent sample).
  SampleReport reassembled;
  reassembled.node_id = report.node_id;
  reassembled.data_count = report.data_count;
  std::size_t offset = 0;
  do {
    const std::size_t take =
        std::min(kMaxSamplesPerFrame, report.new_samples.size() - offset);
    SampleReport frame;
    frame.node_id = report.node_id;
    frame.data_count = report.data_count;
    frame.new_samples.assign(
        report.new_samples.begin() + static_cast<std::ptrdiff_t>(offset),
        report.new_samples.begin() +
            static_cast<std::ptrdiff_t>(offset + take));
    SampleReport delivered;
    if (!deliver_frame(frame, delivered, stats).delivered) return false;
    reassembled.new_samples.insert(reassembled.new_samples.end(),
                                   delivered.new_samples.begin(),
                                   delivered.new_samples.end());
    offset += take;
  } while (offset < report.new_samples.size());
  station_.replace(reassembled);
  return true;
}

void FlatNetwork::append_data(std::size_t node,
                              const std::vector<double>& values) {
  auto& sensor = nodes_.at(node);
  total_data_count_ += values.size();
  sensor.append_data(values);
}

std::size_t FlatNetwork::refresh_samples() {
  std::size_t resynced = 0;
  for (auto& node : nodes_) {
    if (!node.dirty()) continue;
    if (!node.online()) continue;  // resync deferred until the node rejoins
    SampleReport report = node.full_report();
    if (transmit_full_report(report, stats_)) {
      ++resynced;
      stats_.samples_transferred += report.new_samples.size();
    } else {
      node.invalidate_cached_sample();
    }
  }
  return resynced;
}

}  // namespace prc::iot
