#include "iot/network.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "iot/codec.h"

namespace prc::iot {

FlatNetwork::FlatNetwork(std::vector<std::vector<double>> node_data,
                         NetworkConfig config)
    : station_(node_data.size()),
      loss_rng_(Rng(config.seed).split()),
      config_(config) {
  if (node_data.empty()) {
    throw std::invalid_argument("network needs >= 1 node");
  }
  if (config_.frame_loss_probability < 0.0 ||
      config_.frame_loss_probability >= 1.0) {
    throw std::invalid_argument("frame loss probability must be in [0, 1)");
  }
  if (config_.bit_corruption_probability < 0.0 ||
      config_.bit_corruption_probability >= 1.0) {
    throw std::invalid_argument("bit corruption probability must be in [0, 1)");
  }
  Rng master(config.seed);
  nodes_.reserve(node_data.size());
  for (std::size_t i = 0; i < node_data.size(); ++i) {
    total_data_count_ += node_data[i].size();
    nodes_.emplace_back(static_cast<int>(i), std::move(node_data[i]),
                        master.split());
  }
}

void FlatNetwork::set_node_online(std::size_t node, bool online) {
  nodes_.at(node).set_online(online);
}

std::size_t FlatNetwork::transmit(std::size_t frame_bytes, bool uplink) {
  std::size_t attempts = 1;
  while (loss_rng_.bernoulli(config_.frame_loss_probability)) {
    ++attempts;
    ++stats_.retransmissions;
  }
  if (uplink) {
    stats_.uplink_messages += attempts;
    stats_.uplink_bytes += attempts * frame_bytes;
  } else {
    stats_.downlink_messages += attempts;
    stats_.downlink_bytes += attempts * frame_bytes;
  }
  return attempts;
}

SampleReport FlatNetwork::deliver_frame(const SampleReport& frame) {
  if (!config_.byte_accurate) {
    transmit(frame.wire_size(), /*uplink=*/true);
    return frame;
  }
  // Byte-accurate path: serialize for real, lose/corrupt per attempt, and
  // keep retransmitting until a frame survives both the channel and the
  // CRC check.
  for (;;) {
    auto encoded = encode(frame);
    stats_.uplink_messages += 1;
    stats_.uplink_bytes += encoded.size();
    if (loss_rng_.bernoulli(config_.frame_loss_probability)) {
      ++stats_.retransmissions;
      continue;
    }
    if (loss_rng_.bernoulli(config_.bit_corruption_probability)) {
      const auto byte_index = static_cast<std::size_t>(loss_rng_.uniform_int(
          0, static_cast<std::int64_t>(encoded.size()) - 1));
      const auto bit = static_cast<std::uint8_t>(
          1u << loss_rng_.uniform_int(0, 7));
      encoded[byte_index] ^= bit;
    }
    try {
      return decode_sample_report(encoded);
    } catch (const CodecError&) {
      ++stats_.corrupted_frames;
      ++stats_.retransmissions;
    }
  }
}

std::size_t FlatNetwork::ensure_sampling_probability(double p) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("sampling probability must be in (0, 1]");
  }
  if (p <= station_.sampling_probability()) return 0;

  std::size_t new_samples = 0;
  for (auto& node : nodes_) {
    const SampleRequest request{node.id(), p};
    transmit(request.wire_size(), /*uplink=*/false);
    if (!node.online()) {
      PRC_LOG_DEBUG << "node " << node.id() << " offline; skipping round";
      continue;
    }
    SampleReport report = node.handle(request);
    if (node.dirty()) {
      // Appends since the last resync shifted this node's ranks, so the
      // station's cached deltas are in a stale rank epoch.  The node sends
      // its full current sample instead and the station replaces the cache.
      report = node.full_report();
      new_samples += report.new_samples.size();
      stats_.samples_transferred += report.new_samples.size();
      transmit_full_report(report);
      continue;
    }
    new_samples += report.new_samples.size();
    stats_.samples_transferred += report.new_samples.size();

    // Small reports piggyback on the periodic heartbeat: charge only the
    // sample payload, not an extra frame header.  (Byte-accurate mode has
    // no standalone frame for a piggybacked delta, so it always frames.)
    if (!config_.byte_accurate &&
        report.new_samples.size() <= kHeartbeatPiggybackSamples) {
      ++stats_.piggybacked_reports;
      transmit(report.new_samples.size() * kSampleWireBytes +
                   sizeof(std::uint64_t),
               /*uplink=*/true);
      station_.ingest(report);
      continue;
    }
    // Otherwise split into frames of kMaxSamplesPerFrame samples each.
    std::size_t offset = 0;
    do {
      const std::size_t take =
          std::min(kMaxSamplesPerFrame, report.new_samples.size() - offset);
      SampleReport frame;
      frame.node_id = report.node_id;
      frame.data_count = report.data_count;
      frame.new_samples.assign(
          report.new_samples.begin() + static_cast<std::ptrdiff_t>(offset),
          report.new_samples.begin() +
              static_cast<std::ptrdiff_t>(offset + take));
      station_.ingest(deliver_frame(frame));
      offset += take;
    } while (offset < report.new_samples.size());
  }
  station_.commit_round(p);
  return new_samples;
}

void FlatNetwork::transmit_full_report(const SampleReport& report) {
  // Full resync never piggybacks (it is not a delta); split into frames for
  // delivery, reassemble what actually arrived, then replace the cache
  // wholesale (per-frame replacement would drop earlier frames).
  SampleReport reassembled;
  reassembled.node_id = report.node_id;
  reassembled.data_count = report.data_count;
  std::size_t offset = 0;
  do {
    const std::size_t take =
        std::min(kMaxSamplesPerFrame, report.new_samples.size() - offset);
    SampleReport frame;
    frame.node_id = report.node_id;
    frame.data_count = report.data_count;
    frame.new_samples.assign(
        report.new_samples.begin() + static_cast<std::ptrdiff_t>(offset),
        report.new_samples.begin() +
            static_cast<std::ptrdiff_t>(offset + take));
    const SampleReport delivered = deliver_frame(frame);
    reassembled.new_samples.insert(reassembled.new_samples.end(),
                                   delivered.new_samples.begin(),
                                   delivered.new_samples.end());
    offset += take;
  } while (offset < report.new_samples.size());
  station_.replace(reassembled);
}

void FlatNetwork::append_data(std::size_t node,
                              const std::vector<double>& values) {
  auto& sensor = nodes_.at(node);
  total_data_count_ += values.size();
  sensor.append_data(values);
}

std::size_t FlatNetwork::refresh_samples() {
  std::size_t resynced = 0;
  for (auto& node : nodes_) {
    if (!node.dirty()) continue;
    if (!node.online()) continue;  // resync deferred until the node rejoins
    SampleReport report = node.full_report();
    ++resynced;
    stats_.samples_transferred += report.new_samples.size();
    transmit_full_report(report);
  }
  return resynced;
}

}  // namespace prc::iot
