// The flat IoT network simulator.
//
// Wires k sensor nodes to one base station, executes top-up sampling rounds,
// and accounts every byte that crosses the (simulated) air interface.
// Unreliable links are modeled as per-frame Bernoulli loss with reliable
// retransmission: a lost frame costs its bytes again, which is how loss
// shows up in the paper's cost metric (energy/bandwidth), while the protocol
// state stays consistent.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "iot/base_station.h"
#include "iot/messages.h"
#include "iot/node.h"
#include "iot/sampling_network.h"
#include "query/range_query.h"

namespace prc::iot {

/// Byte/message accounting, split by direction.
struct CommunicationStats {
  std::size_t downlink_messages = 0;  // base station -> nodes
  std::size_t downlink_bytes = 0;
  std::size_t uplink_messages = 0;  // nodes -> base station
  std::size_t uplink_bytes = 0;
  std::size_t retransmissions = 0;
  std::size_t corrupted_frames = 0;  // CRC-detected corruptions (byte mode)
  std::size_t samples_transferred = 0;
  std::size_t piggybacked_reports = 0;  // reports that rode on heartbeats

  std::size_t total_bytes() const noexcept {
    return downlink_bytes + uplink_bytes;
  }
};

struct NetworkConfig {
  /// Per-frame loss probability on both directions (retransmitted until
  /// delivered; each attempt is charged).
  double frame_loss_probability = 0.0;
  /// Byte-accurate mode: every uplink report frame is really serialized
  /// through the wire codec and decoded at the base station, so the
  /// simulation exercises the actual byte format.  Heartbeat piggybacking
  /// is disabled in this mode (piggybacked deltas have no standalone frame
  /// to encode).
  bool byte_accurate = false;
  /// Per-transmission probability that one random bit of the encoded frame
  /// flips in flight (only meaningful with byte_accurate).  The CRC detects
  /// the corruption and the frame is retransmitted; every attempt is
  /// charged.
  double bit_corruption_probability = 0.0;
  /// Master seed for node sampling streams and the loss process.
  std::uint64_t seed = 7;
};

class FlatNetwork final : public SamplingNetwork {
 public:
  /// One entry of `node_data` per node; nodes keep their multiset private.
  FlatNetwork(std::vector<std::vector<double>> node_data,
              NetworkConfig config = {});

  std::size_t node_count() const noexcept override { return nodes_.size(); }

  /// Ground truth n = sum n_i (the simulator knows it; the base station
  /// learns it from reports).
  std::size_t total_data_count() const noexcept override {
    return total_data_count_;
  }

  const BaseStation& base_station() const noexcept override {
    return station_;
  }
  const CommunicationStats& stats() const noexcept { return stats_; }

  /// Marks a node offline/online; offline nodes ignore top-up requests.
  void set_node_online(std::size_t node, bool online);

  /// Runs a top-up round raising every node's inclusion probability to `p`.
  /// No-op if p <= current probability.  Returns the number of new samples
  /// collected.
  std::size_t ensure_sampling_probability(double p) override;

  /// Continuous collection: node `node` observes new readings.  The node
  /// samples them locally at the current probability; the base station's
  /// cached copy becomes stale until the next refresh_samples().
  void append_data(std::size_t node, const std::vector<double>& values);

  /// Resynchronizes every dirty node: the node retransmits its full sample
  /// (ranks shifted when data was appended), the base station replaces its
  /// cache, and the traffic is charged.  Returns the number of nodes that
  /// resynced.
  std::size_t refresh_samples();

  /// RankCounting / BasicCounting estimates from the base station cache.
  double rank_counting_estimate(
      const query::RangeQuery& range) const override {
    return station_.rank_counting_estimate(range);
  }
  double basic_counting_estimate(const query::RangeQuery& range) const {
    return station_.basic_counting_estimate(range);
  }

 private:
  /// Charges one logical frame, simulating loss + retransmission; returns
  /// attempts made.
  std::size_t transmit(std::size_t frame_bytes, bool uplink);

  /// Charges a full-sample resync (framed, never piggybacked) and replaces
  /// the station's cache for that node.
  void transmit_full_report(const SampleReport& report);

  /// Delivers one report frame: models loss and (in byte-accurate mode)
  /// encode -> corrupt -> decode with CRC-triggered retransmission.
  /// Returns the frame as the base station received it.
  SampleReport deliver_frame(const SampleReport& frame);

  std::vector<SensorNode> nodes_;
  BaseStation station_;
  CommunicationStats stats_;
  Rng loss_rng_;
  NetworkConfig config_;
  std::size_t total_data_count_ = 0;
};

}  // namespace prc::iot
