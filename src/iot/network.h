// The flat IoT network simulator.
//
// Wires k sensor nodes to one base station, executes top-up sampling rounds,
// and accounts every byte that crosses the (simulated) air interface.
// Unreliable links are modeled as per-frame Bernoulli loss (optionally
// layered with a bursty Gilbert–Elliott process from a FaultSchedule) with
// retransmission: a lost frame costs its bytes again, which is how loss
// shows up in the paper's cost metric (energy/bandwidth).  With
// max_attempts == 0 retransmission is unbounded and every round completes
// fully (the seed behavior); with a bounded budget a frame can be abandoned
// and the round completes PARTIALLY — the returned RoundReport says which
// nodes actually reached the round target.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "iot/base_station.h"
#include "iot/faults.h"
#include "iot/messages.h"
#include "iot/node.h"
#include "iot/round_report.h"
#include "iot/sampling_network.h"
#include "query/range_query.h"

namespace prc::iot {

/// Byte/message accounting, split by direction.
struct CommunicationStats {
  std::size_t downlink_messages = 0;  // base station -> nodes
  std::size_t downlink_bytes = 0;
  std::size_t uplink_messages = 0;  // nodes -> base station
  std::size_t uplink_bytes = 0;
  std::size_t retransmissions = 0;
  std::size_t corrupted_frames = 0;  // CRC-detected corruptions (byte mode)
  std::size_t samples_transferred = 0;
  std::size_t piggybacked_reports = 0;  // reports that rode on heartbeats
  std::size_t frames_attempted = 0;   // logical frames handed to the link
  std::size_t frames_delivered = 0;   // logical frames that got through
  std::size_t dropped_frames = 0;     // abandoned after max_attempts
  std::size_t duplicated_frames = 0;  // delivered twice; deduped by station
  std::size_t backoff_slots = 0;      // exponential-backoff slots waited

  std::size_t total_bytes() const noexcept {
    return downlink_bytes + uplink_bytes;
  }

  /// Accumulates another lane's counters.  Parallel rounds account each
  /// node's traffic into a private CommunicationStats and merge the lanes
  /// serially in node order afterwards.
  CommunicationStats& operator+=(const CommunicationStats& other) noexcept {
    downlink_messages += other.downlink_messages;
    downlink_bytes += other.downlink_bytes;
    uplink_messages += other.uplink_messages;
    uplink_bytes += other.uplink_bytes;
    retransmissions += other.retransmissions;
    corrupted_frames += other.corrupted_frames;
    samples_transferred += other.samples_transferred;
    piggybacked_reports += other.piggybacked_reports;
    frames_attempted += other.frames_attempted;
    frames_delivered += other.frames_delivered;
    dropped_frames += other.dropped_frames;
    duplicated_frames += other.duplicated_frames;
    backoff_slots += other.backoff_slots;
    return *this;
  }
};

/// Publishes one collection round's frame/byte deltas and resulting
/// coverage to the metrics registry ("iot.*" catalog; see DESIGN.md
/// "Telemetry").  Event counts, sizes and coverage only — no sample values
/// cross this boundary.  Shared by FlatNetwork and TreeNetwork.
void publish_round_metrics(const CommunicationStats& before,
                           const CommunicationStats& after,
                           const RoundReport& report);

struct NetworkConfig {
  /// Per-frame loss probability on both directions (retransmitted until
  /// delivered or the attempt budget runs out; each attempt is charged).
  double frame_loss_probability = 0.0;
  /// Byte-accurate mode: every uplink report frame is really serialized
  /// through the wire codec and decoded at the base station, so the
  /// simulation exercises the actual byte format.  Heartbeat piggybacking
  /// is disabled in this mode (piggybacked deltas have no standalone frame
  /// to encode).
  bool byte_accurate = false;
  /// Per-transmission probability that one random bit of the encoded frame
  /// flips in flight (only meaningful with byte_accurate).  The CRC detects
  /// the corruption and the frame is retransmitted; every attempt is
  /// charged.
  double bit_corruption_probability = 0.0;
  /// Master seed for node sampling streams and the loss process.
  std::uint64_t seed = 7;
  /// Seeded failure processes (churn, bursty loss, duplication).  The
  /// default is disabled and draws no randomness, so a fault-free run is
  /// byte-identical to the seed simulator.
  FaultConfig faults;
  /// Per-frame transmission budget.  0 = retransmit until delivered (seed
  /// behavior; every round is complete).  With a bound, an exhausted frame
  /// is dropped, the affected node keeps its previous station-side state,
  /// and the round report records the partial outcome.
  std::size_t max_attempts = 0;
};

class FlatNetwork final : public SamplingNetwork {
 public:
  /// One entry of `node_data` per node; nodes keep their multiset private.
  FlatNetwork(std::vector<std::vector<double>> node_data,
              NetworkConfig config = {});

  std::size_t node_count() const noexcept override { return nodes_.size(); }

  /// Ground truth n = sum n_i (the simulator knows it; the base station
  /// learns it from reports).
  std::size_t total_data_count() const noexcept override {
    return total_data_count_;
  }

  const BaseStation& base_station() const noexcept override {
    return station_;
  }
  const CommunicationStats& stats() const noexcept { return stats_; }

  /// Marks a node offline/online; offline nodes ignore top-up requests.
  void set_node_online(std::size_t node, bool online);

  /// Runs a top-up round raising every node's inclusion probability to `p`.
  /// Generates no traffic when p <= the current probability.  Returns the
  /// round's report; under faults / bounded retries it may be partial.
  RoundReport ensure_sampling_probability(double p) override;

  /// The report of the most recent round (default-constructed before any).
  const RoundReport& last_round() const noexcept { return last_round_; }

  /// Continuous collection: node `node` observes new readings.  The node
  /// samples them locally at the current probability; the base station's
  /// cached copy becomes stale until the next refresh_samples().
  void append_data(std::size_t node, const std::vector<double>& values);

  /// Resynchronizes every dirty node: the node retransmits its full sample
  /// (ranks shifted when data was appended), the base station replaces its
  /// cache, and the traffic is charged.  Returns the number of nodes that
  /// resynced.
  std::size_t refresh_samples();

  /// RankCounting / BasicCounting estimates from the base station cache.
  double rank_counting_estimate(
      const query::RangeQuery& range) const override {
    return station_.rank_counting_estimate(range);
  }
  std::vector<double> rank_counting_estimate_batch(
      std::span<const query::RangeQuery> ranges) const override {
    return station_.rank_counting_estimate_batch(ranges);
  }
  double basic_counting_estimate(const query::RangeQuery& range) const {
    return station_.basic_counting_estimate(range);
  }

 private:
  /// Outcome of one logical frame on the link.
  struct Delivery {
    std::size_t attempts = 0;
    bool delivered = false;
  };

  /// Charges one logical frame, simulating i.i.d. loss + the node's burst
  /// channel, retransmitting within the attempt budget.  `node` keys both
  /// the Gilbert–Elliott state and the node's private channel RNG stream;
  /// traffic is accounted into `stats` (a per-node lane during a parallel
  /// round, stats_ on serial paths).
  Delivery transmit(std::size_t frame_bytes, bool uplink, std::size_t node,
                    CommunicationStats& stats);

  /// Charges a full-sample resync (framed, never piggybacked); replaces the
  /// station's cache only when EVERY frame delivered.  Returns success.
  bool transmit_full_report(const SampleReport& report,
                            CommunicationStats& stats);

  /// Delivers one report frame: models loss and (in byte-accurate mode)
  /// encode -> corrupt -> decode with CRC-triggered retransmission.
  /// On success `out` holds the frame as the base station received it.
  Delivery deliver_frame(const SampleReport& frame, SampleReport& out,
                         CommunicationStats& stats);

  /// Post-delivery duplication: charge the duplicate's bytes; the station
  /// discards it by sequence number, so it is never ingested twice.
  void maybe_duplicate(std::size_t frame_bytes, bool uplink, std::size_t node,
                       CommunicationStats& stats);

  std::vector<SensorNode> nodes_;
  BaseStation station_;
  CommunicationStats stats_;
  /// One channel RNG per node, split from the same master as the sampling
  /// streams.  Each node's link randomness (i.i.d. loss, corruption) is an
  /// independent stream, so a round is bit-identical no matter how many
  /// threads execute it.  (Replaces the shared loss_rng_; see DESIGN.md
  /// "Threading model" for the one-time seed-compat note.)
  std::vector<Rng> channel_rngs_;
  NetworkConfig config_;
  FaultSchedule faults_;
  RoundReport last_round_;
  std::size_t total_data_count_ = 0;
};

}  // namespace prc::iot
