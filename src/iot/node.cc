#include "iot/node.h"

#include <stdexcept>
#include <utility>

namespace prc::iot {

SensorNode::SensorNode(int id, std::vector<double> values, Rng rng)
    : id_(id), sampler_(std::move(values)), rng_(rng) {}

SampleReport SensorNode::handle(const SampleRequest& request) {
  if (request.node_id != id_) {
    throw std::invalid_argument("sample request routed to wrong node");
  }
  SampleReport report;
  report.node_id = id_;
  report.data_count = sampler_.data_count();
  if (!online_) return report;  // dropout: nothing new reported
  report.new_samples = sampler_.raise_probability(request.target_p, rng_);
  return report;
}

void SensorNode::append_data(const std::vector<double>& values) {
  if (values.empty()) return;
  sampler_.append(values, rng_);
  dirty_ = true;
}

SampleReport SensorNode::full_report() {
  SampleReport report;
  report.node_id = id_;
  report.data_count = sampler_.data_count();
  report.new_samples = sampler_.current_sample().samples();
  dirty_ = false;
  return report;
}

}  // namespace prc::iot
