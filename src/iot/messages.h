// Wire messages of the flat sampling protocol, with a byte-cost model.
//
// The paper's communication claims (expected sample volume n*p; RankCounting
// piggybacks <= 16 samples per node onto heartbeats) are about bytes on the
// wire, so every message carries an explicit wire-size model the simulator
// accounts against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sampling/rank_sample.h"

namespace prc::iot {

/// Fixed per-message framing overhead (addressing, type, sequence, CRC).
inline constexpr std::size_t kMessageHeaderBytes = 20;

/// One transmitted sample: 8-byte value + 8-byte local rank.
inline constexpr std::size_t kSampleWireBytes = 16;

/// Base station -> node: raise your inclusion probability to `target_p` and
/// report the newly selected samples.
struct SampleRequest {
  int node_id = 0;
  double target_p = 0.0;

  std::size_t wire_size() const noexcept {
    return kMessageHeaderBytes + sizeof(double);
  }
};

/// Node -> base station: newly selected samples plus the node's local data
/// cardinality n_i (a single scalar; the raw data never leaves the node).
struct SampleReport {
  int node_id = 0;
  std::size_t data_count = 0;  // n_i
  std::vector<sampling::RankedValue> new_samples;

  std::size_t wire_size() const noexcept {
    return kMessageHeaderBytes + sizeof(std::uint64_t) +
           new_samples.size() * kSampleWireBytes;
  }
};

/// Periodic heartbeat.  The paper notes that when a node ships <= 16 samples
/// they can ride along in an ordinary heartbeat at no extra message cost;
/// the simulator models that by not charging a separate header for reports
/// small enough to piggyback.
struct Heartbeat {
  int node_id = 0;

  std::size_t wire_size() const noexcept { return kMessageHeaderBytes; }
};

/// Samples per report message; larger reports are split into multiple frames.
inline constexpr std::size_t kMaxSamplesPerFrame = 64;

/// Reports at or below this many samples piggyback on a heartbeat.
inline constexpr std::size_t kHeartbeatPiggybackSamples = 16;

}  // namespace prc::iot
