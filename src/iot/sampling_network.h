// Topology-independent interface over a sampled IoT network.
//
// The broker-side machinery (PrivateRangeCounter, WorkloadAnswerer) only
// needs four capabilities: know the population, top up the shared sample,
// and estimate ranges from the base-station cache.  Both the flat model and
// the tree model provide them; this interface lets the DP pipeline run over
// either (the paper's "easily extended to a general tree model" claim,
// carried through to the full private-counting stack).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "iot/base_station.h"
#include "iot/round_report.h"
#include "query/range_query.h"

namespace prc::iot {

class SamplingNetwork {
 public:
  virtual ~SamplingNetwork() = default;

  virtual std::size_t node_count() const = 0;
  virtual std::size_t total_data_count() const = 0;
  virtual const BaseStation& base_station() const = 0;

  /// Runs a top-up round raising every node's inclusion probability to `p`
  /// (when p <= the current probability the cache is already good enough
  /// and no traffic is generated).  Returns the round's RoundReport; under
  /// faults or bounded retries the round may complete partially, and the
  /// report is the only honest record of which nodes actually reached `p`.
  virtual RoundReport ensure_sampling_probability(double p) = 0;

  /// RankCounting estimate from the base-station cache.
  virtual double rank_counting_estimate(
      const query::RangeQuery& range) const = 0;

  /// Batched RankCounting over one cache snapshot.  The default simply
  /// loops the single-query virtual; the concrete networks override it with
  /// the station's one-pass batch (same values bit for bit, one lock
  /// acquisition, and intra-batch parallelism).
  virtual std::vector<double> rank_counting_estimate_batch(
      std::span<const query::RangeQuery> ranges) const {
    std::vector<double> estimates;
    estimates.reserve(ranges.size());
    for (const auto& range : ranges) {
      estimates.push_back(rank_counting_estimate(range));
    }
    return estimates;
  }
};

}  // namespace prc::iot
