// Deterministic fault injection for the IoT network simulators.
//
// A FaultSchedule drives three failure processes from one seed, so that a
// degraded run is reproducible bit-for-bit:
//
//   * node churn — per-round crash/rejoin windows (a crashed node ignores
//     the whole top-up round, exactly like a manual set_node_online(false));
//   * bursty link outages — a per-node two-state Gilbert–Elliott channel
//     layered ALONGSIDE the i.i.d. Bernoulli loss of NetworkConfig: a frame
//     attempt is lost if either process says so, which models the short
//     deep fades real radio links exhibit that i.i.d. loss cannot;
//   * frame duplication — a delivered frame occasionally arrives twice
//     (retransmit races); the base station deduplicates by sequence, so
//     duplicates cost bytes but never corrupt the sample cache.
//
// The schedule owns its own RNG streams (split per node), so enabling it
// never perturbs the sampling or Bernoulli-loss streams: a run with a
// disabled schedule is byte-identical to the seed simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace prc::iot {

struct FaultConfig {
  /// Per-round probability that an online node crashes for the round (and
  /// possibly longer — see rejoin_probability).
  double crash_probability = 0.0;
  /// Per-round probability that a crashed node comes back online.
  double rejoin_probability = 0.5;
  /// Gilbert–Elliott channel: per-attempt transition probabilities between
  /// the good and bad state, and the per-attempt loss probability in each.
  double good_to_bad = 0.0;
  double bad_to_good = 0.2;
  double loss_good = 0.0;
  double loss_bad = 0.8;
  /// Probability that a delivered frame is duplicated in flight.
  double duplication_probability = 0.0;
  /// Seed of the schedule's private RNG streams.
  std::uint64_t seed = 99;

  /// True when any failure process can fire; a disabled schedule draws no
  /// randomness at all.
  bool enabled() const noexcept {
    return crash_probability > 0.0 || good_to_bad > 0.0 || loss_good > 0.0 ||
           duplication_probability > 0.0;
  }

  /// Throws std::invalid_argument unless every probability is in [0, 1]
  /// and the loss probabilities are < 1 (a channel that never delivers
  /// would hang an unbounded-retry network).
  void validate() const;
};

/// The seeded failure processes of one network instance.
class FaultSchedule {
 public:
  /// A default-constructed schedule is disabled: every query returns the
  /// fault-free answer and no randomness is consumed.
  FaultSchedule() = default;

  FaultSchedule(const FaultConfig& config, std::size_t node_count);

  bool enabled() const noexcept { return enabled_; }
  std::size_t rounds_elapsed() const noexcept { return rounds_; }

  /// Advances node churn by one collection round: crashed nodes may rejoin,
  /// online nodes may crash.  Call once at the start of each round.
  void begin_round();

  /// True when churn currently holds `node` offline.
  bool node_offline(std::size_t node) const;

  std::size_t offline_node_count() const noexcept;

  /// Steps `node`'s Gilbert–Elliott channel one frame attempt and reports
  /// whether the burst process lost the frame.  (The caller combines this
  /// with its own i.i.d. loss draw.)
  bool attempt_lost(std::size_t node);

  /// Whether a frame just delivered from `node` is duplicated in flight.
  /// Draws from the node's own stream (like attempt_lost), so per-node
  /// draw sequences stay fixed no matter how rounds are threaded.
  bool duplicate_frame(std::size_t node);

 private:
  struct NodeState {
    bool offline = false;
    bool channel_bad = false;
    Rng rng{0};
  };

  FaultConfig config_;
  std::vector<NodeState> nodes_;
  std::size_t rounds_ = 0;
  bool enabled_ = false;
};

}  // namespace prc::iot
