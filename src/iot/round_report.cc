#include "iot/round_report.h"

#include <sstream>

namespace prc::iot {

const char* to_string(NodeOutcome outcome) noexcept {
  switch (outcome) {
    case NodeOutcome::kDelivered: return "delivered";
    case NodeOutcome::kDropped: return "dropped";
    case NodeOutcome::kOffline: return "offline";
    case NodeOutcome::kStale: return "stale";
  }
  return "?";
}

std::size_t RoundReport::count(NodeOutcome outcome) const noexcept {
  std::size_t total = 0;
  for (const auto o : outcomes) total += (o == outcome) ? 1 : 0;
  return total;
}

std::string RoundReport::to_string() const {
  std::ostringstream out;
  out << "round(target_p=" << target_p << ", delivered=" << delivered_nodes()
      << "/" << outcomes.size() << ", dropped=" << dropped_nodes()
      << ", offline=" << offline_nodes() << ", stale=" << stale_nodes()
      << ", retries=" << retries << ", dropped_frames=" << dropped_frames
      << ", severed=" << severed_reports << ", coverage=" << coverage
      << ", min_p=" << min_probability << ")";
  return out.str();
}

}  // namespace prc::iot
