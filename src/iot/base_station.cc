#include "iot/base_station.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/check.h"
#include "common/telemetry.h"
#include "estimator/basic_counting.h"
#include "iot/codec.h"

namespace prc::iot {

BaseStation::BaseStation(std::size_t node_count) : entries_(node_count) {
  PRC_CHECK(node_count > 0) << "base station needs >= 1 node";
}

BaseStation::BaseStation(const BaseStation& other) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  entries_ = other.entries_;
  p_ = other.p_;
}

BaseStation& BaseStation::operator=(const BaseStation& other) {
  if (this == &other) return *this;
  // Copy out under the source lock first; never hold both mutexes at once.
  std::vector<NodeEntry> entries;
  double p = 0.0;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    entries = other.entries_;
    p = other.p_;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  entries_ = std::move(entries);
  p_ = p;
  return *this;
}

std::size_t BaseStation::node_count() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

double BaseStation::sampling_probability() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return p_;
}

std::size_t BaseStation::total_data_count() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_data_count_locked();
}

std::size_t BaseStation::total_data_count_locked() const {
  std::size_t total = 0;
  for (const auto& entry : entries_) total += entry.data_count;
  return total;
}

std::size_t BaseStation::cached_sample_count() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& entry : entries_) total += entry.samples.size();
  return total;
}

double BaseStation::node_probability(std::size_t node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.at(node).probability;
}

bool BaseStation::node_reported(std::size_t node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.at(node).reported;
}

std::vector<double> BaseStation::node_probabilities() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return node_probabilities_locked();
}

std::vector<double> BaseStation::node_probabilities_locked() const {
  std::vector<double> probabilities;
  probabilities.reserve(entries_.size());
  for (const auto& entry : entries_) probabilities.push_back(entry.probability);
  return probabilities;
}

CoverageSummary BaseStation::coverage() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return coverage_locked();
}

CoverageSummary BaseStation::coverage_locked() const {
  CoverageSummary summary;
  summary.target_p = p_;
  summary.node_count = entries_.size();
  std::size_t known_data = 0;
  std::size_t fresh_data = 0;
  bool any_unreported = false;
  double min_p = 1.0;
  for (const auto& entry : entries_) {
    if (!entry.reported) {
      any_unreported = true;
      continue;
    }
    ++summary.reported_nodes;
    known_data += entry.data_count;
    summary.max_probability =
        std::max(summary.max_probability, entry.probability);
    if (entry.probability >= p_) {
      fresh_data += entry.data_count;
    } else {
      ++summary.stale_nodes;
    }
    if (entry.data_count > 0) min_p = std::min(min_p, entry.probability);
  }
  summary.min_probability =
      (any_unreported || summary.reported_nodes == 0) ? 0.0 : min_p;
  summary.coverage = known_data == 0
                         ? 0.0
                         : static_cast<double>(fresh_data) /
                               static_cast<double>(known_data);
  return summary;
}

void BaseStation::ingest(const SampleReport& report) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (report.node_id < 0 ||
      static_cast<std::size_t>(report.node_id) >= entries_.size()) {
    throw std::out_of_range("sample report from unknown node");
  }
  auto& entry = entries_[static_cast<std::size_t>(report.node_id)];
  entry.data_count = report.data_count;
  entry.reported = true;
  if (!report.new_samples.empty()) {
    entry.samples.merge(sampling::RankSampleSet(report.new_samples));
  }
  telemetry::counter("iot.station.reports_ingested").increment();
}

void BaseStation::replace(const SampleReport& full_report) {
  std::lock_guard<std::mutex> lock(mutex_);
  replace_locked(full_report);
}

void BaseStation::replace_locked(const SampleReport& full_report) {
  if (full_report.node_id < 0 ||
      static_cast<std::size_t>(full_report.node_id) >= entries_.size()) {
    throw std::out_of_range("sample report from unknown node");
  }
  auto& entry = entries_[static_cast<std::size_t>(full_report.node_id)];
  entry.data_count = full_report.data_count;
  entry.reported = true;
  entry.samples = sampling::RankSampleSet(full_report.new_samples);
  telemetry::counter("iot.station.cache_replacements").increment();
}

void BaseStation::commit_round(double p) {
  std::lock_guard<std::mutex> lock(mutex_);
  commit_round_locked(p, std::vector<bool>(entries_.size(), true));
}

void BaseStation::commit_round(double p, const std::vector<bool>& refreshed) {
  std::lock_guard<std::mutex> lock(mutex_);
  commit_round_locked(p, refreshed);
}

void BaseStation::commit_round_locked(double p,
                                      const std::vector<bool>& refreshed) {
  PRC_CHECK_PROB(p);
  // Monotone round targets are what make the cached sample reusable: the
  // incremental top-up argument (Bernoulli(p_old) extended to
  // Bernoulli(p_new)) only runs forward.
  PRC_CHECK(p >= p_) << "sampling probability cannot decrease (have " << p_
                     << ", got " << p << ")";
  PRC_CHECK(refreshed.size() == entries_.size())
      << "refreshed mask size mismatch: " << refreshed.size() << " vs "
      << entries_.size() << " nodes";
  p_ = p;
  std::size_t cached = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (refreshed[i]) {
      entries_[i].probability = std::max(entries_[i].probability, p);
    }
    cached += entries_[i].samples.size();
  }
  telemetry::counter("iot.station.rounds_committed").increment();
  telemetry::gauge("iot.station.cached_samples")
      .set(static_cast<double>(cached));
  telemetry::gauge("iot.station.sampling_probability").set(p);
}

std::vector<estimator::NodeSampleView> BaseStation::node_views() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return node_views_locked();
}

std::vector<estimator::NodeSampleView> BaseStation::node_views_locked() const {
  std::vector<estimator::NodeSampleView> views;
  views.reserve(entries_.size());
  for (const auto& entry : entries_) {
    views.push_back(
        estimator::NodeSampleView{&entry.samples, entry.data_count});
  }
  return views;
}

std::vector<estimator::NodeSampleView> BaseStation::EstimateSnapshot::views()
    const {
  std::vector<estimator::NodeSampleView> views;
  views.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    views.push_back(estimator::NodeSampleView{&samples[i], data_counts[i]});
  }
  return views;
}

BaseStation::EstimateSnapshot BaseStation::estimate_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PRC_CHECK(p_ > 0.0) << "no sampling round committed yet";
  EstimateSnapshot snap;
  snap.samples.reserve(entries_.size());
  snap.data_counts.reserve(entries_.size());
  for (const auto& entry : entries_) {
    snap.samples.push_back(entry.samples);
    snap.data_counts.push_back(entry.data_count);
  }
  snap.probabilities = node_probabilities_locked();
  return snap;
}

double BaseStation::rank_counting_estimate(
    const query::RangeQuery& range) const {
  // Stage under the lock, estimate outside it: the chunked estimator fans
  // out across the shared pool, and holding mutex_ across that fan-out
  // would queue every report ingestion behind query latency.
  const EstimateSnapshot snap = estimate_snapshot();
  return estimator::rank_counting_estimate(snap.views(), snap.probabilities,
                                           range);
}

std::vector<double> BaseStation::rank_counting_estimate_batch(
    std::span<const query::RangeQuery> ranges) const {
  const EstimateSnapshot snap = estimate_snapshot();
  return estimator::rank_counting_estimate_batch(snap.views(),
                                                 snap.probabilities, ranges);
}

double BaseStation::basic_counting_estimate(
    const query::RangeQuery& range) const {
  std::lock_guard<std::mutex> lock(mutex_);
  PRC_CHECK(p_ > 0.0) << "no sampling round committed yet";
  std::vector<const sampling::RankSampleSet*> nodes;
  nodes.reserve(entries_.size());
  for (const auto& entry : entries_) nodes.push_back(&entry.samples);
  return estimator::basic_counting_estimate(nodes, p_, range);
}

namespace {

constexpr char kCheckpointMagic[4] = {'P', 'R', 'C', 'S'};
// Version 2 added the per-node effective probability (v1 assumed one global
// p, which is exactly the stale-sample bias the probability field fixes).
constexpr std::uint32_t kCheckpointVersion = 2;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void append_f64(std::vector<std::uint8_t>& out, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

std::uint32_t read_u32(const std::vector<std::uint8_t>& in,
                       std::size_t& offset) {
  if (offset + 4 > in.size()) {
    throw std::invalid_argument("checkpoint truncated");
  }
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(in[offset + static_cast<std::size_t>(i)])
             << (8 * i);
  }
  offset += 4;
  return value;
}

double read_f64(const std::vector<std::uint8_t>& in, std::size_t& offset) {
  if (offset + 8 > in.size()) {
    throw std::invalid_argument("checkpoint truncated");
  }
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(in[offset + static_cast<std::size_t>(i)])
            << (8 * i);
  }
  offset += 8;
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

std::vector<std::uint8_t> BaseStation::serialize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint8_t> out;
  // Byte-wise push instead of a range insert: GCC 12's -Wstringop-overflow
  // misfires on char* range-inserts into an empty byte vector.
  for (char byte : kCheckpointMagic) {
    out.push_back(static_cast<std::uint8_t>(byte));
  }
  append_u32(out, kCheckpointVersion);
  append_u32(out, static_cast<std::uint32_t>(entries_.size()));
  append_f64(out, p_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& entry = entries_[i];
    out.push_back(entry.reported ? 1 : 0);
    append_f64(out, entry.probability);
    // Reuse the wire codec: one full SampleReport frame per node.
    SampleReport report;
    report.node_id = static_cast<int>(i);
    report.data_count = entry.data_count;
    report.new_samples = entry.samples.samples();
    const auto frame = encode(report);
    append_u32(out, static_cast<std::uint32_t>(frame.size()));
    out.insert(out.end(), frame.begin(), frame.end());
  }
  return out;
}

BaseStation BaseStation::deserialize(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  if (bytes.size() < 4 ||
      std::memcmp(bytes.data(), kCheckpointMagic, 4) != 0) {
    throw std::invalid_argument("checkpoint: bad magic");
  }
  offset = 4;
  const std::uint32_t version = read_u32(bytes, offset);
  if (version != kCheckpointVersion) {
    throw std::invalid_argument("checkpoint: unsupported version");
  }
  const std::uint32_t node_count = read_u32(bytes, offset);
  if (node_count == 0) {
    throw std::invalid_argument("checkpoint: zero nodes");
  }
  const double p = read_f64(bytes, offset);

  BaseStation station(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    if (offset >= bytes.size()) {
      throw std::invalid_argument("checkpoint truncated");
    }
    const bool reported = bytes[offset++] != 0;
    const double probability = read_f64(bytes, offset);
    if (probability < 0.0 || probability > 1.0) {
      throw std::invalid_argument("checkpoint: bad node probability");
    }
    const std::uint32_t frame_size = read_u32(bytes, offset);
    if (offset + frame_size > bytes.size()) {
      throw std::invalid_argument("checkpoint truncated");
    }
    const std::vector<std::uint8_t> frame(
        bytes.begin() + static_cast<std::ptrdiff_t>(offset),
        bytes.begin() + static_cast<std::ptrdiff_t>(offset + frame_size));
    offset += frame_size;
    const SampleReport report = decode_sample_report(frame);
    if (reported) {
      std::lock_guard<std::mutex> lock(station.mutex_);
      station.replace_locked(report);
      station.entries_[i].probability = probability;
    }
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("checkpoint: bad round probability");
  }
  // Restore the round target without touching the per-node probabilities
  // that were just read back.
  {
    std::lock_guard<std::mutex> lock(station.mutex_);
    station.p_ = p;
  }
  return station;
}

}  // namespace prc::iot
