// Tree-model IoT network.
//
// The paper notes that "algorithms on flat models can be easily extended to
// a general tree model".  This module makes that concrete: sensor nodes are
// arranged in a balanced tree rooted at the base station, sample reports
// are relayed hop by hop toward the root, and intermediate nodes coalesce
// their children's samples into shared frames (in-network aggregation),
// which saves per-frame header bytes at the cost of no information — the
// estimator's inputs are identical to the flat model's.
//
// What changes vs FlatNetwork is ONLY the communication bill: a sample
// from a node at depth d crosses d links.  Estimates are byte-for-byte the
// topology-independent RankCounting computation at the root.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "iot/base_station.h"
#include "iot/messages.h"
#include "iot/network.h"
#include "iot/node.h"
#include "iot/sampling_network.h"
#include "query/range_query.h"

namespace prc::iot {

struct TreeConfig {
  /// Children per interior node.  Fanout 1 degenerates to a chain.
  std::size_t fanout = 4;
  /// Coalesce child frames at interior nodes (saves headers).  When false,
  /// every report is relayed as its own frame on every hop — the naive
  /// store-and-forward baseline the aggregation ablation compares against.
  bool aggregate_frames = true;
  /// Per-link frame loss probability; lost frames are retransmitted and
  /// re-charged, like FlatNetwork.
  double frame_loss_probability = 0.0;
  std::uint64_t seed = 7;
  /// Seeded failure processes; disabled by default (no randomness drawn).
  FaultConfig faults;
  /// Per-frame transmission budget; 0 = unbounded (seed behavior).
  std::size_t max_attempts = 0;
};

/// Per-depth traffic accounting.
struct TreeLevelStats {
  std::size_t links_crossed = 0;
  std::size_t bytes = 0;
};

class TreeNetwork final : public SamplingNetwork {
 public:
  /// node_data[i] is node i's local multiset; node i's tree position is
  /// breadth-first (node 0 is a child of the root base station).
  TreeNetwork(std::vector<std::vector<double>> node_data,
              TreeConfig config = {});

  std::size_t node_count() const noexcept override {
    return nodes_.size();
  }
  std::size_t total_data_count() const noexcept override {
    return total_data_count_;
  }

  /// Depth (link count to the base station) of a node; min 1.
  std::size_t depth(std::size_t node) const;

  /// Height of the tree (max depth over nodes).
  std::size_t height() const noexcept { return height_; }

  const BaseStation& base_station() const noexcept override {
    return station_;
  }
  const CommunicationStats& stats() const noexcept { return stats_; }
  const std::vector<TreeLevelStats>& level_stats() const noexcept {
    return level_stats_;
  }

  /// Marks a sensor offline/online.  An offline LEAF just skips rounds; an
  /// offline INTERIOR node also severs its whole subtree — descendants stay
  /// alive and sample locally, but their reports cannot reach the root and
  /// are counted as severed in the round report.
  void set_node_online(std::size_t node, bool online);

  /// True when every sensor on `node`'s path to the root is offline-free
  /// (the node itself not included).
  bool route_to_root_alive(std::size_t node) const;

  /// Runs a top-up round to probability `p`, routing every report up the
  /// tree.  With faults disabled, unbounded retries, and all nodes online
  /// this is the exact seed accounting (including in-network aggregation);
  /// a degraded round falls back to per-node store-and-forward accounting so
  /// each report's delivery can succeed or fail independently.
  RoundReport ensure_sampling_probability(double p) override;

  /// The report of the most recent round (default-constructed before any).
  const RoundReport& last_round() const noexcept { return last_round_; }

  double rank_counting_estimate(
      const query::RangeQuery& range) const override {
    return station_.rank_counting_estimate(range);
  }

  std::vector<double> rank_counting_estimate_batch(
      std::span<const query::RangeQuery> ranges) const override {
    return station_.rank_counting_estimate_batch(ranges);
  }

 private:
  struct Delivery {
    std::size_t attempts = 0;
    bool delivered = false;
  };

  /// Unbounded link crossing (fault-free path); `origin` keys the
  /// transmitting node's channel RNG stream.
  std::size_t transmit_link(std::size_t frame_bytes, std::size_t level,
                            std::size_t origin);

  /// Bounded-attempt link crossing for the degraded path; `origin` keys the
  /// Gilbert–Elliott channel and channel RNG of the report's source node.
  /// Traffic is accounted into the given stats/level lanes (per-node during
  /// a parallel round).
  Delivery transmit_link_bounded(std::size_t frame_bytes, std::size_t level,
                                 std::size_t origin, CommunicationStats& stats,
                                 std::vector<TreeLevelStats>& levels);

  /// Bounded-attempt downlink frame toward `node` (not level-accounted, to
  /// match the seed's downlink flood).
  Delivery transmit_downlink_bounded(std::size_t frame_bytes, std::size_t node,
                                     CommunicationStats& stats);

  RoundReport run_degraded_round(double p);

  std::vector<SensorNode> nodes_;
  BaseStation station_;
  CommunicationStats stats_;
  std::vector<TreeLevelStats> level_stats_;
  /// Per-node channel RNG streams split from the master seed (see
  /// FlatNetwork::channel_rngs_ and DESIGN.md "Threading model").
  std::vector<Rng> channel_rngs_;
  TreeConfig config_;
  FaultSchedule faults_;
  RoundReport last_round_;
  std::size_t total_data_count_ = 0;
  std::size_t height_ = 0;
};

}  // namespace prc::iot
