#include "market/broker.h"

#include <algorithm>
#include <stdexcept>

namespace prc::market {

DataBroker::DataBroker(dp::PrivateRangeCounter& counter,
                       std::unique_ptr<pricing::PricingFunction> pricing,
                       BrokerConfig config)
    : counter_(counter), pricing_(std::move(pricing)), config_(config) {
  if (!pricing_) throw std::invalid_argument("broker needs a pricing function");
  if (!(config_.per_consumer_epsilon_cap > 0.0)) {
    throw std::invalid_argument("per-consumer epsilon cap must be positive");
  }
}

double DataBroker::quote(const query::AccuracySpec& spec) const {
  return pricing_->price(spec);
}

double DataBroker::remaining_budget(const std::string& consumer_id) const {
  return std::max(0.0, config_.per_consumer_epsilon_cap -
                           ledger_.consumer_epsilon(consumer_id));
}

PurchaseReceipt DataBroker::sell(const std::string& consumer_id,
                                 const query::RangeQuery& range,
                                 const query::AccuracySpec& spec) {
  // Check the budget against the projected plan BEFORE computing the
  // answer, so a refused sale releases nothing.
  const double spent = ledger_.consumer_epsilon(consumer_id);
  if (spent < config_.per_consumer_epsilon_cap) {
    const auto projected = counter_.plan_for(spec);
    if (spent + projected.epsilon_amplified >
        config_.per_consumer_epsilon_cap) {
      throw BudgetExceededError(consumer_id,
                                spent + projected.epsilon_amplified,
                                config_.per_consumer_epsilon_cap);
    }
  } else {
    throw BudgetExceededError(consumer_id, spent,
                              config_.per_consumer_epsilon_cap);
  }

  const dp::PrivateAnswer answer = counter_.answer(range, spec);
  PurchaseReceipt receipt;
  receipt.value = answer.value;
  receipt.price = pricing_->price(spec);
  receipt.range = range;
  receipt.spec = spec;
  receipt.transaction_id = ledger_.record(Transaction{
      0, consumer_id, range, spec, receipt.price,
      answer.plan.epsilon_amplified});
  return receipt;
}

}  // namespace prc::market
