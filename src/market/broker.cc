#include "market/broker.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/crash_point.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "pricing/arbitrage.h"

namespace prc::market {
namespace {

// Validated before the member init list dereferences it for the quote
// cache's bound reference.
std::unique_ptr<pricing::PricingFunction> require_pricing(
    std::unique_ptr<pricing::PricingFunction> pricing) {
  PRC_CHECK(pricing != nullptr) << "broker needs a pricing function";
  return pricing;
}

}  // namespace

DataBroker::DataBroker(dp::PrivateRangeCounter& counter,
                       std::unique_ptr<pricing::PricingFunction> pricing,
                       BrokerConfig config)
    : counter_(counter),
      pricing_(require_pricing(std::move(pricing))),
      config_(config),
      quote_cache_(*pricing_, config.quote_cache_capacity) {
  PRC_CHECK(config_.per_consumer_epsilon_cap > 0.0)
      << "per-consumer epsilon cap must be positive, got "
      << config_.per_consumer_epsilon_cap;
  PRC_CHECK(config_.min_coverage >= 0.0 && config_.min_coverage <= 1.0)
      << "min_coverage must be in [0, 1], got " << config_.min_coverage;
}

double DataBroker::quote(const query::AccuracySpec& spec) const {
  static telemetry::Counter& quotes = telemetry::counter("market.quotes");
  quotes.increment();
  const double price = quote_cache_.price(spec);
  AuditEvent event;
  event.type = AuditEventType::kQuote;
  event.alpha = spec.alpha;
  event.delta = spec.delta;
  event.price = price;
  audit_.append_event(std::move(event));
  return price;
}

void DataBroker::record_refusal(const char* counter_name,
                                const std::string& consumer_id,
                                const query::RangeQuery& range,
                                const query::AccuracySpec& spec,
                                units::EffectiveEpsilon attempted,
                                std::string reason) {
  telemetry::counter(counter_name).increment();
  AuditEvent event;
  event.type = AuditEventType::kRefusal;
  event.consumer_id = consumer_id;
  event.lower = range.lower;
  event.upper = range.upper;
  event.alpha = spec.alpha;
  event.delta = spec.delta;
  event.epsilon = attempted;  // attempted, NOT spent: refusals release nothing
  event.detail = std::move(reason);
  audit_.append_event(std::move(event));
}

units::EffectiveEpsilon DataBroker::remaining_budget(
    const std::string& consumer_id) const {
  return std::max(0.0, config_.per_consumer_epsilon_cap -
                           ledger_.consumer_epsilon(consumer_id));
}

void DataBroker::attach_wal(const std::string& path) {
  PRC_CHECK(wal_ == nullptr) << "broker already has a wal attached";
  const auto existing = wal::read_wal(path);
  PRC_CHECK(existing.stats.records_read == 0 &&
            existing.stats.truncated_bytes == 0)
      << "wal '" << path
      << "' holds prior state; use recover_and_attach_wal instead";
  wal_ = wal::WriteAheadLog::open(path, 0, wal_sync_mode());
  // Seed the log with the current aggregates, so recovery can never know
  // less than the broker did at attach time.
  const auto seed = ledger_.snapshot();
  wal_->append_checkpoint(seed);
  commits_since_checkpoint_.store(0, std::memory_order_relaxed);
  AuditEvent event;
  event.type = AuditEventType::kCheckpoint;
  event.epsilon = seed.total_epsilon;
  event.detail = "wal attached: seed checkpoint";
  audit_.append_event(std::move(event));
}

wal::RecoveryStats DataBroker::recover_and_attach_wal(
    const std::string& path, const pricing::VarianceModel& model) {
  PRC_CHECK(wal_ == nullptr) << "broker already has a wal attached";
  const auto pre_recovery = ledger_.snapshot();
  PRC_CHECK(pre_recovery.next_sequence == 0 && pre_recovery.consumers.empty())
      << "wal recovery requires a fresh broker";
  const auto recovery = wal::read_wal(path);
  // Fold into a scratch ledger first: replay and both audits below can
  // throw, and a failed recovery must leave the broker exactly as it was
  // (empty, retryable) — a half-restored ledger silently usable without
  // durability is worse than no recovery at all.
  Ledger recovered;
  wal::apply_recovery(recovered, recovery);
  // Re-audit before selling anything: the recovered books must conserve
  // budget exactly (modulo fp rounding)...
  const double discrepancy = recovered.conservation_discrepancy();
  PRC_CHECK(discrepancy <= 1e-9 * (1.0 + recovered.total_epsilon() +
                                   recovered.total_revenue()))
      << "recovered ledger violates budget conservation: discrepancy "
      << discrepancy;
  // ...and the menu must still be arbitrage-free (Theorem 4.2): resuming
  // sales behind a broken menu would let Example 4.1 adversaries buy
  // around the very accounting recovery just rebuilt.
  const auto report = pricing::ArbitrageChecker(model).check(*pricing_);
  PRC_CHECK(report.arbitrage_avoiding)
      << "recovered broker refuses to reopen: pricing menu violates "
         "Theorem 4.2 (" << report.violations.size() << " violations)";
  // Every audit green: the scratch state becomes the broker's ledger.
  ledger_.adopt(recovered);
  // Compaction absorbs the replayed history — and the orphans just charged
  // — into one durable checkpoint, so recovering again (even crashing
  // during recovery) never double-charges an orphan.
  wal_ = wal::WriteAheadLog::compact(path, ledger_.snapshot(),
                                     recovery.next_wal_sequence,
                                     wal_sync_mode());
  commits_since_checkpoint_.store(0, std::memory_order_relaxed);
  // Seed the audit timeline with the recovered history: the closing
  // kRecovery event carries the adopted total, so reconcile() balances the
  // books across the crash (recovered + future mints == ledger total).
  append_recovery_events(audit_, recovery);
  return recovery.stats;
}

dp::PrivateAnswer DataBroker::mint_answer_with_intent(
    const std::string& consumer_id, const query::RangeQuery& range,
    const query::AccuracySpec& spec, Ledger::Reservation& reservation,
    std::uint64_t& intent_sequence) {
  const auto barrier = [&](const dp::PerturbationPlan& plan) {
    // The reservation admitted a PROJECTED plan; the barrier sees the one
    // the mechanism will actually charge.  When the true epsilon' is
    // larger (degraded re-quote, coverage drift between quote and mint),
    // re-admit the sale at the real release — refusing here draws no
    // noise and spends nothing, and a refused sale must not leave a
    // durable intent behind, so the extension precedes the intent append.
    if (plan.epsilon_amplified.value() > reservation.epsilon().value()) {
      const units::EffectiveEpsilon shortfall =
          plan.epsilon_amplified.value() - reservation.epsilon().value();
      if (!ledger_.try_extend(reservation, shortfall,
                              config_.per_consumer_epsilon_cap)) {
        record_refusal("market.refusals_budget", consumer_id, range, spec,
                       plan.epsilon_amplified,
                       "final plan exceeds reservation and the cap refused "
                       "the extension");
        throw BudgetExceededError(
            consumer_id,
            ledger_.consumer_epsilon(consumer_id).value() +
                plan.epsilon_amplified.value(),
            config_.per_consumer_epsilon_cap);
      }
    }
    PRC_CRASH_POINT("wal.pre_intent");
    if (wal_ != nullptr) {
      wal::IntentRecord intent;
      intent.consumer_id = consumer_id;
      intent.range = range;
      intent.spec = spec;
      intent.epsilon_amplified = plan.epsilon_amplified;
      intent_sequence = wal_->append_intent(std::move(intent));
      AuditEvent durable;
      durable.type = AuditEventType::kIntent;
      durable.consumer_id = consumer_id;
      durable.lower = range.lower;
      durable.upper = range.upper;
      durable.alpha = spec.alpha;
      durable.delta = spec.delta;
      durable.epsilon = plan.epsilon_amplified;
      durable.wal_sequence = intent_sequence;
      audit_.append_event(std::move(durable));
    }
    // The MINT event is appended before the barrier returns — i.e. before
    // any noise is drawn — mirroring the WAL's spend-ahead discipline in
    // the observable timeline: Sigma(mint epsilon') can only ever
    // over-count what the mechanism released, never under-count it.
    AuditEvent minted;
    minted.type = AuditEventType::kMint;
    minted.consumer_id = consumer_id;
    minted.lower = range.lower;
    minted.upper = range.upper;
    minted.alpha = spec.alpha;
    minted.delta = spec.delta;
    minted.epsilon = plan.epsilon_amplified;
    minted.wal_sequence = intent_sequence;
    minted.detail = "final plan admitted; noise draw follows";
    audit_.append_event(std::move(minted));
    // Dying here is the over-count case: the intent is durable but no
    // noise was drawn, so recovery charges budget that was never spent.
    // The asymmetry is deliberate — the reverse (spent but not charged)
    // would break the pricing model's composition accounting.
    PRC_CRASH_POINT("wal.post_intent");
  };
  return counter_.answer(range, spec, barrier);
}

void DataBroker::maybe_checkpoint() {
  if (wal_ == nullptr || config_.wal_checkpoint_interval == 0) return;
  const std::size_t commits =
      commits_since_checkpoint_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (commits < config_.wal_checkpoint_interval) return;
  commits_since_checkpoint_.store(0, std::memory_order_relaxed);
  PRC_CRASH_POINT("wal.pre_checkpoint");
  const auto snapshot = ledger_.snapshot();
  wal_->append_checkpoint(snapshot);
  PRC_CRASH_POINT("wal.post_checkpoint");
  AuditEvent event;
  event.type = AuditEventType::kCheckpoint;
  event.epsilon = snapshot.total_epsilon;
  event.detail = "periodic wal checkpoint";
  audit_.append_event(std::move(event));
}

PurchaseReceipt DataBroker::sell(const std::string& consumer_id,
                                 const query::RangeQuery& range,
                                 const query::AccuracySpec& spec) {
  static telemetry::Counter& sale_attempts =
      telemetry::counter("market.sale_attempts");
  static telemetry::Counter& sales = telemetry::counter("market.sales");
  static telemetry::Histogram& sell_duration =
      telemetry::histogram("market.sell_duration_us");
  static telemetry::Histogram& sale_price_hist =
      telemetry::histogram("market.sale_price");
  static telemetry::Histogram& sale_epsilon_hist =
      telemetry::histogram("market.sale_epsilon");
  static telemetry::Gauge& revenue_total =
      telemetry::gauge("market.revenue_total");
  static telemetry::Gauge& epsilon_spent_total =
      telemetry::gauge("market.epsilon_spent_total");
  PRC_TRACE_SPAN("market.sell");
  telemetry::ScopedTimer sell_timer(sell_duration);
  sale_attempts.increment();
  PRC_CRASH_POINT("broker.begin_sale");
  // Check the budget against the projected plan BEFORE computing the
  // answer, so a refused sale releases nothing.  The cheap spent-vs-cap
  // read keeps an already-exhausted consumer from paying for a plan
  // projection; the reservation below is the authoritative, race-free
  // admission check.
  const double spent = ledger_.consumer_epsilon(consumer_id);
  if (spent >= config_.per_consumer_epsilon_cap) {
    record_refusal("market.refusals_budget", consumer_id, range, spec, 0.0,
                   "consumer already at the per-consumer epsilon cap");
    throw BudgetExceededError(consumer_id, spent,
                              config_.per_consumer_epsilon_cap);
  }
  const auto projected = counter_.plan_for(spec);
  // Holding the projected epsilon' until commit (or unwinding) closes the
  // check/record race: two concurrent sales can no longer both clear the
  // cap on the strength of the same unspent headroom.
  auto reservation =
      ledger_.try_reserve(consumer_id, projected.epsilon_amplified,
                          config_.per_consumer_epsilon_cap);
  if (!reservation.has_value()) {
    record_refusal("market.refusals_budget", consumer_id, range, spec,
                   projected.epsilon_amplified,
                   "projected plan does not fit under the epsilon cap");
    throw BudgetExceededError(
        consumer_id,
        ledger_.consumer_epsilon(consumer_id) + projected.epsilon_amplified,
        config_.per_consumer_epsilon_cap);
  }
  {
    AuditEvent held;
    held.type = AuditEventType::kReserve;
    held.consumer_id = consumer_id;
    held.lower = range.lower;
    held.upper = range.upper;
    held.alpha = spec.alpha;
    held.delta = spec.delta;
    held.epsilon = projected.epsilon_amplified;
    audit_.append_event(std::move(held));
  }

  // The coverage floor is checked against the current cache BEFORE any
  // answer is attempted: an estimate blind to too much of the fleet's data
  // is refused regardless of policy, with nothing spent.
  {
    const auto cov = counter_.network().base_station().coverage();
    if (cov.target_p > 0.0 && cov.coverage < config_.min_coverage) {
      record_refusal("market.refusals_coverage", consumer_id, range, spec,
                     reservation->epsilon(),
                     "cache coverage below the broker floor");
      throw InsufficientCoverageError(
          "coverage " + std::to_string(cov.coverage) +
              " below the broker floor " +
              std::to_string(config_.min_coverage),
          cov);
    }
  }

  query::AccuracySpec sold_spec = spec;
  bool degraded = false;
  dp::PrivateAnswer answer;
  std::uint64_t intent_sequence = 0;
  try {
    answer = mint_answer_with_intent(consumer_id, range, spec, *reservation,
                                     intent_sequence);
  } catch (const dp::CoverageError& err) {
    // ensure_feasible_plan failed before any noise was drawn: nothing has
    // been released yet, so refusing here spends no budget.
    if (config_.degraded_policy == DegradedSalePolicy::kRefuse) {
      record_refusal("market.refusals_coverage", consumer_id, range, spec,
                     reservation->epsilon(),
                     "coverage cannot support the contract; policy is "
                     "refuse");
      throw InsufficientCoverageError(
          std::string("sale refused: ") + err.what(), err.coverage());
    }
    if (err.coverage().coverage < config_.min_coverage) {
      record_refusal("market.refusals_coverage", consumer_id, range, spec,
                     reservation->epsilon(),
                     "degraded coverage below the broker floor");
      throw InsufficientCoverageError(
          "coverage " + std::to_string(err.coverage().coverage) +
              " below the broker floor " +
              std::to_string(config_.min_coverage),
          err.coverage());
    }
    try {
      sold_spec = counter_.degraded_spec(spec);
    } catch (const dp::CoverageError& inner) {
      record_refusal("market.refusals_coverage", consumer_id, range, spec,
                     reservation->epsilon(),
                     "repricing impossible: some node never reported");
      throw InsufficientCoverageError(
          std::string("repricing impossible: ") + inner.what(),
          inner.coverage());
    }
    degraded = true;
    answer = mint_answer_with_intent(consumer_id, range, sold_spec,
                                     *reservation, intent_sequence);
  }

  PurchaseReceipt receipt;
  receipt.value = answer.value;
  // A degraded sale is priced at the weaker contract actually delivered —
  // through the quote cache, so an attacker's m-th copy of one weakened
  // contract costs a hash lookup and is guaranteed the exact price the
  // first copy paid.
  receipt.price = quote_cache_.price(sold_spec);
  // Lemma 4.1 precondition for everything downstream: a non-positive or
  // non-finite price breaks both the revenue accounting and the arbitrage
  // argument (a free contract can be averaged into any stronger one).
  PRC_CHECK(std::isfinite(receipt.price) && receipt.price > 0.0)
      << "pricing function returned a non-positive price "
      << receipt.price << " for " << sold_spec.to_string();
  receipt.range = range;
  receipt.spec = sold_spec;
  receipt.requested = spec;
  receipt.degraded = degraded;
  receipt.coverage = answer.coverage.coverage;
  Transaction transaction{0,
                          consumer_id,
                          range,
                          sold_spec,
                          receipt.price,
                          answer.plan.epsilon_amplified};
  transaction.coverage = answer.coverage.coverage;
  transaction.degraded = degraded;
  // Crash windows from here on: pre_record dies with a durable intent and
  // a minted answer (recovery charges the orphan); post_record dies with
  // the ledger updated in memory but no durable commit (same orphan
  // charge); post_commit dies fully durable.
  PRC_CRASH_POINT("broker.pre_record");
  receipt.transaction_id = ledger_.commit(std::move(*reservation),
                                          transaction);
  PRC_CRASH_POINT("broker.post_record");
  if (wal_ != nullptr) {
    wal::CommitRecord commit;
    commit.intent_sequence = intent_sequence;
    commit.transaction = std::move(transaction);
    commit.transaction.sequence = receipt.transaction_id;
    wal_->append_commit(std::move(commit));
    PRC_CRASH_POINT("wal.post_commit");
    maybe_checkpoint();
  }
  {
    AuditEvent committed;
    committed.type = AuditEventType::kCommit;
    committed.consumer_id = consumer_id;
    committed.lower = range.lower;
    committed.upper = range.upper;
    committed.alpha = sold_spec.alpha;
    committed.delta = sold_spec.delta;
    committed.epsilon = answer.plan.epsilon_amplified;
    committed.price = receipt.price;
    committed.wal_sequence = intent_sequence;
    committed.ledger_sequence = receipt.transaction_id;
    if (degraded) committed.detail = "degraded sale (repriced contract)";
    audit_.append_event(std::move(committed));
  }
  sales.increment();
  // Deliberately lazy (not a hoisted static): the degraded path is cold,
  // and registering the counter eagerly would change which metrics appear
  // in snapshots of sessions that never degrade.
  if (degraded) telemetry::counter("market.degraded_sales").increment();
  sale_price_hist.record(receipt.price);
  sale_epsilon_hist.record(answer.plan.epsilon_amplified);
  revenue_total.set(ledger_.total_revenue());
  epsilon_spent_total.set(ledger_.total_epsilon());
  return receipt;
}

}  // namespace prc::market
