#include "market/broker.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace prc::market {

DataBroker::DataBroker(dp::PrivateRangeCounter& counter,
                       std::unique_ptr<pricing::PricingFunction> pricing,
                       BrokerConfig config)
    : counter_(counter), pricing_(std::move(pricing)), config_(config) {
  PRC_CHECK(pricing_ != nullptr) << "broker needs a pricing function";
  PRC_CHECK(config_.per_consumer_epsilon_cap > 0.0)
      << "per-consumer epsilon cap must be positive, got "
      << config_.per_consumer_epsilon_cap;
  PRC_CHECK(config_.min_coverage >= 0.0 && config_.min_coverage <= 1.0)
      << "min_coverage must be in [0, 1], got " << config_.min_coverage;
}

double DataBroker::quote(const query::AccuracySpec& spec) const {
  telemetry::counter("market.quotes").increment();
  return pricing_->price(spec);
}

units::EffectiveEpsilon DataBroker::remaining_budget(
    const std::string& consumer_id) const {
  return std::max(0.0, config_.per_consumer_epsilon_cap -
                           ledger_.consumer_epsilon(consumer_id));
}

PurchaseReceipt DataBroker::sell(const std::string& consumer_id,
                                 const query::RangeQuery& range,
                                 const query::AccuracySpec& spec) {
  PRC_TRACE_SPAN("market.sell");
  telemetry::ScopedTimer sell_timer(
      telemetry::histogram("market.sell_duration_us"));
  telemetry::counter("market.sale_attempts").increment();
  // Check the budget against the projected plan BEFORE computing the
  // answer, so a refused sale releases nothing.
  const double spent = ledger_.consumer_epsilon(consumer_id);
  if (spent < config_.per_consumer_epsilon_cap) {
    const auto projected = counter_.plan_for(spec);
    if (spent + projected.epsilon_amplified >
        config_.per_consumer_epsilon_cap) {
      telemetry::counter("market.refusals_budget").increment();
      throw BudgetExceededError(consumer_id,
                                spent + projected.epsilon_amplified,
                                config_.per_consumer_epsilon_cap);
    }
  } else {
    telemetry::counter("market.refusals_budget").increment();
    throw BudgetExceededError(consumer_id, spent,
                              config_.per_consumer_epsilon_cap);
  }

  // The coverage floor is checked against the current cache BEFORE any
  // answer is attempted: an estimate blind to too much of the fleet's data
  // is refused regardless of policy, with nothing spent.
  {
    const auto cov = counter_.network().base_station().coverage();
    if (cov.target_p > 0.0 && cov.coverage < config_.min_coverage) {
      telemetry::counter("market.refusals_coverage").increment();
      throw InsufficientCoverageError(
          "coverage " + std::to_string(cov.coverage) +
              " below the broker floor " +
              std::to_string(config_.min_coverage),
          cov);
    }
  }

  query::AccuracySpec sold_spec = spec;
  bool degraded = false;
  dp::PrivateAnswer answer;
  try {
    answer = counter_.answer(range, spec);
  } catch (const dp::CoverageError& err) {
    // ensure_feasible_plan failed before any noise was drawn: nothing has
    // been released yet, so refusing here spends no budget.
    if (config_.degraded_policy == DegradedSalePolicy::kRefuse) {
      telemetry::counter("market.refusals_coverage").increment();
      throw InsufficientCoverageError(
          std::string("sale refused: ") + err.what(), err.coverage());
    }
    if (err.coverage().coverage < config_.min_coverage) {
      telemetry::counter("market.refusals_coverage").increment();
      throw InsufficientCoverageError(
          "coverage " + std::to_string(err.coverage().coverage) +
              " below the broker floor " +
              std::to_string(config_.min_coverage),
          err.coverage());
    }
    try {
      sold_spec = counter_.degraded_spec(spec);
    } catch (const dp::CoverageError& inner) {
      telemetry::counter("market.refusals_coverage").increment();
      throw InsufficientCoverageError(
          std::string("repricing impossible: ") + inner.what(),
          inner.coverage());
    }
    degraded = true;
    answer = counter_.answer(range, sold_spec);
  }

  PurchaseReceipt receipt;
  receipt.value = answer.value;
  // A degraded sale is priced at the weaker contract actually delivered.
  receipt.price = pricing_->price(sold_spec);
  // Lemma 4.1 precondition for everything downstream: a non-positive or
  // non-finite price breaks both the revenue accounting and the arbitrage
  // argument (a free contract can be averaged into any stronger one).
  PRC_CHECK(std::isfinite(receipt.price) && receipt.price > 0.0)
      << "pricing function returned a non-positive price "
      << receipt.price << " for " << sold_spec.to_string();
  receipt.range = range;
  receipt.spec = sold_spec;
  receipt.requested = spec;
  receipt.degraded = degraded;
  receipt.coverage = answer.coverage.coverage;
  Transaction transaction{0,
                          consumer_id,
                          range,
                          sold_spec,
                          receipt.price,
                          answer.plan.epsilon_amplified};
  transaction.coverage = answer.coverage.coverage;
  transaction.degraded = degraded;
  receipt.transaction_id = ledger_.record(std::move(transaction));
  telemetry::counter("market.sales").increment();
  if (degraded) telemetry::counter("market.degraded_sales").increment();
  telemetry::histogram("market.sale_price").record(receipt.price);
  telemetry::histogram("market.sale_epsilon")
      .record(answer.plan.epsilon_amplified);
  telemetry::gauge("market.revenue_total").set(ledger_.total_revenue());
  telemetry::gauge("market.epsilon_spent_total").set(ledger_.total_epsilon());
  return receipt;
}

}  // namespace prc::market
