#include "market/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/crash_point.h"
#include "common/telemetry.h"
#include "iot/codec.h"

namespace prc::market::wal {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value) {
  out.push_back(value);
}

void write_fully(int fd, const std::uint8_t* data, std::size_t size,
                 const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0 && errno == EINTR) continue;
    PRC_CHECK(n >= 0) << "wal: write to '" << path
                      << "' failed: " << std::strerror(errno);
    written += static_cast<std::size_t>(n);
  }
}

void fsync_or_die(int fd, const std::string& path) {
  PRC_CHECK(::fsync(fd) == 0)
      << "wal: fsync of '" << path << "' failed: " << std::strerror(errno);
}

/// Makes a rename in `path`'s directory durable: without this the new
/// directory entry lives only in the page cache and a power loss can
/// resurrect the pre-rename state (or worse, neither state).
void fsync_parent_directory(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, std::max<std::size_t>(slash, 1));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  PRC_CHECK(fd >= 0) << "wal: cannot open directory '" << dir
                     << "': " << std::strerror(errno);
  fsync_or_die(fd, dir);
  ::close(fd);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFF));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

/// Bounds-checked reader over a payload slice; every overrun is a
/// FormatError (the record claimed more content than its payload holds).
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
    }
    return value;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
    }
    return value;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint32_t length = u32();
    need(length);
    std::string value(reinterpret_cast<const char*>(data_ + pos_), length);
    pos_ += length;
    return value;
  }

  bool exhausted() const noexcept { return pos_ == size_; }

 private:
  void need(std::size_t bytes) const {
    if (size_ - pos_ < bytes) {
      throw FormatError("wal payload shorter than its content");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::vector<std::uint8_t> frame(RecordType type, std::uint64_t wal_sequence,
                                const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  put_u8(out, kMagic);
  put_u8(out, kFormatVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u8(out, 0);  // flags, reserved
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u64(out, wal_sequence);
  // The CRC covers the pre-CRC header bytes AND the payload, so header
  // corruption (a flipped length or sequence) is caught, not just payload
  // corruption.
  std::vector<std::uint8_t> covered(out.begin(), out.end());
  covered.insert(covered.end(), payload.begin(), payload.end());
  put_u32(out, iot::crc32(covered.data(), covered.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> intent_payload(const IntentRecord& record) {
  std::vector<std::uint8_t> payload;
  put_string(payload, record.consumer_id);
  put_f64(payload, record.range.lower);
  put_f64(payload, record.range.upper);
  put_f64(payload, record.spec.alpha.value());
  put_f64(payload, record.spec.delta.value());
  put_f64(payload, record.epsilon_amplified.value());
  return payload;
}

std::vector<std::uint8_t> commit_payload(const CommitRecord& record) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, record.intent_sequence);
  put_u64(payload, static_cast<std::uint64_t>(record.transaction.sequence));
  put_string(payload, record.transaction.consumer_id);
  put_f64(payload, record.transaction.range.lower);
  put_f64(payload, record.transaction.range.upper);
  put_f64(payload, record.transaction.spec.alpha.value());
  put_f64(payload, record.transaction.spec.delta.value());
  put_f64(payload, record.transaction.price);
  put_f64(payload, record.transaction.epsilon_amplified.value());
  put_f64(payload, record.transaction.coverage);
  put_u8(payload, record.transaction.degraded ? 1 : 0);
  return payload;
}

std::vector<std::uint8_t> checkpoint_payload(const LedgerSnapshot& snapshot) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, snapshot.next_sequence);
  put_f64(payload, snapshot.total_revenue);
  put_f64(payload, snapshot.total_epsilon.value());
  put_f64(payload, snapshot.orphaned_epsilon.value());
  put_u64(payload, snapshot.degraded_sales);
  put_u32(payload, static_cast<std::uint32_t>(snapshot.consumers.size()));
  for (const auto& totals : snapshot.consumers) {
    put_string(payload, totals.consumer_id);
    put_f64(payload, totals.spend);
    put_f64(payload, totals.epsilon.value());
  }
  return payload;
}

IntentRecord decode_intent_payload(Cursor& cursor,
                                   std::uint64_t wal_sequence) {
  IntentRecord record;
  record.wal_sequence = wal_sequence;
  record.consumer_id = cursor.str();
  record.range.lower = cursor.f64();
  record.range.upper = cursor.f64();
  record.spec.alpha = cursor.f64();
  record.spec.delta = cursor.f64();
  record.epsilon_amplified = cursor.f64();
  return record;
}

CommitRecord decode_commit_payload(Cursor& cursor,
                                   std::uint64_t wal_sequence) {
  CommitRecord record;
  record.wal_sequence = wal_sequence;
  record.intent_sequence = cursor.u64();
  record.transaction.sequence = static_cast<std::size_t>(cursor.u64());
  record.transaction.consumer_id = cursor.str();
  record.transaction.range.lower = cursor.f64();
  record.transaction.range.upper = cursor.f64();
  record.transaction.spec.alpha = cursor.f64();
  record.transaction.spec.delta = cursor.f64();
  record.transaction.price = cursor.f64();
  record.transaction.epsilon_amplified = cursor.f64();
  record.transaction.coverage = cursor.f64();
  record.transaction.degraded = cursor.u8() != 0;
  return record;
}

LedgerSnapshot decode_checkpoint_payload(Cursor& cursor) {
  LedgerSnapshot snapshot;
  snapshot.next_sequence = cursor.u64();
  snapshot.total_revenue = cursor.f64();
  snapshot.total_epsilon = cursor.f64();
  snapshot.orphaned_epsilon = cursor.f64();
  snapshot.degraded_sales = cursor.u64();
  const std::uint32_t consumers = cursor.u32();
  snapshot.consumers.reserve(consumers);
  for (std::uint32_t i = 0; i < consumers; ++i) {
    LedgerConsumerTotals totals;
    totals.consumer_id = cursor.str();
    totals.spend = cursor.f64();
    totals.epsilon = cursor.f64();
    snapshot.consumers.push_back(std::move(totals));
  }
  return snapshot;
}

}  // namespace

std::vector<std::uint8_t> encode_intent(const IntentRecord& record) {
  return frame(RecordType::kIntent, record.wal_sequence,
               intent_payload(record));
}

std::vector<std::uint8_t> encode_commit(const CommitRecord& record) {
  return frame(RecordType::kCommit, record.wal_sequence,
               commit_payload(record));
}

std::vector<std::uint8_t> encode_checkpoint(const LedgerSnapshot& snapshot,
                                            std::uint64_t wal_sequence) {
  return frame(RecordType::kCheckpoint, wal_sequence,
               checkpoint_payload(snapshot));
}

DecodedRecord decode_record(const std::vector<std::uint8_t>& bytes,
                            std::size_t offset) {
  PRC_CHECK(offset <= bytes.size()) << "wal decode offset out of range";
  if (bytes.size() - offset < kHeaderSize) {
    throw FormatError("wal record header torn");
  }
  const std::uint8_t* header = bytes.data() + offset;
  if (header[0] != kMagic) throw FormatError("wal record magic mismatch");
  if (header[1] != kFormatVersion) {
    throw FormatError("wal format version " + std::to_string(header[1]) +
                      " unsupported (expected " +
                      std::to_string(kFormatVersion) + ")");
  }
  const std::uint8_t type = header[2];
  if (type != static_cast<std::uint8_t>(RecordType::kIntent) &&
      type != static_cast<std::uint8_t>(RecordType::kCommit) &&
      type != static_cast<std::uint8_t>(RecordType::kCheckpoint)) {
    throw FormatError("wal record type " + std::to_string(type) + " unknown");
  }
  std::uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
  }
  std::uint64_t wal_sequence = 0;
  for (int i = 0; i < 8; ++i) {
    wal_sequence |= static_cast<std::uint64_t>(header[8 + i]) << (8 * i);
  }
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<std::uint32_t>(header[16 + i]) << (8 * i);
  }
  if (bytes.size() - offset - kHeaderSize < payload_len) {
    throw FormatError("wal record payload torn");
  }
  const std::uint8_t* payload = header + kHeaderSize;
  std::vector<std::uint8_t> covered(header, header + 16);
  covered.insert(covered.end(), payload, payload + payload_len);
  if (iot::crc32(covered.data(), covered.size()) != stored_crc) {
    throw FormatError("wal record CRC mismatch");
  }

  DecodedRecord decoded;
  decoded.type = static_cast<RecordType>(type);
  decoded.wal_sequence = wal_sequence;
  decoded.encoded_size = kHeaderSize + payload_len;
  Cursor cursor(payload, payload_len);
  switch (decoded.type) {
    case RecordType::kIntent:
      decoded.intent = decode_intent_payload(cursor, wal_sequence);
      break;
    case RecordType::kCommit:
      decoded.commit = decode_commit_payload(cursor, wal_sequence);
      break;
    case RecordType::kCheckpoint:
      decoded.checkpoint = decode_checkpoint_payload(cursor);
      break;
  }
  if (!cursor.exhausted()) {
    throw FormatError("wal record payload longer than its content");
  }
  return decoded;
}

RecoveryResult read_wal(const std::string& path) {
  RecoveryResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return result;  // no log yet: empty recovery
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  in.close();

  // Intents still awaiting their commit, by wal sequence.  std::map keeps
  // orphans ordered by append time.
  std::map<std::uint64_t, IntentRecord> pending;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    DecodedRecord decoded;
    try {
      decoded = decode_record(bytes, offset);
    } catch (const FormatError&) {
      // First torn/corrupt record: trust everything before it, drop
      // everything from here on (a crash mid-append, or tail damage).
      break;
    }
    offset += decoded.encoded_size;
    ++result.stats.records_read;
    result.next_wal_sequence =
        std::max(result.next_wal_sequence, decoded.wal_sequence + 1);
    switch (decoded.type) {
      case RecordType::kIntent:
        pending.emplace(decoded.wal_sequence, std::move(decoded.intent));
        break;
      case RecordType::kCommit:
        pending.erase(decoded.commit.intent_sequence);
        result.commits.push_back(std::move(decoded.commit));
        break;
      case RecordType::kCheckpoint:
        ++result.stats.checkpoints_seen;
        result.base = std::move(decoded.checkpoint);
        break;
    }
  }
  result.stats.valid_bytes = offset;
  result.stats.truncated_bytes = bytes.size() - offset;

  // Commits the checkpoint already aggregates must not be replayed twice.
  // The filter runs AFTER the full scan, not at the checkpoint record:
  // the ledger and the log lock independently, so a checkpoint whose
  // next_sequence covers transaction N can reach the log BEFORE N's
  // commit record (the committing thread sat between its ledger update
  // and its WAL append while the checkpoint was taken).  Wherever such a
  // commit sits, its aggregates are in the checkpoint — replaying it
  // would double-charge, so it is dropped regardless of log position.
  // Pending intents stay pending either way: a checkpoint only absorbs
  // COMMITTED sales, so an unresolved intent is still a potential
  // pre-crash release.
  std::erase_if(result.commits, [&](const CommitRecord& commit) {
    return commit.transaction.sequence < result.base.next_sequence;
  });

  std::sort(result.commits.begin(), result.commits.end(),
            [](const CommitRecord& a, const CommitRecord& b) {
              return a.transaction.sequence < b.transaction.sequence;
            });
  result.orphans.reserve(pending.size());
  for (auto& [sequence, intent] : pending) {
    result.stats.orphaned_epsilon += intent.epsilon_amplified.value();
    result.orphans.push_back(std::move(intent));
  }
  result.stats.orphaned_intents = result.orphans.size();
  result.stats.committed_sales = result.commits.size();

  telemetry::counter("market.wal_recovered_commits")
      .increment(result.stats.committed_sales);
  telemetry::counter("market.wal_orphaned_intents")
      .increment(result.stats.orphaned_intents);
  telemetry::gauge("market.wal_truncated_bytes")
      .set(static_cast<double>(result.stats.truncated_bytes));
  return result;
}

void apply_recovery(Ledger& ledger, const RecoveryResult& recovery) {
  ledger.restore(recovery.base);
  std::uint64_t expected = recovery.base.next_sequence;
  for (const auto& commit : recovery.commits) {
    const auto& transaction = commit.transaction;
    // A gap in the replayed sequence means the missing sale's commit never
    // hit the disk; its intent is among the orphans, so the budget is
    // still charged — only the sequence slot is burned.
    PRC_CHECK(transaction.sequence >= expected)
        << "wal replay out of order: transaction " << transaction.sequence
        << " after " << expected;
    expected = transaction.sequence;
    const auto assigned = ledger.replay(transaction);
    PRC_CHECK(assigned == transaction.sequence)
        << "wal replay assigned sequence " << assigned << " to transaction "
        << transaction.sequence;
    expected = assigned + 1;
  }
  for (const auto& orphan : recovery.orphans) {
    ledger.absorb_orphaned(orphan.consumer_id, orphan.epsilon_amplified);
  }
}

WriteAheadLog::WriteAheadLog(std::string path, std::uint64_t next_sequence,
                             SyncMode sync_mode)
    : path_(std::move(path)),
      sync_mode_(sync_mode),
      next_sequence_(next_sequence) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  PRC_CHECK(fd_ >= 0) << "wal: cannot open '" << path_
                      << "' for appending: " << std::strerror(errno);
}

WriteAheadLog::~WriteAheadLog() {
  // The destructor runs with exclusive ownership; any concurrent append
  // while the log is being destroyed is already a use-after-free upstream.
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<WriteAheadLog> WriteAheadLog::open(
    const std::string& path, std::uint64_t next_sequence,
    SyncMode sync_mode) {
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, next_sequence, sync_mode));
}

std::unique_ptr<WriteAheadLog> WriteAheadLog::compact(
    const std::string& path, const LedgerSnapshot& snapshot,
    std::uint64_t next_sequence, SyncMode sync_mode) {
  const std::string temp = path + ".compact.tmp";
  {
    const int fd =
        ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    PRC_CHECK(fd >= 0) << "wal: cannot open '" << temp
                       << "' for compaction: " << std::strerror(errno);
    const auto bytes = encode_checkpoint(snapshot, next_sequence);
    write_fully(fd, bytes.data(), bytes.size(), temp);
    // The checkpoint's data blocks must be on media BEFORE the rename can
    // become durable: a journaled rename pointing at a torn checkpoint is
    // an empty log once the old one is gone — a recovery that
    // UNDER-counts released budget.  This fsync is unconditional; only
    // append durability is a policy choice.
    fsync_or_die(fd, temp);
    PRC_CHECK(::close(fd) == 0)
        << "wal: close of '" << temp << "' failed: " << std::strerror(errno);
  }
  // The rename is the commit point: before it the old log is intact, after
  // it (and the directory fsync below) the compacted one is — a crash on
  // either side recovers cleanly.
  PRC_CRASH_POINT("wal.pre_compact_rename");
  PRC_CHECK(std::rename(temp.c_str(), path.c_str()) == 0)
      << "wal: compaction rename to '" << path << "' failed";
  fsync_parent_directory(path);
  telemetry::counter("market.wal_compactions").increment();
  return open(path, next_sequence + 1, sync_mode);
}

void WriteAheadLog::append_bytes_locked(const std::vector<std::uint8_t>& bytes) {
  // write(2) IS the spend-ahead discipline for process death: after
  // append_intent returns, the whole record is the kernel's problem, not
  // this process's.  Power/kernel loss is covered only under
  // kMediaDurable — the per-record barrier is a policy choice because it
  // dominates the sale's latency on real disks.
  write_fully(fd_, bytes.data(), bytes.size(), path_);
  if (sync_mode_ == SyncMode::kMediaDurable) fsync_or_die(fd_, path_);
  ++records_appended_;
  bytes_appended_ += bytes.size();
  telemetry::counter("market.wal_records").increment();
  telemetry::counter("market.wal_bytes").increment(bytes.size());
}

std::uint64_t WriteAheadLog::append_intent(IntentRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  record.wal_sequence = next_sequence_++;
  // The intent-before-mint barrier IS the hold: the durable write must
  // happen inside the same critical section that assigned the sequence
  // number, or a crash could mint noise for an intent that never reached
  // the disk.
  append_bytes_locked(encode_intent(record));  // lint:allow blocking
  return record.wal_sequence;
}

void WriteAheadLog::append_commit(CommitRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  record.wal_sequence = next_sequence_++;
  // Commit records share the intent barrier's sequence lock; writing
  // outside it could durably reorder a commit ahead of its own intent.
  append_bytes_locked(encode_commit(record));  // lint:allow blocking
}

void WriteAheadLog::append_checkpoint(const LedgerSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A checkpoint must capture a sequence-point no append can cross;
  // staging it outside the lock would let records land between the
  // snapshot and its durable write.
  append_bytes_locked(  // lint:allow blocking
      encode_checkpoint(snapshot, next_sequence_++));
  telemetry::counter("market.wal_checkpoints").increment();
}

}  // namespace prc::market::wal
