// Privacy-budget audit timeline: an append-only, in-memory structured log
// of every budget-relevant event the broker takes — quote, reserve, intent,
// mint, commit, refusal, recovery, checkpoint — each carrying the epsilon'
// amount it accounts and, where applicable, the WAL sequence number that
// made it durable.
//
// The timeline is the observable counterpart of the WAL's spend-ahead
// guarantee: a MINT event is appended inside the mint barrier, after the
// durable intent and BEFORE any noise is drawn, so for a live broker
//
//     Sigma(mint-event epsilon') == ledger.total_epsilon()
//
// holds exactly, and after crash recovery the RECOVERY seed event closes
// the same equation (reconcile() proves it, the chaos sweep tests it at
// every crash point).  A crashed-but-not-recovered broker whose mechanism
// died between mint and ledger commit shows up as a reconciliation
// discrepancy — exactly the under-count the audit exists to catch.
//
// PRIVACY SAFETY: events carry only released/accounting quantities
// (epsilon', prices, contracts, sequence numbers, refusal reasons) — never
// raw samples or unperturbed estimates.  AuditLog::append_event is a
// registered lint taint sink (no-raw-to-sink / interproc-raw-taint), and
// to_jsonl() output is safe to ship outside the trust boundary.
//
// Thread-safety: append_event and all readers serialize on one mutex
// (parallel brokers append from concurrent sales).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/units.h"
#include "market/ledger.h"
#include "market/wal.h"

namespace prc::market {

enum class AuditEventType : std::uint8_t {
  kQuote,       ///< price quoted, nothing held or spent
  kReserve,     ///< projected epsilon' held against the consumer cap
  kIntent,      ///< durable WAL intent flushed (spend-ahead point)
  kMint,        ///< final plan admitted; noise draw follows immediately
  kCommit,      ///< transaction recorded in the ledger (and WAL, if any)
  kRefusal,     ///< sale refused with nothing spent
  kRecovery,    ///< recovered ledger state adopted after a crash
  kCheckpoint,  ///< ledger aggregates checkpointed into the WAL
};

/// "quote", "reserve", ... (the JSONL `type` field).
const char* audit_event_type_name(AuditEventType type);

struct AuditEvent {
  std::uint64_t index = 0;  ///< assigned by append_event; dense, 0-based
  AuditEventType type = AuditEventType::kQuote;
  std::string consumer_id;  ///< empty for broker-level events
  double lower = 0.0;       ///< query range (0/0 when not applicable)
  double upper = 0.0;
  units::Alpha alpha = 0.0;  ///< contract (0/0 when not applicable)
  units::Delta delta = 0.0;
  /// The epsilon' this event accounts: projected for kReserve, final for
  /// kIntent/kMint/kCommit, recovered total for kRecovery, checkpointed
  /// total for kCheckpoint, attempted-but-unspent for kRefusal.
  units::EffectiveEpsilon epsilon = 0.0;
  double price = 0.0;               ///< quoted/charged price (0 when n/a)
  std::uint64_t wal_sequence = 0;   ///< durable linkage (0 = none)
  std::uint64_t ledger_sequence = 0;  ///< transaction sequence (kCommit)
  std::string detail;  ///< refusal reason, recovery stats, policy notes
};

/// Everything reconcile() compares, exported so tests and prc_query can
/// assert and print the equation's terms.
struct AuditReconciliation {
  double minted_epsilon = 0.0;     ///< Sigma epsilon' over kMint events
  double recovered_epsilon = 0.0;  ///< Sigma epsilon' over kRecovery events
  double ledger_epsilon = 0.0;     ///< ledger.total_epsilon()
  double discrepancy = 0.0;        ///< |ledger - (minted + recovered)|
  bool consistent = false;         ///< discrepancy within fp rounding

  std::string to_string() const;
};

class AuditLog {
 public:
  /// Appends (assigning the event's index) and returns that index.
  /// Registered as a lint taint sink: raw estimates must never reach it.
  std::uint64_t append_event(AuditEvent event);

  std::size_t size() const;

  /// Copy of the timeline taken under the lock.
  std::vector<AuditEvent> events_snapshot() const;

  /// One JSON object per line, in append order — the `--audit-log` /
  /// `--audit-json` export format (grep- and jq-friendly).
  std::string to_jsonl() const;

  /// Proves the observable form of the spend-ahead guarantee against a
  /// ledger: Sigma(mint epsilon') + Sigma(recovery epsilon') must equal
  /// ledger.total_epsilon() within fp rounding.  A live, crash-free broker
  /// satisfies it exactly; a broker that died after a mint but before the
  /// ledger commit fails it — which is the point.
  AuditReconciliation reconcile(const Ledger& ledger) const;

 private:
  mutable std::mutex mutex_;
  std::vector<AuditEvent> events_ PRC_GUARDED_BY(mutex_);
};

/// Rebuilds an audit timeline from a parsed WAL (prc_query recover
/// --audit-json): one kCheckpoint event for the recovery base, a kCommit
/// per replayed sale, a kIntent (marked orphaned) per intent with no
/// commit, and a closing kRecovery event whose epsilon' is the recovered
/// ledger total — so reconcile() against the recovered ledger passes iff
/// apply_recovery() charged exactly what the log says.
void append_recovery_events(AuditLog& log, const wal::RecoveryResult& recovery);

}  // namespace prc::market
