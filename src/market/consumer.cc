#include "market/consumer.h"

#include <utility>

namespace prc::market {

HonestConsumer::HonestConsumer(std::string id, DataBroker& broker)
    : id_(std::move(id)), broker_(broker) {}

StrategyOutcome HonestConsumer::acquire(const query::RangeQuery& range,
                                        const query::AccuracySpec& spec) {
  const PurchaseReceipt receipt = broker_.sell(id_, range, spec);
  StrategyOutcome outcome;
  outcome.answer = receipt.value;
  outcome.total_cost = receipt.price;
  outcome.queries_issued = 1;
  // The honest buyer holds exactly the contract-level variance it paid for.
  outcome.effective_variance = 0.0;  // filled by callers that have the model
  return outcome;
}

ArbitrageAttacker::ArbitrageAttacker(std::string id, DataBroker& broker,
                                     pricing::AttackSimulator simulator)
    : id_(std::move(id)), broker_(broker), simulator_(std::move(simulator)) {}

StrategyOutcome ArbitrageAttacker::acquire(const query::RangeQuery& range,
                                           const query::AccuracySpec& target) {
  last_ = simulator_.best_attack(broker_.pricing(), target);
  StrategyOutcome outcome;
  if (!last_.profitable) {
    // No arbitrage available: pay full price like everyone else.
    const PurchaseReceipt receipt = broker_.sell(id_, range, target);
    outcome.answer = receipt.value;
    outcome.total_cost = receipt.price;
    outcome.queries_issued = 1;
    outcome.effective_variance = last_.combined_variance;
    return outcome;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < last_.copies; ++i) {
    const PurchaseReceipt receipt =
        broker_.sell(id_, range, last_.weaker_spec);
    sum += receipt.value;
    outcome.total_cost += receipt.price;
    ++outcome.queries_issued;
  }
  outcome.answer = sum / static_cast<double>(last_.copies);
  outcome.effective_variance = last_.combined_variance;
  return outcome;
}

}  // namespace prc::market
