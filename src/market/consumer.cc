#include "market/consumer.h"

#include <utility>

namespace prc::market {

HonestConsumer::HonestConsumer(std::string id, DataBroker& broker)
    : id_(std::move(id)), broker_(broker) {}

StrategyOutcome HonestConsumer::acquire(
    const query::RangeQuery& range, const query::AccuracySpec& spec) const {
  const PurchaseReceipt receipt = broker_.sell(id_, range, spec);
  StrategyOutcome outcome;
  outcome.answer = receipt.value;
  outcome.total_cost = receipt.price;
  outcome.queries_issued = 1;
  // The honest buyer holds exactly the contract-level variance it paid for.
  outcome.effective_variance = 0.0;  // filled by callers that have the model
  return outcome;
}

ArbitrageAttacker::ArbitrageAttacker(std::string id, DataBroker& broker,
                                     pricing::AttackSimulator simulator)
    : id_(std::move(id)), broker_(broker), simulator_(std::move(simulator)) {}

StrategyOutcome ArbitrageAttacker::acquire(const query::RangeQuery& range,
                                           const query::AccuracySpec& target) {
  return acquire(range, target,
                 simulator_.best_attack(broker_.pricing(), target));
}

StrategyOutcome ArbitrageAttacker::acquire(const query::RangeQuery& range,
                                           const query::AccuracySpec& target,
                                           const pricing::AttackResult& plan) {
  last_ = plan;
  return execute_plan(range, target, plan);
}

StrategyOutcome ArbitrageAttacker::execute_plan(
    const query::RangeQuery& range, const query::AccuracySpec& target,
    const pricing::AttackResult& plan) const {
  StrategyOutcome outcome;
  if (!plan.profitable) {
    // No arbitrage available: pay full price like everyone else.
    const PurchaseReceipt receipt = broker_.sell(id_, range, target);
    outcome.answer = receipt.value;
    outcome.total_cost = receipt.price;
    outcome.queries_issued = 1;
    outcome.effective_variance = plan.combined_variance;
    return outcome;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < plan.copies; ++i) {
    const PurchaseReceipt receipt = broker_.sell(id_, range, plan.weaker_spec);
    sum += receipt.value;
    outcome.total_cost += receipt.price;
    ++outcome.queries_issued;
  }
  outcome.answer = sum / static_cast<double>(plan.copies);
  outcome.effective_variance = plan.combined_variance;
  return outcome;
}

}  // namespace prc::market
