// Consumer strategies: the honest buyer and the Example 4.1 averaging
// attacker.
#pragma once

#include <string>
#include <vector>

#include "market/broker.h"
#include "pricing/arbitrage.h"
#include "query/range_query.h"

namespace prc::market {

/// Outcome of one acquisition strategy: what the consumer paid and the
/// answer (and its contract-level variance) they ended up holding.
struct StrategyOutcome {
  double answer = 0.0;
  double total_cost = 0.0;
  std::size_t queries_issued = 0;
  /// Contract-level variance of the held answer (combined variance for the
  /// attacker's average).
  double effective_variance = 0.0;
};

/// Buys exactly the contract it needs, once.  Stateless beyond its id, so
/// one consumer's acquire() calls may run concurrently (the broker and
/// ledger carry their own locks).
class HonestConsumer {
 public:
  HonestConsumer(std::string id, DataBroker& broker);

  StrategyOutcome acquire(const query::RangeQuery& range,
                          const query::AccuracySpec& spec) const;

  const std::string& id() const noexcept { return id_; }

 private:
  std::string id_;
  DataBroker& broker_;
};

/// The averaging adversary: wants `target` quality but first searches (via
/// AttackSimulator) for m weaker purchases whose average is at least as
/// good and cheaper.  Falls back to the honest purchase when no profitable
/// attack exists — which is precisely what an arbitrage-avoiding price
/// forces it to do.
class ArbitrageAttacker {
 public:
  ArbitrageAttacker(std::string id, DataBroker& broker,
                    pricing::AttackSimulator simulator);

  StrategyOutcome acquire(const query::RangeQuery& range,
                          const query::AccuracySpec& target);

  /// Deliberation/commit split for pipelined simulations: executes the
  /// purchases of a plan computed elsewhere (the deliberation —
  /// AttackSimulator::best_attack — is pure in (pricing, target), so a
  /// simulation can run it off-thread and commit later).  Records the plan
  /// as last_plan() before buying.
  StrategyOutcome acquire(const query::RangeQuery& range,
                          const query::AccuracySpec& target,
                          const pricing::AttackResult& plan);

  /// Like the 3-argument acquire() but does NOT touch last_plan() — the
  /// member-write-free variant concurrent simulations need when several of
  /// one attacker's purchases are in flight at once.
  StrategyOutcome execute_plan(const query::RangeQuery& range,
                               const query::AccuracySpec& target,
                               const pricing::AttackResult& plan) const;

  /// The attack plan used on the last acquire() (copies == 0 if honest).
  const pricing::AttackResult& last_plan() const noexcept { return last_; }

  const std::string& id() const noexcept { return id_; }

 private:
  std::string id_;
  DataBroker& broker_;
  pricing::AttackSimulator simulator_;
  pricing::AttackResult last_;
};

}  // namespace prc::market
