// Multi-round market simulation: the Fig. 1 ecosystem under load.
//
// A population of honest consumers and arbitrage attackers arrives over
// rounds, each drawing a random contract and a random range from a query
// pool, and shops at one broker.  The simulation tallies revenue, refusals
// (privacy-budget caps), attack success, and the privacy leakage per
// consumer class — the observable consequences of the pricing-function
// choice that Section IV argues about.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "market/broker.h"
#include "market/consumer.h"
#include "pricing/arbitrage.h"
#include "query/range_query.h"

namespace prc::market {

struct SimulationConfig {
  std::size_t rounds = 50;
  std::size_t honest_consumers = 5;
  std::size_t attackers = 2;
  /// Per-consumer, per-round probability of issuing a request.
  double arrival_probability = 0.5;
  /// Contracts are drawn uniformly from these boxes.
  double alpha_min = 0.03, alpha_max = 0.25;
  double delta_min = 0.4, delta_max = 0.9;
  std::uint64_t seed = 1;
  /// Commit purchases concurrently (parallel::thread_count() workers)
  /// instead of in arrival order.  This hammers the broker/counter/ledger
  /// locks but makes the RUN NONDETERMINISTIC: sales interleave, so noise
  /// values, refusal counts, and ledger ordering vary run to run.  Only the
  /// conserved quantities (transaction count vs. purchases, revenue vs.
  /// prices paid, budget conservation) are stable — use it for contention
  /// tests, never for figures.  Default off: arrival-order commit is
  /// bit-identical for every thread count.
  bool concurrent_consumers = false;
};

struct SimulationReport {
  std::size_t rounds = 0;
  std::size_t honest_purchases = 0;
  std::size_t attacker_queries = 0;   ///< individual queries issued
  std::size_t attacker_targets = 0;   ///< distinct target acquisitions
  std::size_t profitable_attacks = 0;
  std::size_t refused_sales = 0;      ///< budget-cap refusals
  double revenue = 0.0;
  double honest_spend = 0.0;
  double attacker_spend = 0.0;
  /// What the attackers WOULD have paid buying honestly.
  double attacker_honest_value = 0.0;
  double max_honest_epsilon = 0.0;
  double max_attacker_epsilon = 0.0;

  /// Revenue lost to arbitrage: honest value minus what attackers paid.
  double arbitrage_leakage() const {
    return attacker_honest_value - attacker_spend;
  }
};

class MarketSimulation {
 public:
  /// `broker` serves the whole population; `query_pool` supplies the ranges
  /// consumers ask about; `model` powers the attackers' search.  All must
  /// outlive the simulation.
  MarketSimulation(DataBroker& broker, pricing::VarianceModel model,
                   std::vector<query::RangeQuery> query_pool,
                   SimulationConfig config = {});

  /// Runs all rounds and returns the tally.  Deterministic in config.seed
  /// for any parallel::thread_count(): arrivals, contracts and ranges are
  /// drawn serially up front, the attackers' plan searches (the expensive,
  /// pure part) run in parallel, and purchases commit in arrival order so
  /// the broker's noise stream and ledger sequence match the serial run
  /// bit for bit.  config.concurrent_consumers trades that determinism for
  /// genuine lock contention (see its comment).
  SimulationReport run();

 private:
  query::AccuracySpec draw_contract(Rng& rng) const;

  DataBroker& broker_;
  pricing::VarianceModel model_;
  std::vector<query::RangeQuery> query_pool_;
  SimulationConfig config_;
};

}  // namespace prc::market
