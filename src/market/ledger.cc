#include "market/ledger.h"

#include <stdexcept>

namespace prc::market {

std::size_t Ledger::record(Transaction transaction) {
  if (transaction.price < 0.0 || transaction.epsilon_amplified < 0.0) {
    throw std::invalid_argument("ledger: negative price or budget");
  }
  if (transaction.coverage < 0.0 || transaction.coverage > 1.0) {
    throw std::invalid_argument("ledger: coverage must be in [0, 1]");
  }
  transaction.sequence = transactions_.size();
  if (transaction.degraded) ++degraded_sales_;
  total_revenue_ += transaction.price;
  total_epsilon_ += transaction.epsilon_amplified;
  spend_by_consumer_[transaction.consumer_id] += transaction.price;
  epsilon_by_consumer_[transaction.consumer_id] +=
      transaction.epsilon_amplified;
  transactions_.push_back(std::move(transaction));
  return transactions_.back().sequence;
}

double Ledger::consumer_spend(const std::string& consumer_id) const {
  const auto it = spend_by_consumer_.find(consumer_id);
  return it == spend_by_consumer_.end() ? 0.0 : it->second;
}

double Ledger::consumer_epsilon(const std::string& consumer_id) const {
  const auto it = epsilon_by_consumer_.find(consumer_id);
  return it == epsilon_by_consumer_.end() ? 0.0 : it->second;
}

}  // namespace prc::market
