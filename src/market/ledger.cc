#include "market/ledger.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "common/telemetry.h"

namespace prc::market {

void Ledger::Reservation::release() noexcept {
  if (ledger_ == nullptr) return;
  Ledger* ledger = ledger_;
  ledger_ = nullptr;
  std::lock_guard<std::mutex> lock(ledger->mutex_);
  auto it = ledger->reserved_by_consumer_.find(consumer_id_);
  if (it != ledger->reserved_by_consumer_.end()) {
    it->second -= epsilon_;
    if (it->second <= 0.0) ledger->reserved_by_consumer_.erase(it);
  }
}

std::size_t Ledger::record(Transaction transaction) {
  std::lock_guard<std::mutex> lock(mutex_);
  return record_locked(std::move(transaction));
}

std::size_t Ledger::record_locked(Transaction transaction) {
  PRC_CHECK(std::isfinite(transaction.price) && transaction.price >= 0.0)
      << "ledger: price must be >= 0, got " << transaction.price;
  PRC_CHECK(std::isfinite(transaction.epsilon_amplified) &&
            transaction.epsilon_amplified >= 0.0)
      << "ledger: released budget must be >= 0, got "
      << transaction.epsilon_amplified;
  PRC_CHECK(transaction.coverage >= 0.0 && transaction.coverage <= 1.0)
      << "ledger: coverage must be in [0, 1], got " << transaction.coverage;
  transaction.sequence = next_sequence_++;
  if (transaction.degraded) ++degraded_sales_;
  total_revenue_ += transaction.price;
  total_epsilon_ += transaction.epsilon_amplified;
  spend_by_consumer_[transaction.consumer_id] += transaction.price;
  epsilon_by_consumer_[transaction.consumer_id] +=
      transaction.epsilon_amplified;
  transactions_.push_back(std::move(transaction));
  // Budget conservation (sequential composition audit): every epsilon'
  // released globally must be attributed to exactly one consumer.  The
  // tolerance scales with the running total because both sides accumulate
  // independent fp rounding.
  PRC_DCHECK(conservation_discrepancy_locked() <=
             1e-9 * (1.0 + total_epsilon_ + total_revenue_))
      << "ledger lost track of released budget: discrepancy "
      << conservation_discrepancy_locked();
  telemetry::counter("market.ledger_transactions").increment();
  telemetry::gauge("market.ledger_conservation_discrepancy")
      .set(conservation_discrepancy_locked());
  return transactions_.back().sequence;
}

std::optional<Ledger::Reservation> Ledger::try_reserve(
    const std::string& consumer_id, units::EffectiveEpsilon epsilon,
    units::EffectiveEpsilon cap) {
  PRC_CHECK(std::isfinite(epsilon.value()) && epsilon.value() >= 0.0)
      << "ledger: reserved budget must be >= 0, got " << epsilon.value();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto spent_it = epsilon_by_consumer_.find(consumer_id);
  const double spent =
      spent_it == epsilon_by_consumer_.end() ? 0.0 : spent_it->second;
  const auto held_it = reserved_by_consumer_.find(consumer_id);
  const double held =
      held_it == reserved_by_consumer_.end() ? 0.0 : held_it->second;
  if (spent + held + epsilon.value() > cap.value()) return std::nullopt;
  reserved_by_consumer_[consumer_id] = held + epsilon.value();
  return Reservation(this, consumer_id, epsilon.value());
}

bool Ledger::try_extend(Reservation& reservation,
                        units::EffectiveEpsilon delta,
                        units::EffectiveEpsilon cap) {
  PRC_CHECK(reservation.active())
      << "ledger: extending a released reservation";
  PRC_CHECK(reservation.ledger_ == this)
      << "ledger: reservation belongs to another ledger";
  PRC_CHECK(std::isfinite(delta.value()) && delta.value() >= 0.0)
      << "ledger: reservation extension must be >= 0, got " << delta.value();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto spent_it = epsilon_by_consumer_.find(reservation.consumer_id_);
  const double spent =
      spent_it == epsilon_by_consumer_.end() ? 0.0 : spent_it->second;
  const auto held_it = reserved_by_consumer_.find(reservation.consumer_id_);
  const double held =
      held_it == reserved_by_consumer_.end() ? 0.0 : held_it->second;
  if (spent + held + delta.value() > cap.value()) return false;
  reserved_by_consumer_[reservation.consumer_id_] = held + delta.value();
  reservation.epsilon_ += delta.value();
  return true;
}

std::size_t Ledger::commit(Reservation reservation, Transaction transaction) {
  PRC_CHECK(reservation.active())
      << "ledger: committing a released reservation";
  PRC_CHECK(reservation.ledger_ == this)
      << "ledger: reservation belongs to another ledger";
  PRC_CHECK(reservation.consumer_id_ == transaction.consumer_id)
      << "ledger: reservation for '" << reservation.consumer_id_
      << "' cannot commit a sale to '" << transaction.consumer_id << "'";
  // The reservation was the admission check and the mint barrier extended
  // it to the final plan; anything past fp rounding here is a release the
  // cap never admitted.
  const double reserved = reservation.epsilon_;
  const bool overrun = transaction.epsilon_amplified.value() >
                       reserved + 1e-9 * (1.0 + reserved);
  if (overrun) {
    telemetry::counter("market.ledger_reservation_overruns").increment();
  }
  PRC_DCHECK(!overrun) << "ledger: committing epsilon' "
                       << transaction.epsilon_amplified.value()
                       << " above the reserved " << reserved << " for '"
                       << transaction.consumer_id << "'";
  reservation.ledger_ = nullptr;  // consumed; no destructor-time release
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = reserved_by_consumer_.find(reservation.consumer_id_);
  if (it != reserved_by_consumer_.end()) {
    it->second -= reservation.epsilon_;
    if (it->second <= 0.0) reserved_by_consumer_.erase(it);
  }
  return record_locked(std::move(transaction));
}

std::size_t Ledger::replay(Transaction transaction) {
  std::lock_guard<std::mutex> lock(mutex_);
  PRC_CHECK(transaction.sequence >= next_sequence_)
      << "ledger replay would reuse sequence " << transaction.sequence
      << " (next is " << next_sequence_ << ")";
  next_sequence_ = transaction.sequence;
  return record_locked(std::move(transaction));
}

double Ledger::conservation_discrepancy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return conservation_discrepancy_locked();
}

double Ledger::conservation_discrepancy_locked() const {
  double epsilon_sum = 0.0;
  for (const auto& [consumer, epsilon] : epsilon_by_consumer_) {
    epsilon_sum += epsilon;
  }
  double spend_sum = 0.0;
  for (const auto& [consumer, spend] : spend_by_consumer_) {
    spend_sum += spend;
  }
  return std::abs(epsilon_sum - total_epsilon_) +
         std::abs(spend_sum - total_revenue_);
}

double Ledger::consumer_spend(const std::string& consumer_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = spend_by_consumer_.find(consumer_id);
  return it == spend_by_consumer_.end() ? 0.0 : it->second;
}

units::EffectiveEpsilon Ledger::consumer_epsilon(
    const std::string& consumer_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = epsilon_by_consumer_.find(consumer_id);
  return it == epsilon_by_consumer_.end() ? 0.0 : it->second;
}

LedgerSnapshot Ledger::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  LedgerSnapshot snap;
  snap.next_sequence = next_sequence_;
  snap.total_revenue = total_revenue_;
  snap.total_epsilon = total_epsilon_;
  snap.orphaned_epsilon = orphaned_epsilon_;
  snap.degraded_sales = degraded_sales_;
  snap.consumers.reserve(
      std::max(spend_by_consumer_.size(), epsilon_by_consumer_.size()));
  for (const auto& [consumer, spend] : spend_by_consumer_) {
    LedgerConsumerTotals totals;
    totals.consumer_id = consumer;
    totals.spend = spend;
    const auto it = epsilon_by_consumer_.find(consumer);
    totals.epsilon = it == epsilon_by_consumer_.end() ? 0.0 : it->second;
    snap.consumers.push_back(std::move(totals));
  }
  // Consumers charged budget but never money (orphan-only) appear in the
  // epsilon map alone.
  for (const auto& [consumer, epsilon] : epsilon_by_consumer_) {
    if (spend_by_consumer_.contains(consumer)) continue;
    LedgerConsumerTotals totals;
    totals.consumer_id = consumer;
    totals.epsilon = epsilon;
    snap.consumers.push_back(std::move(totals));
  }
  std::sort(snap.consumers.begin(), snap.consumers.end(),
            [](const LedgerConsumerTotals& a, const LedgerConsumerTotals& b) {
              return a.consumer_id < b.consumer_id;
            });
  return snap;
}

void Ledger::restore(const LedgerSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  PRC_CHECK(next_sequence_ == 0 && transactions_.empty() &&
            spend_by_consumer_.empty() && epsilon_by_consumer_.empty() &&
            degraded_sales_ == 0)
      << "ledger restore requires an empty ledger (recovery is a birth, "
         "not a merge)";
  next_sequence_ = snapshot.next_sequence;
  total_revenue_ = snapshot.total_revenue;
  total_epsilon_ = snapshot.total_epsilon.value();
  orphaned_epsilon_ = snapshot.orphaned_epsilon.value();
  degraded_sales_ = snapshot.degraded_sales;
  for (const auto& totals : snapshot.consumers) {
    spend_by_consumer_[totals.consumer_id] = totals.spend;
    epsilon_by_consumer_[totals.consumer_id] = totals.epsilon.value();
  }
  PRC_CHECK(conservation_discrepancy_locked() <=
            1e-9 * (1.0 + total_epsilon_ + total_revenue_))
      << "restored checkpoint violates budget conservation: discrepancy "
      << conservation_discrepancy_locked();
}

void Ledger::adopt(Ledger& other) {
  // One deadlock-free atomic acquisition: two sequential lock_guards
  // would self-deadlock on `ledger.adopt(ledger)` and invert order
  // against a concurrent `other.adopt(*this)`.
  std::scoped_lock lock(mutex_, other.mutex_);
  PRC_CHECK(next_sequence_ == 0 && transactions_.empty() &&
            spend_by_consumer_.empty() && epsilon_by_consumer_.empty() &&
            reserved_by_consumer_.empty() && degraded_sales_ == 0)
      << "ledger adopt requires an empty ledger (recovery is a birth, "
         "not a merge)";
  PRC_CHECK(other.reserved_by_consumer_.empty())
      << "ledger adopt source still holds live reservations";
  transactions_ = std::move(other.transactions_);
  next_sequence_ = other.next_sequence_;
  degraded_sales_ = other.degraded_sales_;
  total_revenue_ = other.total_revenue_;
  total_epsilon_ = other.total_epsilon_;
  orphaned_epsilon_ = other.orphaned_epsilon_;
  spend_by_consumer_ = std::move(other.spend_by_consumer_);
  epsilon_by_consumer_ = std::move(other.epsilon_by_consumer_);
}

void Ledger::absorb_orphaned(const std::string& consumer_id,
                             units::EffectiveEpsilon epsilon) {
  PRC_CHECK(std::isfinite(epsilon.value()) && epsilon.value() >= 0.0)
      << "ledger: orphaned budget must be >= 0, got " << epsilon.value();
  std::lock_guard<std::mutex> lock(mutex_);
  total_epsilon_ += epsilon.value();
  orphaned_epsilon_ += epsilon.value();
  epsilon_by_consumer_[consumer_id] += epsilon.value();
  telemetry::gauge("market.ledger_orphaned_epsilon").set(orphaned_epsilon_);
}

}  // namespace prc::market
