#include "market/ledger.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "common/telemetry.h"

namespace prc::market {

std::size_t Ledger::record(Transaction transaction) {
  PRC_CHECK(std::isfinite(transaction.price) && transaction.price >= 0.0)
      << "ledger: price must be >= 0, got " << transaction.price;
  PRC_CHECK(std::isfinite(transaction.epsilon_amplified) &&
            transaction.epsilon_amplified >= 0.0)
      << "ledger: released budget must be >= 0, got "
      << transaction.epsilon_amplified;
  PRC_CHECK(transaction.coverage >= 0.0 && transaction.coverage <= 1.0)
      << "ledger: coverage must be in [0, 1], got " << transaction.coverage;
  std::lock_guard<std::mutex> lock(mutex_);
  transaction.sequence = transactions_.size();
  if (transaction.degraded) ++degraded_sales_;
  total_revenue_ += transaction.price;
  total_epsilon_ += transaction.epsilon_amplified;
  spend_by_consumer_[transaction.consumer_id] += transaction.price;
  epsilon_by_consumer_[transaction.consumer_id] +=
      transaction.epsilon_amplified;
  transactions_.push_back(std::move(transaction));
  // Budget conservation (sequential composition audit): every epsilon'
  // released globally must be attributed to exactly one consumer.  The
  // tolerance scales with the running total because both sides accumulate
  // independent fp rounding.
  PRC_DCHECK(conservation_discrepancy_locked() <=
             1e-9 * (1.0 + total_epsilon_ + total_revenue_))
      << "ledger lost track of released budget: discrepancy "
      << conservation_discrepancy_locked();
  telemetry::counter("market.ledger_transactions").increment();
  telemetry::gauge("market.ledger_conservation_discrepancy")
      .set(conservation_discrepancy_locked());
  return transactions_.back().sequence;
}

double Ledger::conservation_discrepancy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return conservation_discrepancy_locked();
}

double Ledger::conservation_discrepancy_locked() const {
  double epsilon_sum = 0.0;
  for (const auto& [consumer, epsilon] : epsilon_by_consumer_) {
    epsilon_sum += epsilon;
  }
  double spend_sum = 0.0;
  for (const auto& [consumer, spend] : spend_by_consumer_) {
    spend_sum += spend;
  }
  return std::abs(epsilon_sum - total_epsilon_) +
         std::abs(spend_sum - total_revenue_);
}

double Ledger::consumer_spend(const std::string& consumer_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = spend_by_consumer_.find(consumer_id);
  return it == spend_by_consumer_.end() ? 0.0 : it->second;
}

units::EffectiveEpsilon Ledger::consumer_epsilon(
    const std::string& consumer_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = epsilon_by_consumer_.find(consumer_id);
  return it == epsilon_by_consumer_.end() ? 0.0 : it->second;
}

}  // namespace prc::market
