#include "market/audit_log.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

namespace prc::market {

namespace {

void append_double(std::ostringstream& out, double value) {
  // max_digits10 keeps timeline -> JSONL -> analysis lossless, matching
  // the telemetry snapshot precision.
  const auto previous = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  out.precision(previous);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_event_json(std::ostringstream& out, const AuditEvent& event) {
  out << "{\"index\": " << event.index << ", \"type\": \""
      << audit_event_type_name(event.type) << "\", \"consumer\": \""
      << json_escape(event.consumer_id) << "\", \"lower\": ";
  append_double(out, event.lower);
  out << ", \"upper\": ";
  append_double(out, event.upper);
  out << ", \"alpha\": ";
  append_double(out, event.alpha.value());
  out << ", \"delta\": ";
  append_double(out, event.delta.value());
  out << ", \"epsilon\": ";
  append_double(out, event.epsilon.value());
  out << ", \"price\": ";
  append_double(out, event.price);
  out << ", \"wal_sequence\": " << event.wal_sequence
      << ", \"ledger_sequence\": " << event.ledger_sequence
      << ", \"detail\": \"" << json_escape(event.detail) << "\"}";
}

}  // namespace

const char* audit_event_type_name(AuditEventType type) {
  switch (type) {
    case AuditEventType::kQuote:
      return "quote";
    case AuditEventType::kReserve:
      return "reserve";
    case AuditEventType::kIntent:
      return "intent";
    case AuditEventType::kMint:
      return "mint";
    case AuditEventType::kCommit:
      return "commit";
    case AuditEventType::kRefusal:
      return "refusal";
    case AuditEventType::kRecovery:
      return "recovery";
    case AuditEventType::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

std::string AuditReconciliation::to_string() const {
  std::ostringstream out;
  out << "audit reconciliation: minted ";
  append_double(out, minted_epsilon);
  out << " + recovered ";
  append_double(out, recovered_epsilon);
  out << " vs ledger ";
  append_double(out, ledger_epsilon);
  out << " (discrepancy ";
  append_double(out, discrepancy);
  out << ") -> " << (consistent ? "CONSISTENT" : "VIOLATED");
  return out.str();
}

std::uint64_t AuditLog::append_event(AuditEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  event.index = static_cast<std::uint64_t>(events_.size());
  events_.push_back(std::move(event));
  return events_.back().index;
}

std::size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<AuditEvent> AuditLog::events_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string AuditLog::to_jsonl() const {
  const auto events = events_snapshot();
  std::ostringstream out;
  for (const auto& event : events) {
    append_event_json(out, event);
    out << "\n";
  }
  return out.str();
}

AuditReconciliation AuditLog::reconcile(const Ledger& ledger) const {
  AuditReconciliation result;
  const auto events = events_snapshot();
  for (const auto& event : events) {
    if (event.type == AuditEventType::kMint) {
      result.minted_epsilon += event.epsilon.value();
    } else if (event.type == AuditEventType::kRecovery) {
      result.recovered_epsilon += event.epsilon.value();
    }
  }
  result.ledger_epsilon = ledger.total_epsilon().value();
  result.discrepancy = std::abs(
      result.ledger_epsilon -
      (result.minted_epsilon + result.recovered_epsilon));
  // The same fp-rounding tolerance the recovery conservation audit uses: the
  // terms are sums of the identical doubles, so anything beyond rounding is
  // a genuine accounting hole, not noise.
  result.consistent =
      result.discrepancy <=
      1e-9 * (1.0 + result.ledger_epsilon + result.minted_epsilon +
              result.recovered_epsilon);
  return result;
}

void append_recovery_events(AuditLog& log,
                            const wal::RecoveryResult& recovery) {
  {
    AuditEvent base;
    base.type = AuditEventType::kCheckpoint;
    base.epsilon = recovery.base.total_epsilon;
    base.detail = "recovery base: last durable checkpoint";
    log.append_event(std::move(base));
  }
  double recovered_total = recovery.base.total_epsilon.value();
  for (const auto& commit : recovery.commits) {
    AuditEvent event;
    event.type = AuditEventType::kCommit;
    event.consumer_id = commit.transaction.consumer_id;
    event.lower = commit.transaction.range.lower;
    event.upper = commit.transaction.range.upper;
    event.alpha = commit.transaction.spec.alpha;
    event.delta = commit.transaction.spec.delta;
    event.epsilon = commit.transaction.epsilon_amplified;
    event.price = commit.transaction.price;
    event.wal_sequence = commit.wal_sequence;
    event.ledger_sequence = commit.transaction.sequence;
    event.detail = "replayed from wal";
    recovered_total += commit.transaction.epsilon_amplified.value();
    log.append_event(std::move(event));
  }
  for (const auto& orphan : recovery.orphans) {
    AuditEvent event;
    event.type = AuditEventType::kIntent;
    event.consumer_id = orphan.consumer_id;
    event.lower = orphan.range.lower;
    event.upper = orphan.range.upper;
    event.alpha = orphan.spec.alpha;
    event.delta = orphan.spec.delta;
    event.epsilon = orphan.epsilon_amplified;
    event.wal_sequence = orphan.wal_sequence;
    event.detail = "orphaned intent (no commit): charged as spent";
    recovered_total += orphan.epsilon_amplified.value();
    log.append_event(std::move(event));
  }
  {
    AuditEvent summary;
    summary.type = AuditEventType::kRecovery;
    summary.epsilon = recovered_total;
    std::ostringstream detail;
    detail << "recovered " << recovery.stats.committed_sales
           << " committed sale(s), " << recovery.stats.orphaned_intents
           << " orphaned intent(s) (orphaned epsilon ";
    append_double(detail, recovery.stats.orphaned_epsilon);
    detail << "), " << recovery.stats.truncated_bytes
           << " truncated byte(s)";
    summary.detail = detail.str();
    log.append_event(std::move(summary));
  }
}

}  // namespace prc::market
