// Write-ahead log for broker state: the durability half of the ledger.
//
// The ledger IS the privacy guarantee — the market stays arbitrage-free
// only while every released epsilon' is accounted under sequential
// composition — so broker persistence follows a spend-ahead discipline:
//
//   1. an INTENT record (consumer, contract, the exact epsilon' the final
//      plan will mint) is flushed to disk BEFORE LaplaceMechanism::perturb
//      draws any noise,
//   2. a COMMIT record is appended after Ledger::record() succeeds,
//   3. periodic CHECKPOINT records snapshot the ledger aggregates so
//      compaction can drop replayed history.
//
// Recovery replays checkpoint + commits and then charges every intent with
// no matching commit (an "orphan") as spent budget.  A crash at ANY point
// therefore over-counts released epsilon or counts it exactly — never
// under-counts — which is the only failure direction the paper's pricing
// model tolerates.  The guarantee holds within the writer's durability
// domain: SyncMode::kProcessDurable covers process death, kMediaDurable
// extends it to power/kernel loss (compaction always fsyncs around its
// rename regardless of mode).
//
// Wire format (little-endian, one record after another):
//
//   offset  size  field
//   0       1     magic 0x4C
//   1       1     format version (kFormatVersion)
//   2       1     record type (RecordType)
//   3       1     flags (reserved, 0)
//   4       4     payload length
//   8       8     wal sequence number
//   16      4     CRC32 over bytes [0, 16) + payload
//   20      n     payload
//
// Readers stop at the first torn or corrupt record (bad magic/version,
// CRC mismatch, short payload): everything before it is trusted,
// everything after is reported as truncated — the standard WAL contract
// for a crash mid-append.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/units.h"
#include "market/ledger.h"
#include "query/range_query.h"

namespace prc::market::wal {

inline constexpr std::uint8_t kMagic = 0x4C;
inline constexpr std::uint8_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderSize = 20;

enum class RecordType : std::uint8_t {
  kIntent = 1,
  kCommit = 2,
  kCheckpoint = 3,
};

/// Strict decode failure (bad magic, unknown version, CRC mismatch,
/// truncated payload).  read_wal() converts the first one into clean tail
/// truncation; the record-level codec surfaces it for tests.
class FormatError : public std::runtime_error {
 public:
  explicit FormatError(const std::string& what) : std::runtime_error(what) {}
};

/// The durable promise flushed before a mint.  Its wal_sequence doubles as
/// the intent id a commit record later resolves.
struct IntentRecord {
  std::uint64_t wal_sequence = 0;
  std::string consumer_id;
  query::RangeQuery range;
  query::AccuracySpec spec;
  /// The exact epsilon' of the final perturbation plan (captured by the
  /// mint barrier, not a pre-quote projection — the intent must never
  /// promise less than what the mechanism releases).
  units::EffectiveEpsilon epsilon_amplified = 0.0;
};

/// The durable receipt appended after the ledger accepted the sale.
struct CommitRecord {
  std::uint64_t wal_sequence = 0;
  /// wal_sequence of the intent this commit resolves.
  std::uint64_t intent_sequence = 0;
  Transaction transaction;
};

// Record-level codec, exposed so format tests can round-trip and corrupt
// records without a log on disk.
std::vector<std::uint8_t> encode_intent(const IntentRecord& record);
std::vector<std::uint8_t> encode_commit(const CommitRecord& record);
std::vector<std::uint8_t> encode_checkpoint(const LedgerSnapshot& snapshot,
                                            std::uint64_t wal_sequence);

struct DecodedRecord {
  RecordType type = RecordType::kIntent;
  std::uint64_t wal_sequence = 0;
  std::size_t encoded_size = 0;
  IntentRecord intent;        ///< valid when type == kIntent
  CommitRecord commit;        ///< valid when type == kCommit
  LedgerSnapshot checkpoint;  ///< valid when type == kCheckpoint
};

/// Decodes the record starting at `bytes[offset]`; throws FormatError when
/// the bytes are not a complete, well-formed record.
DecodedRecord decode_record(const std::vector<std::uint8_t>& bytes,
                            std::size_t offset);

struct RecoveryStats {
  std::uint64_t records_read = 0;
  std::uint64_t checkpoints_seen = 0;
  std::uint64_t committed_sales = 0;
  std::uint64_t orphaned_intents = 0;
  double orphaned_epsilon = 0.0;
  std::uint64_t valid_bytes = 0;
  std::uint64_t truncated_bytes = 0;
};

/// What a log folds down to: the last durable checkpoint, the commits that
/// post-date it (sorted by transaction sequence), and the orphans.
struct RecoveryResult {
  LedgerSnapshot base;
  std::vector<CommitRecord> commits;
  std::vector<IntentRecord> orphans;
  std::uint64_t next_wal_sequence = 0;
  RecoveryStats stats;
};

/// Parses the log at `path` (a missing file is an empty log), stopping
/// cleanly at the first torn or corrupt record.  Pure read — applies
/// nothing.
RecoveryResult read_wal(const std::string& path);

/// Folds a recovery into an EMPTY ledger: restore the checkpoint, replay
/// the commits (preserving their recorded sequence numbers — a gap means
/// the missing sale's intent is among the orphans), then charge every
/// orphan as spent budget.  The spend-ahead discipline makes this
/// over-count-only: recovered total_epsilon() >= everything perturb()
/// actually released before the crash.
void apply_recovery(Ledger& ledger, const RecoveryResult& recovery);

/// How durable each append is once the call returns.
enum class SyncMode : std::uint8_t {
  /// write(2) hands the whole record to the kernel, so it survives
  /// process death — the crash class the chaos harness sweeps.  It does
  /// NOT survive power/kernel loss: the newest appends may evaporate
  /// with the page cache, and a lost *intent* whose answer already left
  /// the process is exactly the under-count the design forbids.  Use
  /// kMediaDurable wherever that failure domain matters.
  kProcessDurable,
  /// fsync(2) after every append: records survive power/kernel loss at
  /// the cost of one disk barrier per record.
  kMediaDurable,
};

/// Append-only writer.  Every append encodes and write(2)s under one
/// lock, so the bytes the kernel holds after any append are a whole
/// record — the truncate-at-corruption reader handles the remaining
/// torn-write window (a crash inside the kernel/disk stack).
class WriteAheadLog {
 public:
  ~WriteAheadLog();

  /// Opens `path` for appending, creating it when absent.
  /// `next_sequence` continues the numbering of whatever the file already
  /// holds (pass RecoveryResult::next_wal_sequence after a recovery).
  static std::unique_ptr<WriteAheadLog> open(
      const std::string& path, std::uint64_t next_sequence = 0,
      SyncMode sync_mode = SyncMode::kProcessDurable);

  /// Atomically replaces `path` with a compacted log holding only a
  /// checkpoint of `snapshot` (temp file + fsync + rename + directory
  /// fsync — the rename must never become durable before the checkpoint's
  /// data blocks, whatever `sync_mode` says, because a compacted log with
  /// a torn checkpoint is an empty log: a recovery that UNDER-counts
  /// released budget), then reopens for appending.  Callers must be
  /// quiescent: an in-flight intent would be silently dropped from the
  /// log.
  static std::unique_ptr<WriteAheadLog> compact(
      const std::string& path, const LedgerSnapshot& snapshot,
      std::uint64_t next_sequence,
      SyncMode sync_mode = SyncMode::kProcessDurable);

  /// Flushes the intent and returns its wal sequence (the intent id the
  /// matching commit must carry).
  std::uint64_t append_intent(IntentRecord record);
  void append_commit(CommitRecord record);
  void append_checkpoint(const LedgerSnapshot& snapshot);

  const std::string& path() const noexcept { return path_; }
  std::uint64_t records_appended() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_appended_;
  }
  std::uint64_t bytes_appended() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_appended_;
  }

 private:
  WriteAheadLog(std::string path, std::uint64_t next_sequence,
                SyncMode sync_mode);
  void append_bytes_locked(const std::vector<std::uint8_t>& bytes)
      PRC_REQUIRES(mutex_);

  mutable std::mutex mutex_;
  std::string path_;
  SyncMode sync_mode_;
  int fd_ PRC_GUARDED_BY(mutex_) = -1;
  std::uint64_t next_sequence_ PRC_GUARDED_BY(mutex_) = 0;
  std::uint64_t records_appended_ PRC_GUARDED_BY(mutex_) = 0;
  std::uint64_t bytes_appended_ PRC_GUARDED_BY(mutex_) = 0;
};

}  // namespace prc::market::wal
