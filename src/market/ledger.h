// Transaction ledger: revenue accounting plus per-consumer privacy audit.
//
// Each sale releases one epsilon'-DP answer; sequential composition means a
// consumer's cumulative leakage is the sum of the amplified budgets of the
// answers they bought.  The ledger tracks both money and budget.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "common/units.h"
#include "query/range_query.h"

namespace prc::market {

struct Transaction {
  std::size_t sequence = 0;
  std::string consumer_id;
  query::RangeQuery range;
  query::AccuracySpec spec;
  double price = 0.0;
  units::EffectiveEpsilon epsilon_amplified = 0.0;
  /// Fraction of station-known data collected at the round target when the
  /// answer was produced (1 for a fully healthy round).
  double coverage = 1.0;
  /// True when the sale was re-quoted to a weaker contract than requested
  /// because degraded collection could not support the original one.
  bool degraded = false;
};

/// Thread-safety: record() and the scalar accessors take the internal
/// mutex (parallel brokers will hammer both).  transactions() hands out a
/// reference to the underlying log and therefore requires the ledger to be
/// quiescent — callers that need a stable view while sales continue should
/// copy under their own arrangement.
class Ledger {
 public:
  /// Appends a transaction; assigns and returns its sequence number.
  /// PRC_CHECKs the money/budget invariants (non-negative price and
  /// epsilon', coverage in [0, 1]) and, in debug builds, re-audits budget
  /// conservation after the append.
  std::size_t record(Transaction transaction);

  std::size_t transaction_count() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return transactions_.size();
  }
  const std::vector<Transaction>& transactions() const noexcept {
    // Hands out a reference by documented contract (see the class
    // comment): callers may only use it while the ledger is quiescent, and
    // locking here could not protect the returned reference anyway.
    return transactions_;  // lint:allow lock — quiescence contract above
  }

  double total_revenue() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_revenue_;
  }

  /// Total amplified budget released across ALL consumers — the dataset's
  /// cumulative exposure under sequential composition (adversaries may
  /// collude, so the broker audits the global sum, not just per-consumer
  /// totals).
  units::EffectiveEpsilon total_epsilon() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_epsilon_;
  }

  /// Sum of prices paid by one consumer (0 for unknown ids).
  double consumer_spend(const std::string& consumer_id) const;

  /// Cumulative privacy budget released to one consumer (sequential
  /// composition of the amplified epsilons; 0 for unknown ids).
  units::EffectiveEpsilon consumer_epsilon(const std::string& consumer_id) const;

  /// Number of recorded sales that were re-quoted due to degraded coverage.
  std::size_t degraded_sales() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return degraded_sales_;
  }

  /// Budget conservation audit: the global released budget must equal the
  /// sum of the per-consumer composition totals (a mismatch means some
  /// released epsilon' escaped the per-consumer caps — the double-spend the
  /// paper's market model forbids).  Returns the absolute discrepancy;
  /// record() PRC_DCHECKs it stays within fp rounding of zero.
  double conservation_discrepancy() const;

 private:
  double conservation_discrepancy_locked() const PRC_REQUIRES(mutex_);

  mutable std::mutex mutex_;
  std::vector<Transaction> transactions_ PRC_GUARDED_BY(mutex_);
  std::size_t degraded_sales_ PRC_GUARDED_BY(mutex_) = 0;
  double total_revenue_ PRC_GUARDED_BY(mutex_) = 0.0;
  double total_epsilon_ PRC_GUARDED_BY(mutex_) = 0.0;
  std::unordered_map<std::string, double> spend_by_consumer_
      PRC_GUARDED_BY(mutex_);
  std::unordered_map<std::string, double> epsilon_by_consumer_
      PRC_GUARDED_BY(mutex_);
};

}  // namespace prc::market
