// Transaction ledger: revenue accounting plus per-consumer privacy audit.
//
// Each sale releases one epsilon'-DP answer; sequential composition means a
// consumer's cumulative leakage is the sum of the amplified budgets of the
// answers they bought.  The ledger tracks both money and budget, and since
// the accounting IS the privacy guarantee, it supports durable snapshots
// (checkpoints written to the WAL) and restore/replay for crash recovery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "common/units.h"
#include "query/range_query.h"

namespace prc::market {

struct Transaction {
  std::size_t sequence = 0;
  std::string consumer_id;
  query::RangeQuery range;
  query::AccuracySpec spec;
  double price = 0.0;
  units::EffectiveEpsilon epsilon_amplified = 0.0;
  /// Fraction of station-known data collected at the round target when the
  /// answer was produced (1 for a fully healthy round).
  double coverage = 1.0;
  /// True when the sale was re-quoted to a weaker contract than requested
  /// because degraded collection could not support the original one.
  bool degraded = false;
};

/// Per-consumer attribution carried by a snapshot (sorted by id so a
/// snapshot's serialized bytes are deterministic).
struct LedgerConsumerTotals {
  std::string consumer_id;
  double spend = 0.0;
  units::EffectiveEpsilon epsilon = 0.0;
};

/// The aggregate state a WAL checkpoint persists and recovery restores: the
/// conserved quantities plus per-consumer attribution.  The transaction
/// list itself is NOT part of a snapshot — compaction exists precisely to
/// drop replayed history once its aggregates are durable.  `total_epsilon`
/// already includes `orphaned_epsilon` (orphans are spent budget; the
/// latter is kept separately only so audits can report how much was
/// charged to crashes rather than completed sales).
struct LedgerSnapshot {
  std::uint64_t next_sequence = 0;
  double total_revenue = 0.0;
  units::EffectiveEpsilon total_epsilon = 0.0;
  units::EffectiveEpsilon orphaned_epsilon = 0.0;
  std::uint64_t degraded_sales = 0;
  std::vector<LedgerConsumerTotals> consumers;
};

/// Thread-safety: every member serializes on the internal mutex (parallel
/// brokers hammer record() and the accessors concurrently).
/// transactions_snapshot() copies under the lock, so readers never alias
/// live mutable state.
class Ledger {
 public:
  /// A held slice of a consumer's budget cap: try_reserve() checks
  /// spent + reserved + epsilon against the cap and holds epsilon until the
  /// reservation is committed (became a transaction) or destroyed (the sale
  /// failed or crashed — the hold evaporates with the stack).  This closes
  /// the check/record race: two concurrent sales cannot both pass the cap
  /// check on the strength of the same unspent headroom.
  class Reservation {
   public:
    Reservation() = default;
    Reservation(Reservation&& other) noexcept { *this = std::move(other); }
    Reservation& operator=(Reservation&& other) noexcept {
      if (this != &other) {
        release();
        ledger_ = other.ledger_;
        consumer_id_ = std::move(other.consumer_id_);
        epsilon_ = other.epsilon_;
        other.ledger_ = nullptr;
      }
      return *this;
    }
    Reservation(const Reservation&) = delete;
    Reservation& operator=(const Reservation&) = delete;
    ~Reservation() { release(); }

    bool active() const noexcept { return ledger_ != nullptr; }
    units::EffectiveEpsilon epsilon() const noexcept { return epsilon_; }

   private:
    friend class Ledger;
    Reservation(Ledger* ledger, std::string consumer_id, double epsilon)
        : ledger_(ledger),
          consumer_id_(std::move(consumer_id)),
          epsilon_(epsilon) {}
    void release() noexcept;

    Ledger* ledger_ = nullptr;
    std::string consumer_id_;
    double epsilon_ = 0.0;
  };

  /// Appends a transaction; assigns and returns its sequence number.
  /// PRC_CHECKs the money/budget invariants (non-negative price and
  /// epsilon', coverage in [0, 1]) and, in debug builds, re-audits budget
  /// conservation after the append.
  std::size_t record(Transaction transaction);

  /// Atomically checks `spent + reserved + epsilon <= cap` for the consumer
  /// and, on success, holds `epsilon` until the returned handle is
  /// committed or destroyed.  nullopt means the sale must be refused.
  std::optional<Reservation> try_reserve(const std::string& consumer_id,
                                         units::EffectiveEpsilon epsilon,
                                         units::EffectiveEpsilon cap);

  /// Atomically grows an active reservation by `delta` when the consumer's
  /// spent + held + delta still fits under `cap`; returns false (leaving
  /// the reservation unchanged) when it would not.  The mint barrier uses
  /// this to re-admit a sale at the FINAL plan's epsilon' before any noise
  /// is drawn, whenever the minted plan exceeds the projection the
  /// reservation was sized from (degraded re-quotes, coverage drift
  /// between quote and mint).
  bool try_extend(Reservation& reservation, units::EffectiveEpsilon delta,
                  units::EffectiveEpsilon cap);

  /// Converts a reservation into a recorded transaction in one critical
  /// section (the reservation is consumed either way).  The transaction's
  /// epsilon' may differ from the reserved amount only within fp rounding
  /// — the mint barrier extends the reservation to the final plan before
  /// the draw — so commit re-checks it: an overrun beyond rounding means
  /// a release slipped past the cap unadmitted (fatal in debug builds,
  /// counted by `market.ledger_reservation_overruns` always).
  std::size_t commit(Reservation reservation, Transaction transaction);

  std::size_t transaction_count() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return transactions_.size();
  }

  /// Copy of the transaction log taken under the lock — safe to iterate
  /// while sales continue on other threads.
  std::vector<Transaction> transactions_snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return transactions_;
  }

  double total_revenue() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_revenue_;
  }

  /// Total amplified budget released across ALL consumers — the dataset's
  /// cumulative exposure under sequential composition (adversaries may
  /// collude, so the broker audits the global sum, not just per-consumer
  /// totals).  After recovery this includes orphaned intents: budget that
  /// MAY have been released before a crash is counted as released.
  units::EffectiveEpsilon total_epsilon() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_epsilon_;
  }

  /// Budget charged to crash orphans (intents with no commit) rather than
  /// completed sales.  Included in total_epsilon().
  units::EffectiveEpsilon orphaned_epsilon() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return orphaned_epsilon_;
  }

  /// Sum of prices paid by one consumer (0 for unknown ids).
  double consumer_spend(const std::string& consumer_id) const;

  /// Cumulative privacy budget released to one consumer (sequential
  /// composition of the amplified epsilons; 0 for unknown ids).
  units::EffectiveEpsilon consumer_epsilon(const std::string& consumer_id) const;

  /// Number of recorded sales that were re-quoted due to degraded coverage.
  std::size_t degraded_sales() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return degraded_sales_;
  }

  /// Budget conservation audit: the global released budget must equal the
  /// sum of the per-consumer composition totals (a mismatch means some
  /// released epsilon' escaped the per-consumer caps — the double-spend the
  /// paper's market model forbids).  Returns the absolute discrepancy;
  /// record() PRC_DCHECKs it stays within fp rounding of zero.
  double conservation_discrepancy() const;

  /// Durable view of the aggregates (what a WAL checkpoint writes).
  LedgerSnapshot snapshot() const;

  /// Recovery: seeds an EMPTY ledger with a checkpoint's aggregates.
  /// PRC_CHECKs the ledger has recorded nothing yet — restore is a birth
  /// certificate, not a merge.
  void restore(const LedgerSnapshot& snapshot);

  /// Recovery: re-records a WAL-replayed transaction under its ORIGINAL
  /// sequence number, fast-forwarding past burned slots (a gap in the
  /// replayed sequence belongs to a sale whose commit never reached disk —
  /// its intent is charged via absorb_orphaned()).  PRC_CHECKs sequence
  /// numbers never move backwards.
  std::size_t replay(Transaction transaction);

  /// Recovery: charges an orphaned intent (budget that may have been minted
  /// before a crash, with no committed transaction) as spent.  Counts
  /// toward the consumer's cap and the global exposure but adds no revenue
  /// — the privacy-safe direction of the spend-ahead discipline.
  void absorb_orphaned(const std::string& consumer_id,
                       units::EffectiveEpsilon epsilon);

  /// Recovery: takes over the complete state of `other` (a freshly
  /// recovered, fully audited scratch ledger) into this EMPTY ledger.
  /// Lets DataBroker fold a WAL into a scratch ledger first and swap it in
  /// only after every audit passes — a failed recovery must leave the live
  /// ledger exactly as it was, not half-restored.  PRC_CHECKs that this
  /// ledger is empty and that `other` holds no live reservations.
  void adopt(Ledger& other);

 private:
  double conservation_discrepancy_locked() const PRC_REQUIRES(mutex_);
  std::size_t record_locked(Transaction transaction) PRC_REQUIRES(mutex_);

  mutable std::mutex mutex_;
  std::vector<Transaction> transactions_ PRC_GUARDED_BY(mutex_);
  std::uint64_t next_sequence_ PRC_GUARDED_BY(mutex_) = 0;
  std::size_t degraded_sales_ PRC_GUARDED_BY(mutex_) = 0;
  double total_revenue_ PRC_GUARDED_BY(mutex_) = 0.0;
  double total_epsilon_ PRC_GUARDED_BY(mutex_) = 0.0;
  double orphaned_epsilon_ PRC_GUARDED_BY(mutex_) = 0.0;
  std::unordered_map<std::string, double> spend_by_consumer_
      PRC_GUARDED_BY(mutex_);
  std::unordered_map<std::string, double> epsilon_by_consumer_
      PRC_GUARDED_BY(mutex_);
  std::unordered_map<std::string, double> reserved_by_consumer_
      PRC_GUARDED_BY(mutex_);
};

}  // namespace prc::market
