// The data broker of the paper's system model (Fig. 1).
//
// Sits between the IoT base station and data consumers: serves Lambda(alpha,
// delta) requests by producing a private answer through PrivateRangeCounter,
// charges the configured pricing function, and logs every sale to the
// ledger.  Consumers only ever see the noisy value, the contract they asked
// for, and the price; the internal plan and pre-noise estimate stay inside.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "dp/private_counting.h"
#include "market/audit_log.h"
#include "market/ledger.h"
#include "market/wal.h"
#include "pricing/pricing.h"
#include "pricing/quote_cache.h"
#include "query/range_query.h"

namespace prc::market {

/// Thrown by DataBroker::sell when a purchase would push the consumer's
/// cumulative amplified budget past the broker's cap.  Sequential
/// composition means every answer sold leaks additively; a benefit-concerned
/// broker caps the total it is willing to leak per consumer.
class BudgetExceededError : public std::runtime_error {
 public:
  BudgetExceededError(const std::string& consumer, units::EffectiveEpsilon spent,
                      units::EffectiveEpsilon cap)
      : std::runtime_error("privacy budget exceeded for '" + consumer +
                           "': spent " + std::to_string(spent.value()) +
                           " of " + std::to_string(cap.value())),
        spent_(spent),
        cap_(cap) {}

  units::EffectiveEpsilon spent() const noexcept { return spent_; }
  units::EffectiveEpsilon cap() const noexcept { return cap_; }

 private:
  units::EffectiveEpsilon spent_;
  units::EffectiveEpsilon cap_;
};

/// What the broker does when degraded collection cannot support the
/// requested contract.
enum class DegradedSalePolicy {
  /// Refuse the sale outright (no budget spent, nothing recorded).
  kRefuse,
  /// Re-quote: widen the contract to the strongest one the cache actually
  /// supports, sell that instead, and mark the transaction degraded.
  kReprice,
};

/// Thrown by DataBroker::sell when the sample cache's coverage cannot
/// support the requested contract and the broker's policy is to refuse (or
/// repricing is impossible because some node never reported at all).  Like
/// BudgetExceededError, the refusal happens BEFORE any noisy answer is
/// produced, so no budget is spent.
class InsufficientCoverageError : public std::runtime_error {
 public:
  InsufficientCoverageError(const std::string& what,
                            iot::CoverageSummary coverage)
      : std::runtime_error(what), coverage_(coverage) {}

  const iot::CoverageSummary& coverage() const noexcept { return coverage_; }

 private:
  iot::CoverageSummary coverage_;
};

struct BrokerConfig {
  /// Maximum cumulative epsilon' released to any single consumer.
  units::EffectiveEpsilon per_consumer_epsilon_cap =
      std::numeric_limits<double>::infinity();
  /// What to do when coverage cannot support the requested contract.
  DegradedSalePolicy degraded_policy = DegradedSalePolicy::kRefuse;
  /// Hard floor on acceptable coverage: below it the broker refuses even
  /// under kReprice (an estimate blind to a large data fraction is not
  /// worth selling at any accuracy).  0 disables the floor.
  double min_coverage = 0.0;
  /// Commits between automatic WAL checkpoints (0 = never checkpoint).
  /// Only meaningful once a WAL is attached.
  std::size_t wal_checkpoint_interval = 64;
  /// When true, every WAL append fsyncs to media, so the spend-ahead
  /// guarantee survives power/kernel loss, not just process death (see
  /// wal::SyncMode).  Compaction fsyncs around its rename either way.
  bool wal_fsync = false;
  /// Entries held by the broker's memoized quote cache (prices are pure in
  /// the contract, so quote() and receipt pricing re-use earlier
  /// evaluations bit-identically).  0 disables memoization.
  std::size_t quote_cache_capacity = 1024;
};

/// What a consumer receives for their money.
struct PurchaseReceipt {
  double value = 0.0;  ///< the noisy (alpha, delta)-range counting
  double price = 0.0;
  query::RangeQuery range;
  query::AccuracySpec spec;       ///< the contract actually delivered
  query::AccuracySpec requested;  ///< the contract originally asked for
  std::size_t transaction_id = 0;
  /// True when spec is weaker than requested (a kReprice degraded sale).
  bool degraded = false;
  /// Coverage of the cache when the answer was produced.
  double coverage = 1.0;
};

class DataBroker {
 public:
  /// `counter` must outlive the broker.  The broker takes ownership of the
  /// pricing function.
  DataBroker(dp::PrivateRangeCounter& counter,
             std::unique_ptr<pricing::PricingFunction> pricing,
             BrokerConfig config = {});

  /// Quote without buying.
  double quote(const query::AccuracySpec& spec) const;

  /// Serves a request: computes the private answer, charges, records.
  /// Throws BudgetExceededError when the sale would push the consumer past
  /// the per-consumer epsilon cap, and InsufficientCoverageError when
  /// degraded collection cannot support the contract and the policy forbids
  /// (or coverage is too low for) repricing.  In both refusal cases the
  /// answer is NOT computed, so no budget is spent.
  PurchaseReceipt sell(const std::string& consumer_id,
                       const query::RangeQuery& range,
                       const query::AccuracySpec& spec);

  /// Remaining budget the broker is still willing to release to a consumer.
  units::EffectiveEpsilon remaining_budget(const std::string& consumer_id) const;

  /// Starts write-ahead logging to `path`, which must not hold prior state
  /// (use recover_and_attach_wal for that).  Seeds the log with a
  /// checkpoint of the current aggregates; every subsequent sale flushes a
  /// durable intent before its answer is minted and a commit after the
  /// ledger append.  Call before sales begin, not concurrently with them.
  void attach_wal(const std::string& path);

  /// Crash recovery: replays the WAL at `path` — checkpoint, then
  /// committed sales, then every orphaned intent charged as spent — into a
  /// scratch ledger, re-audits budget conservation, re-validates the
  /// Theorem 4.2 menu against `model`, and only then adopts the recovered
  /// state, compacts the log and resumes accepting sales.  The spend-ahead
  /// discipline guarantees the recovered total_epsilon() never
  /// under-counts what was released before the crash.  Throws when the
  /// replay, audit or menu validation fails, leaving the broker exactly as
  /// it was (empty ledger, no WAL) so recovery can be retried once the
  /// cause is fixed.
  wal::RecoveryStats recover_and_attach_wal(const std::string& path,
                                            const pricing::VarianceModel& model);

  /// The attached log, or nullptr when the broker runs without durability.
  const wal::WriteAheadLog* write_ahead_log() const noexcept {
    return wal_.get();
  }

  const Ledger& ledger() const noexcept { return ledger_; }
  const pricing::PricingFunction& pricing() const noexcept {
    return *pricing_;
  }

  /// The memoized quote layer every broker price evaluation goes through
  /// (exposed for cache-behavior tests).
  const pricing::QuoteCache& quote_cache() const noexcept {
    return quote_cache_;
  }

  /// The broker's privacy-budget audit timeline (always on): quote,
  /// reserve, intent, mint, commit, refusal, recovery and checkpoint
  /// events, appended at the exact code points the guarantees attach to.
  /// audit_log().reconcile(ledger()) proves Sigma(mint epsilon') +
  /// Sigma(recovery epsilon') == ledger().total_epsilon().
  const AuditLog& audit_log() const noexcept { return audit_; }

 private:
  /// The single market-layer gateway to PrivateRangeCounter::answer (the
  /// no-unbarriered-mint lint rule enforces this): wraps the call with the
  /// mint barrier that re-admits the sale at the FINAL plan's epsilon'
  /// (extending `reservation`, or refusing before any noise is drawn) and
  /// flushes the WAL intent record carrying that epsilon', reporting the
  /// intent's wal sequence through `intent_sequence` for the matching
  /// commit record.
  dp::PrivateAnswer mint_answer_with_intent(const std::string& consumer_id,
                                            const query::RangeQuery& range,
                                            const query::AccuracySpec& spec,
                                            Ledger::Reservation& reservation,
                                            std::uint64_t& intent_sequence);
  void maybe_checkpoint();
  wal::SyncMode wal_sync_mode() const noexcept {
    return config_.wal_fsync ? wal::SyncMode::kMediaDurable
                             : wal::SyncMode::kProcessDurable;
  }

  /// Appends a kRefusal event and bumps the matching refusal counter —
  /// every refusal exit of sell() goes through here so the audit timeline
  /// and the metrics can never disagree about why a sale died.
  void record_refusal(const char* counter_name,
                      const std::string& consumer_id,
                      const query::RangeQuery& range,
                      const query::AccuracySpec& spec,
                      units::EffectiveEpsilon attempted, std::string reason);

  dp::PrivateRangeCounter& counter_;
  std::unique_ptr<pricing::PricingFunction> pricing_;
  BrokerConfig config_;
  /// Memoizes *pricing_ (declared after it; same lifetime).  Shared by
  /// concurrent consumers — QuoteCache carries its own mutex.
  pricing::QuoteCache quote_cache_;
  Ledger ledger_;
  std::unique_ptr<wal::WriteAheadLog> wal_;
  /// Checkpoint cadence counter: an over- or under-count by one merely
  /// shifts WHEN the next checkpoint lands, never whether a commit is
  /// durable, so a relaxed cell is enough.
  std::atomic<std::size_t> commits_since_checkpoint_{0};  // lint:allow atomic
  /// mutable: quote() is const but still leaves a timeline entry.
  mutable AuditLog audit_;
};

}  // namespace prc::market
