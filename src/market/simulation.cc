#include "market/simulation.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"

namespace prc::market {

MarketSimulation::MarketSimulation(DataBroker& broker,
                                   pricing::VarianceModel model,
                                   std::vector<query::RangeQuery> query_pool,
                                   SimulationConfig config)
    : broker_(broker),
      model_(model),
      query_pool_(std::move(query_pool)),
      config_(config) {
  if (query_pool_.empty()) {
    throw std::invalid_argument("simulation needs a non-empty query pool");
  }
  if (config_.rounds == 0) {
    throw std::invalid_argument("simulation needs >= 1 round");
  }
  if (!(config_.alpha_min > 0.0) || config_.alpha_min > config_.alpha_max ||
      config_.alpha_max > 1.0 || !(config_.delta_min > 0.0) ||
      config_.delta_min > config_.delta_max || config_.delta_max >= 1.0) {
    throw std::invalid_argument("simulation contract box invalid");
  }
}

query::AccuracySpec MarketSimulation::draw_contract(Rng& rng) const {
  return query::AccuracySpec{
      rng.uniform(config_.alpha_min, config_.alpha_max),
      rng.uniform(config_.delta_min, config_.delta_max)};
}

SimulationReport MarketSimulation::run() {
  Rng rng(config_.seed);
  SimulationReport report;
  report.rounds = config_.rounds;

  std::vector<HonestConsumer> honest;
  honest.reserve(config_.honest_consumers);
  for (std::size_t i = 0; i < config_.honest_consumers; ++i) {
    honest.emplace_back("honest-" + std::to_string(i), broker_);
  }
  std::vector<ArbitrageAttacker> attackers;
  attackers.reserve(config_.attackers);
  for (std::size_t i = 0; i < config_.attackers; ++i) {
    attackers.emplace_back("attacker-" + std::to_string(i), broker_,
                           pricing::AttackSimulator(model_));
  }

  const auto draw_range = [&]() -> const query::RangeQuery& {
    return query_pool_[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(query_pool_.size()) - 1))];
  };

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    for (auto& consumer : honest) {
      if (!rng.bernoulli(config_.arrival_probability)) continue;
      const auto spec = draw_contract(rng);
      try {
        const auto outcome = consumer.acquire(draw_range(), spec);
        ++report.honest_purchases;
        report.honest_spend += outcome.total_cost;
      } catch (const BudgetExceededError&) {
        ++report.refused_sales;
      }
    }
    for (auto& attacker : attackers) {
      if (!rng.bernoulli(config_.arrival_probability)) continue;
      const auto spec = draw_contract(rng);
      try {
        const auto outcome = attacker.acquire(draw_range(), spec);
        ++report.attacker_targets;
        report.attacker_queries += outcome.queries_issued;
        report.attacker_spend += outcome.total_cost;
        report.attacker_honest_value += broker_.quote(spec);
        if (attacker.last_plan().profitable) ++report.profitable_attacks;
      } catch (const BudgetExceededError&) {
        ++report.refused_sales;
      }
    }
  }

  report.revenue = broker_.ledger().total_revenue();
  for (const auto& consumer : honest) {
    report.max_honest_epsilon =
        std::max(report.max_honest_epsilon,
                 broker_.ledger().consumer_epsilon(consumer.id()));
  }
  for (const auto& attacker : attackers) {
    report.max_attacker_epsilon =
        std::max(report.max_attacker_epsilon,
                 broker_.ledger().consumer_epsilon(attacker.id()));
  }
  PRC_LOG_INFO << "market simulation: " << report.honest_purchases
               << " honest purchases, " << report.attacker_targets
               << " attacker acquisitions, revenue " << report.revenue;
  return report;
}

}  // namespace prc::market
