#include "market/simulation.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "common/parallel.h"

namespace prc::market {
namespace {

/// One consumer arrival, fully determined by the pre-draw phase.
struct Ticket {
  bool attacker = false;
  std::size_t consumer = 0;  // index into the honest/attacker population
  query::AccuracySpec spec;
  const query::RangeQuery* range = nullptr;
  /// Filled by the parallel deliberation phase for attacker tickets.
  pricing::AttackResult plan;
};

/// What one committed ticket contributes to the report (merged serially in
/// arrival order, so tallies are identical in both commit modes' shapes).
struct TicketOutcome {
  bool refused = false;
  StrategyOutcome outcome;
  double honest_value = 0.0;  // what the attacker WOULD have paid
  bool profitable = false;
};

}  // namespace

MarketSimulation::MarketSimulation(DataBroker& broker,
                                   pricing::VarianceModel model,
                                   std::vector<query::RangeQuery> query_pool,
                                   SimulationConfig config)
    : broker_(broker),
      model_(model),
      query_pool_(std::move(query_pool)),
      config_(config) {
  if (query_pool_.empty()) {
    throw std::invalid_argument("simulation needs a non-empty query pool");
  }
  if (config_.rounds == 0) {
    throw std::invalid_argument("simulation needs >= 1 round");
  }
  if (!(config_.alpha_min > 0.0) || config_.alpha_min > config_.alpha_max ||
      config_.alpha_max > 1.0 || !(config_.delta_min > 0.0) ||
      config_.delta_min > config_.delta_max || config_.delta_max >= 1.0) {
    throw std::invalid_argument("simulation contract box invalid");
  }
}

query::AccuracySpec MarketSimulation::draw_contract(Rng& rng) const {
  return query::AccuracySpec{
      rng.uniform(config_.alpha_min, config_.alpha_max),
      rng.uniform(config_.delta_min, config_.delta_max)};
}

SimulationReport MarketSimulation::run() {
  Rng rng(config_.seed);
  SimulationReport report;
  report.rounds = config_.rounds;

  std::vector<HonestConsumer> honest;
  honest.reserve(config_.honest_consumers);
  for (std::size_t i = 0; i < config_.honest_consumers; ++i) {
    honest.emplace_back("honest-" + std::to_string(i), broker_);
  }
  std::vector<ArbitrageAttacker> attackers;
  attackers.reserve(config_.attackers);
  for (std::size_t i = 0; i < config_.attackers; ++i) {
    attackers.emplace_back("attacker-" + std::to_string(i), broker_,
                           pricing::AttackSimulator(model_));
  }

  const auto draw_range = [&]() -> const query::RangeQuery& {
    return query_pool_[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(query_pool_.size()) - 1))];
  };

  // Phase 1 — serial pre-draw.  Consumes the simulation RNG in exactly the
  // order the all-in-one loop did (arrival gate, contract, range; honest
  // before attackers each round), so the ticket list is independent of how
  // the later phases are scheduled.
  std::vector<Ticket> tickets;
  for (std::size_t round = 0; round < config_.rounds; ++round) {
    for (std::size_t i = 0; i < honest.size(); ++i) {
      if (!rng.bernoulli(config_.arrival_probability)) continue;
      Ticket ticket;
      ticket.consumer = i;
      ticket.spec = draw_contract(rng);
      ticket.range = &draw_range();
      tickets.push_back(ticket);
    }
    for (std::size_t i = 0; i < attackers.size(); ++i) {
      if (!rng.bernoulli(config_.arrival_probability)) continue;
      Ticket ticket;
      ticket.attacker = true;
      ticket.consumer = i;
      ticket.spec = draw_contract(rng);
      ticket.range = &draw_range();
      tickets.push_back(ticket);
    }
  }

  // Phase 2 — parallel deliberation.  best_attack is a pure grid search in
  // (pricing, target) — the dominant cost of an attacker-heavy simulation —
  // so every ticket's plan can be computed concurrently with no effect on
  // the committed stream.
  const pricing::AttackSimulator simulator(model_);
  parallel::parallel_for_each(tickets.size(), [&](std::size_t t) {
    if (!tickets[t].attacker) return;
    tickets[t].plan = simulator.best_attack(broker_.pricing(), tickets[t].spec);
  });

  // Phase 3 — commit.  Arrival order by default (the broker's noise stream
  // and ledger sequence match the serial simulator bit for bit); under
  // concurrent_consumers the same per-ticket body runs on the pool instead,
  // deliberately racing the broker/counter/ledger locks.
  const auto execute = [&](const Ticket& ticket) -> TicketOutcome {
    TicketOutcome out;
    try {
      if (ticket.attacker) {
        out.outcome = config_.concurrent_consumers
                          ? attackers[ticket.consumer].execute_plan(
                                *ticket.range, ticket.spec, ticket.plan)
                          : attackers[ticket.consumer].acquire(
                                *ticket.range, ticket.spec, ticket.plan);
        out.honest_value = broker_.quote(ticket.spec);
        out.profitable = ticket.plan.profitable;
      } else {
        out.outcome = honest[ticket.consumer].acquire(*ticket.range,
                                                      ticket.spec);
      }
    } catch (const BudgetExceededError&) {
      out.refused = true;
    }
    return out;
  };

  std::vector<TicketOutcome> outcomes(tickets.size());
  if (config_.concurrent_consumers) {
    parallel::parallel_for_each(tickets.size(), [&](std::size_t t) {
      outcomes[t] = execute(tickets[t]);
    });
  } else {
    for (std::size_t t = 0; t < tickets.size(); ++t) {
      outcomes[t] = execute(tickets[t]);
    }
  }

  for (std::size_t t = 0; t < tickets.size(); ++t) {
    const Ticket& ticket = tickets[t];
    const TicketOutcome& out = outcomes[t];
    if (out.refused) {
      ++report.refused_sales;
      continue;
    }
    if (ticket.attacker) {
      ++report.attacker_targets;
      report.attacker_queries += out.outcome.queries_issued;
      report.attacker_spend += out.outcome.total_cost;
      report.attacker_honest_value += out.honest_value;
      if (out.profitable) ++report.profitable_attacks;
    } else {
      ++report.honest_purchases;
      report.honest_spend += out.outcome.total_cost;
    }
  }

  report.revenue = broker_.ledger().total_revenue();
  for (const auto& consumer : honest) {
    report.max_honest_epsilon =
        std::max<double>(report.max_honest_epsilon,
                         broker_.ledger().consumer_epsilon(consumer.id()));
  }
  for (const auto& attacker : attackers) {
    report.max_attacker_epsilon =
        std::max<double>(report.max_attacker_epsilon,
                         broker_.ledger().consumer_epsilon(attacker.id()));
  }
  PRC_LOG_INFO << "market simulation: " << report.honest_purchases
               << " honest purchases, " << report.attacker_targets
               << " attacker acquisitions, revenue " << report.revenue;
  return report;
}

}  // namespace prc::market
