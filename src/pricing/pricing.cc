#include "pricing/pricing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/telemetry.h"

namespace prc::pricing {
namespace {

// Coarse audit grid; deliberately smaller than ArbitrageChecker's default
// so the re-validation cost on every menu construction stays negligible.
constexpr double kAuditAlpha[] = {0.05, 0.2, 0.5, 0.9};
constexpr double kAuditDelta[] = {0.05, 0.3, 0.6, 0.9};

}  // namespace

void validate_arbitrage_conditions(const VarianceModel& model,
                                   const PricingFunction& pricing) {
  telemetry::counter("pricing.menu_validations").increment();
  double product_min = std::numeric_limits<double>::infinity();
  double product_max = 0.0;
  double prev_v_alpha = 0.0;
  for (double alpha : kAuditAlpha) {
    // Monotonicity in alpha at fixed delta (first audit delta).
    const double v_alpha =
        model.contract_variance(query::AccuracySpec{alpha, kAuditDelta[0]});
    PRC_CHECK(v_alpha > prev_v_alpha)
        << "V(alpha, delta) must be strictly increasing in alpha; "
        << "V(" << alpha << ") = " << v_alpha << " <= " << prev_v_alpha;
    prev_v_alpha = v_alpha;
    double prev_v_delta = std::numeric_limits<double>::infinity();
    for (double delta : kAuditDelta) {
      const query::AccuracySpec spec{alpha, delta};
      const double v = model.contract_variance(spec);
      PRC_CHECK(std::isfinite(v) && v > 0.0)
          << "contract variance must be positive at " << spec.to_string()
          << ", got " << v;
      PRC_CHECK(v < prev_v_delta)
          << "V(alpha, delta) must be strictly decreasing in delta at "
          << spec.to_string();
      prev_v_delta = v;
      const double price = pricing.price(spec);
      PRC_CHECK(std::isfinite(price) && price > 0.0)
          << pricing.name() << " must price " << spec.to_string()
          << " positive, got " << price;
      const double product = price * v;
      product_min = std::min(product_min, product);
      product_max = std::max(product_max, product);
    }
  }
  // Theorem 4.2: psi(V) * V constant <=> properties 2 and 3 hold with
  // equality, i.e. the averaging adversary exactly breaks even.
  PRC_CHECK(product_max - product_min <= 1e-6 * product_max)
      << pricing.name() << " is not in the psi(V) = c/V family: "
      << "psi(V)*V spans [" << product_min << ", " << product_max << "]";
}

InverseVariancePricing::InverseVariancePricing(
    VarianceModel model, query::AccuracySpec reference_spec, double base_price,
    double exponent)
    : model_(model),
      reference_variance_(model.contract_variance(reference_spec)),
      base_price_(base_price),
      exponent_(exponent) {
  PRC_CHECK(std::isfinite(base_price) && base_price > 0.0)
      << "base price must be positive, got " << base_price;
  PRC_CHECK(std::isfinite(exponent) && exponent > 0.0)
      << "exponent must be positive, got " << exponent;
  // Only q == 1 claims membership in the arbitrage-avoiding family; the
  // other exponents exist to exercise the failure modes and are exempt.
  if (exponent_ == 1.0) validate_arbitrage_conditions(model_, *this);
}

double InverseVariancePricing::price(const query::AccuracySpec& spec) const {
  // price() is the attacker grid search's inner loop; cache the registry
  // lookups (name hash + registry lock) once per process.
  static telemetry::Counter& quotes = telemetry::counter("pricing.quotes");
  static telemetry::Histogram& prices = telemetry::histogram("pricing.price");
  const double v = model_.contract_variance(spec);
  const double price = base_price_ * std::pow(reference_variance_ / v, exponent_);
  quotes.increment();
  prices.record(price);
  return price;
}

std::string InverseVariancePricing::name() const {
  std::ostringstream out;
  out << "inverse-variance(q=" << exponent_ << ')';
  return out.str();
}

LinearDiscountPricing::LinearDiscountPricing(double base, double accuracy_rate,
                                             double confidence_rate)
    : base_(base),
      accuracy_rate_(accuracy_rate),
      confidence_rate_(confidence_rate) {
  PRC_CHECK(base > 0.0 && accuracy_rate >= 0.0 && confidence_rate >= 0.0)
      << "linear pricing needs base > 0, rates >= 0";
}

double LinearDiscountPricing::price(const query::AccuracySpec& spec) const {
  static telemetry::Counter& quotes = telemetry::counter("pricing.quotes");
  static telemetry::Histogram& prices = telemetry::histogram("pricing.price");
  spec.validate();
  const double price = base_ + accuracy_rate_ * (1.0 - spec.alpha) +
                       confidence_rate_ * spec.delta;
  quotes.increment();
  prices.record(price);
  return price;
}

std::string LinearDiscountPricing::name() const { return "linear-discount"; }

MenuFit fit_theorem_pricing(
    const VarianceModel& model,
    const std::vector<std::pair<query::AccuracySpec, double>>& menu) {
  PRC_CHECK(!menu.empty()) << "empty price menu";
  MenuFit fit;
  fit.scale = std::numeric_limits<double>::infinity();
  for (const auto& [spec, price] : menu) {
    PRC_CHECK(std::isfinite(price) && price > 0.0)
        << "menu prices must be positive, got " << price << " at "
        << spec.to_string();
    fit.scale = std::min(fit.scale, price * model.contract_variance(spec));
  }
  for (const auto& [spec, price] : menu) {
    const double fitted = fit.scale / model.contract_variance(spec);
    fit.max_relative_concession = std::max(
        fit.max_relative_concession, (price - fitted) / price);
  }
  PRC_CHECK(std::isfinite(fit.scale) && fit.scale > 0.0)
      << "fitted menu scale must be positive and finite, got " << fit.scale;
  // Materializing the fitted function runs validate_arbitrage_conditions in
  // its constructor, so every repaired menu re-proves Theorem 4.2 before
  // the fit is handed back.
  (void)FittedTheoremPricing(model, fit.scale);
  return fit;
}

FittedTheoremPricing::FittedTheoremPricing(VarianceModel model, double scale)
    : model_(model), scale_(scale) {
  PRC_CHECK(std::isfinite(scale) && scale > 0.0)
      << "scale must be positive, got " << scale;
  // Every fitted menu re-proves its own arbitrage-freeness on construction.
  validate_arbitrage_conditions(model_, *this);
}

double FittedTheoremPricing::price(const query::AccuracySpec& spec) const {
  static telemetry::Counter& quotes = telemetry::counter("pricing.quotes");
  static telemetry::Histogram& prices = telemetry::histogram("pricing.price");
  const double price = scale_ / model_.contract_variance(spec);
  quotes.increment();
  prices.record(price);
  return price;
}

std::string FittedTheoremPricing::name() const {
  return "fitted-theorem(c/V)";
}

}  // namespace prc::pricing
