#include "pricing/pricing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace prc::pricing {

InverseVariancePricing::InverseVariancePricing(
    VarianceModel model, query::AccuracySpec reference_spec, double base_price,
    double exponent)
    : model_(model),
      reference_variance_(model.contract_variance(reference_spec)),
      base_price_(base_price),
      exponent_(exponent) {
  if (!(base_price > 0.0)) {
    throw std::invalid_argument("base price must be positive");
  }
  if (!(exponent > 0.0)) {
    throw std::invalid_argument("exponent must be positive");
  }
}

double InverseVariancePricing::price(const query::AccuracySpec& spec) const {
  const double v = model_.contract_variance(spec);
  return base_price_ * std::pow(reference_variance_ / v, exponent_);
}

std::string InverseVariancePricing::name() const {
  std::ostringstream out;
  out << "inverse-variance(q=" << exponent_ << ')';
  return out.str();
}

LinearDiscountPricing::LinearDiscountPricing(double base, double accuracy_rate,
                                             double confidence_rate)
    : base_(base),
      accuracy_rate_(accuracy_rate),
      confidence_rate_(confidence_rate) {
  if (!(base > 0.0) || accuracy_rate < 0.0 || confidence_rate < 0.0) {
    throw std::invalid_argument("linear pricing needs base > 0, rates >= 0");
  }
}

double LinearDiscountPricing::price(const query::AccuracySpec& spec) const {
  spec.validate();
  return base_ + accuracy_rate_ * (1.0 - spec.alpha) +
         confidence_rate_ * spec.delta;
}

std::string LinearDiscountPricing::name() const { return "linear-discount"; }

MenuFit fit_theorem_pricing(
    const VarianceModel& model,
    const std::vector<std::pair<query::AccuracySpec, double>>& menu) {
  if (menu.empty()) throw std::invalid_argument("empty price menu");
  MenuFit fit;
  fit.scale = std::numeric_limits<double>::infinity();
  for (const auto& [spec, price] : menu) {
    if (!(price > 0.0)) {
      throw std::invalid_argument("menu prices must be positive");
    }
    fit.scale = std::min(fit.scale, price * model.contract_variance(spec));
  }
  for (const auto& [spec, price] : menu) {
    const double fitted = fit.scale / model.contract_variance(spec);
    fit.max_relative_concession = std::max(
        fit.max_relative_concession, (price - fitted) / price);
  }
  return fit;
}

FittedTheoremPricing::FittedTheoremPricing(VarianceModel model, double scale)
    : model_(model), scale_(scale) {
  if (!(scale > 0.0)) throw std::invalid_argument("scale must be positive");
}

double FittedTheoremPricing::price(const query::AccuracySpec& spec) const {
  return scale_ / model_.contract_variance(spec);
}

std::string FittedTheoremPricing::name() const {
  return "fitted-theorem(c/V)";
}

}  // namespace prc::pricing
