// Memoized price quotes: a thread-safe LRU in front of one PricingFunction.
//
// Theorem-4.2-family prices are pure functions of the contract (alpha,
// delta) — nothing time-varying feeds psi(V) — so a broker that keeps
// quoting the same few contracts (honest repeat buyers; an attacker buying
// m copies of one weakened spec) can answer from a hash lookup.  Keys are
// the bit patterns of the two doubles, so "the same contract" means exactly
// the same bytes and a hit returns exactly the double the miss computed —
// receipts and revenue totals cannot drift between cached and direct
// pricing, at any thread count.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "pricing/pricing.h"
#include "query/range_query.h"

namespace prc::pricing {

/// Bounded LRU memo over `pricing.price(spec)`.  The wrapped function must
/// outlive the cache.  All methods are thread-safe and take the internal
/// mutex, so callers must not hold it (PRC_EXCLUDES).
class QuoteCache {
 public:
  /// `capacity` == 0 disables memoization (every call prices directly).
  QuoteCache(const PricingFunction& pricing, std::size_t capacity)
      : pricing_(pricing), capacity_(capacity) {}

  QuoteCache(const QuoteCache&) = delete;
  QuoteCache& operator=(const QuoteCache&) = delete;

  /// The price of `spec`, served from the memo when this exact contract
  /// (bit pattern) was quoted before.
  double price(const query::AccuracySpec& spec) const PRC_EXCLUDES(mutex_);

  const PricingFunction& pricing() const noexcept { return pricing_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const PRC_EXCLUDES(mutex_);

 private:
  struct Key {
    std::uint64_t alpha_bits = 0;
    std::uint64_t delta_bits = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      // Same FNV-1a mixing as the plan cache: stable across platforms.
      std::uint64_t h = 14695981039346656037ULL;
      for (const std::uint64_t v : {key.alpha_bits, key.delta_bits}) {
        for (int i = 0; i < 8; ++i) {
          h ^= (v >> (8 * i)) & 0xffULL;
          h *= 1099511628211ULL;
        }
      }
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    Key key;
    double price = 0.0;
  };
  using EntryList = std::list<Entry>;

  const PricingFunction& pricing_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  /// Front = most recently used; back = eviction candidate.
  mutable EntryList entries_ PRC_GUARDED_BY(mutex_);
  mutable std::unordered_map<Key, EntryList::iterator, KeyHash> index_
      PRC_GUARDED_BY(mutex_);
};

}  // namespace prc::pricing
