#include "pricing/variance_model.h"

#include <cmath>
#include <stdexcept>

namespace prc::pricing {

VarianceModel::VarianceModel(std::size_t total_count, std::size_t node_count)
    : total_count_(total_count), node_count_(node_count) {
  if (total_count == 0 || node_count == 0) {
    throw std::invalid_argument("variance model needs n > 0 and k > 0");
  }
}

double VarianceModel::contract_variance(
    const query::AccuracySpec& spec) const {
  spec.validate();
  const double scaled = spec.alpha * static_cast<double>(total_count_);
  return scaled * scaled * (1.0 - spec.delta);
}

double VarianceModel::alpha_for_variance(double variance, double delta) const {
  if (!(variance > 0.0)) {
    throw std::invalid_argument("variance must be positive");
  }
  if (delta < 0.0 || delta >= 1.0) {
    throw std::invalid_argument("delta must be in [0, 1)");
  }
  return std::sqrt(variance / (1.0 - delta)) /
         static_cast<double>(total_count_);
}

double VarianceModel::plan_variance(const dp::PerturbationPlan& plan) const {
  return plan.total_variance(node_count_);
}

}  // namespace prc::pricing
