#include "pricing/variance_model.h"

#include <cmath>

#include "common/check.h"

namespace prc::pricing {

VarianceModel::VarianceModel(std::size_t total_count, std::size_t node_count)
    : total_count_(total_count), node_count_(node_count) {
  PRC_CHECK(total_count > 0 && node_count > 0)
      << "variance model needs n > 0 and k > 0, got n=" << total_count
      << " k=" << node_count;
}

double VarianceModel::contract_variance(
    const query::AccuracySpec& spec) const {
  spec.validate();
  const double scaled = spec.alpha * static_cast<double>(total_count_);
  const double variance = scaled * scaled * (1.0 - spec.delta);
  // V(alpha, delta) = (alpha n)^2 (1 - delta) is strictly positive on the
  // valid spec domain; a zero or infinite variance would poison every
  // psi(V) = c/V price downstream.
  PRC_DCHECK(std::isfinite(variance) && variance > 0.0)
      << "contract variance must be positive and finite, got " << variance
      << " for " << spec.to_string();
  return variance;
}

units::Alpha VarianceModel::alpha_for_variance(double variance,
                                               units::Delta delta) const {
  PRC_CHECK(std::isfinite(variance) && variance > 0.0)
      << "variance must be positive, got " << variance;
  PRC_CHECK(delta >= 0.0 && delta < 1.0)
      << "delta must be in [0, 1), got " << delta;
  return std::sqrt(variance / (1.0 - delta)) /
         static_cast<double>(total_count_);
}

double VarianceModel::plan_variance(const dp::PerturbationPlan& plan) const {
  return plan.total_variance(node_count_);
}

}  // namespace prc::pricing
