#include "pricing/quote_cache.h"

#include "common/telemetry.h"

namespace prc::pricing {

double QuoteCache::price(const query::AccuracySpec& spec) const {
  static telemetry::Counter& hits =
      telemetry::counter("pricing.quote_cache_hits");
  static telemetry::Counter& misses =
      telemetry::counter("pricing.quote_cache_misses");
  if (capacity_ == 0) {
    misses.increment();
    return pricing_.price(spec);
  }
  const Key key{std::bit_cast<std::uint64_t>(spec.alpha.value()),
                std::bit_cast<std::uint64_t>(spec.delta.value())};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      entries_.splice(entries_.begin(), entries_, it->second);
      hits.increment();
      return it->second->price;
    }
  }
  // Price OUTSIDE the lock: the underlying function is pure and
  // thread-safe, and holding a mutex across it would serialize the
  // concurrent-consumer quote path this cache exists to speed up.  Two
  // racing misses compute the identical double; whichever insert loses
  // simply keeps the incumbent.
  misses.increment();
  const double price = pricing_.price(spec);
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.find(key) == index_.end()) {
    entries_.push_front(Entry{key, price});
    index_.emplace(key, entries_.begin());
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().key);
      entries_.pop_back();
    }
  }
  return price;
}

std::size_t QuoteCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace prc::pricing
