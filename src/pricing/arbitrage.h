// Arbitrage analysis: numeric verification of Theorem 4.2 and a concrete
// averaging-attack search (the Example 4.1 adversary).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.h"
#include "pricing/pricing.h"
#include "query/range_query.h"

namespace prc::pricing {

/// One detected violation of a Theorem 4.2 property.
struct PropertyViolation {
  int property = 0;  // 1, 2 or 3 as numbered in the theorem
  query::AccuracySpec from;
  query::AccuracySpec to;
  double lhs = 0.0;
  double rhs = 0.0;
  std::string to_string() const;
};

/// Result of checking a pricing function over a grid.
struct CheckReport {
  bool arbitrage_avoiding = true;
  std::size_t checks_performed = 0;
  std::vector<PropertyViolation> violations;  // capped, first few only
};

/// Numerically checks the three Theorem 4.2 properties over a dense
/// (alpha, delta) grid:
///   1. equal contract variance  => equal price,
///   2. raising delta:  relative price increase >= relative variance drop,
///   3. raising alpha:  relative price drop <= relative variance increase.
class ArbitrageChecker {
 public:
  struct Grid {
    units::Alpha alpha_min = 0.02, alpha_max = 0.8;
    units::Delta delta_min = 0.05, delta_max = 0.95;
    std::size_t alpha_steps = 24, delta_steps = 24;
  };

  explicit ArbitrageChecker(VarianceModel model);
  ArbitrageChecker(VarianceModel model, Grid grid);

  CheckReport check(const PricingFunction& pricing,
                    std::size_t max_violations = 8) const;

 private:
  VarianceModel model_;
  Grid grid_;
};

/// The Example 4.1 adversary: wants the answer quality of `target` but shops
/// for m >= 2 weaker queries (alpha_i > alpha, delta_i < delta) whose average
/// achieves combined variance (1/m^2) sum V_i <= V(target) at lower total
/// price.
struct AttackResult {
  bool profitable = false;
  double honest_price = 0.0;
  double best_attack_cost = 0.0;  // = honest_price when no attack found
  std::size_t copies = 0;         // m of the best attack (0 when none)
  query::AccuracySpec weaker_spec;  // the contract bought m times
  double combined_variance = 0.0;
  /// Savings ratio: 1 - best_attack_cost / honest_price (0 when no attack).
  double savings() const;
};

class AttackSimulator {
 public:
  struct SearchSpace {
    std::size_t max_copies = 24;
    std::size_t alpha_steps = 40;
    std::size_t delta_steps = 20;
    units::Alpha alpha_max = 0.95;
  };

  explicit AttackSimulator(VarianceModel model);
  AttackSimulator(VarianceModel model, SearchSpace space);

  /// Searches symmetric attacks (m identical weaker queries); symmetric
  /// attacks are optimal for variance-keyed price families because the
  /// constraint sum V_i <= m^2 V and the cost sum psi(V_i) are both
  /// Schur-convex in the V_i.  Asymmetric spot checks are in the tests.
  AttackResult best_attack(const PricingFunction& pricing,
                           const query::AccuracySpec& target) const;

 private:
  VarianceModel model_;
  SearchSpace space_;
};

}  // namespace prc::pricing
