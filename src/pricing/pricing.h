// Pricing functions for (alpha, delta)-range counting services.
//
// Theorem 4.2 characterizes arbitrage-avoiding prices: pi = psi(V) (Lemma
// 4.1), plus two relative-difference inequalities that together say the
// product psi(V) * V must be non-decreasing both when V falls (raising
// delta, property 2) and when V rises (raising alpha, property 3) — i.e.
// psi(V) * V is constant, pinning the family to psi(V) = c / V.
//
// The power family psi(V) = c (V_ref / V)^q makes all the regimes concrete:
//   q = 1  — the Theorem 4.2 family; averaging attacks exactly break even.
//   q > 1  — price decays faster than 1/V; property 3 fails and the
//            Example 4.1 averaging attack strictly profits (buy m weak
//            queries with V_i = m V: cost = pi / m^{q-1} < pi).
//   q < 1  — price decays slower than 1/V; the averaging attack never
//            profits, but property 2 fails: the theorem's characterization
//            is strictly stronger than immunity to the simple averaging
//            adversary (the broker over-discounts confidence upgrades).
// A deliberately naive linear "discount sheet" price is included as the
// not-variance-keyed baseline (violates property 1).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pricing/variance_model.h"
#include "query/range_query.h"

namespace prc::pricing {

/// Interface for a pricing function pi(alpha, delta).
class PricingFunction {
 public:
  virtual ~PricingFunction() = default;

  /// Price of one (alpha, delta) query.  Positive.
  virtual double price(const query::AccuracySpec& spec) const = 0;

  virtual std::string name() const = 0;
};

/// Contract audit for a pricing function that claims to sit in the
/// Theorem 4.2 family psi(V) = c / V.  Evaluates a coarse (alpha, delta)
/// grid and PRC_CHECKs the q = 1 arbitrage conditions:
///   - V(alpha, delta) is positive, finite, strictly increasing in alpha
///     and strictly decreasing in delta (the Chebyshev contract variance
///     monotonicity the theorem manipulates);
///   - every price is positive and finite;
///   - psi(V) * V is constant across the grid (relative spread <= 1e-6),
///     which is exactly properties 2 + 3 holding with equality.
/// Called automatically whenever a theorem-family menu is constructed
/// (FittedTheoremPricing, InverseVariancePricing with exponent == 1, and
/// fit_theorem_pricing).  Throws prc::ContractViolation on failure, so it
/// doubles as an explicit guard for hand-built menus.
void validate_arbitrage_conditions(const VarianceModel& model,
                                   const PricingFunction& pricing);

/// The power family psi(V) = base_price * (reference_variance / V)^exponent.
/// Arbitrage-avoiding (per Theorem 4.2) exactly when exponent == 1; other
/// exponents are constructible on purpose so the checker and attack
/// simulator can exercise the failure modes.
class InverseVariancePricing final : public PricingFunction {
 public:
  /// `reference_spec` anchors the scale: price(reference_spec) == base_price.
  /// Requires base_price > 0 and exponent > 0.
  InverseVariancePricing(VarianceModel model,
                         query::AccuracySpec reference_spec, double base_price,
                         double exponent = 1.0);

  double price(const query::AccuracySpec& spec) const override;
  std::string name() const override;

  double exponent() const noexcept { return exponent_; }
  const VarianceModel& model() const noexcept { return model_; }

 private:
  VarianceModel model_;
  double reference_variance_;
  double base_price_;
  double exponent_;
};

/// Naive "discount sheet" pricing: linear in accuracy and confidence,
/// ignoring the variance geometry.  Monotone in the intuitive directions
/// (cheaper for larger alpha, pricier for larger delta) but not a function
/// of the variance, so it violates Theorem 4.2 property 1: two contracts
/// with identical variance get different prices, and the cheaper one
/// dominates the dearer.
class LinearDiscountPricing final : public PricingFunction {
 public:
  /// price = base + accuracy_rate * (1 - alpha) + confidence_rate * delta.
  LinearDiscountPricing(double base, double accuracy_rate,
                        double confidence_rate);

  double price(const query::AccuracySpec& spec) const override;
  std::string name() const override;

 private:
  double base_;
  double accuracy_rate_;
  double confidence_rate_;
};

/// Fits the best Theorem 4.2 pricing under a hand-authored price menu.
///
/// Brokers typically start from a menu of (contract, price) points chosen
/// by the business; an arbitrary menu is almost never arbitrage-avoiding.
/// This helper finds the revenue-maximal member of the theorem family
/// psi(V) = c / V that never charges MORE than the menu does at any menu
/// point (so published prices remain honored):  c = min_i pi_i * V_i.
/// Returns the fitted function plus the worst-case relative revenue
/// concession versus the menu.
struct MenuFit {
  /// The fitted scalar c of psi(V) = c / V.
  double scale = 0.0;
  /// max_i (menu_i - c/V_i) / menu_i — how much the repair undercuts the
  /// menu at its most-discounted point (0 means the menu was already in the
  /// family).
  double max_relative_concession = 0.0;
};

/// Requires a non-empty menu with positive prices.  `model` supplies
/// V(alpha, delta).
MenuFit fit_theorem_pricing(
    const VarianceModel& model,
    const std::vector<std::pair<query::AccuracySpec, double>>& menu);

/// A PricingFunction over a fitted scale: psi(V) = scale / V.
class FittedTheoremPricing final : public PricingFunction {
 public:
  FittedTheoremPricing(VarianceModel model, double scale);

  double price(const query::AccuracySpec& spec) const override;
  std::string name() const override;

 private:
  VarianceModel model_;
  double scale_;
};

}  // namespace prc::pricing
