// The variance function V(alpha, delta) that prices are keyed on.
//
// Lemma 4.1 shows an arbitrage-avoiding price must be a function of the
// answer's variance alone.  The canonical contract variance used here is the
// Chebyshev-matching level
//     V(alpha, delta) = (alpha n)^2 (1 - delta),
// i.e. the largest variance at which Chebyshev still certifies
// Pr[|X - E X| <= alpha n] >= delta.  It is the natural "variance sold" for a
// contract: strictly increasing in alpha, strictly decreasing in delta —
// exactly the monotonicity Theorem 4.2 manipulates.  The model can also
// evaluate the *realized* variance of a concrete PerturbationPlan (sampling
// bound + Laplace variance) for the empirical pricing benches.
#pragma once

#include <cstddef>

#include "dp/optimizer.h"
#include "query/range_query.h"

namespace prc::pricing {

class VarianceModel {
 public:
  /// `total_count` is |D| = n; `node_count` is k (used for plan variance).
  VarianceModel(std::size_t total_count, std::size_t node_count);

  std::size_t total_count() const noexcept { return total_count_; }
  std::size_t node_count() const noexcept { return node_count_; }

  /// Canonical contract variance (alpha n)^2 (1 - delta).
  double contract_variance(const query::AccuracySpec& spec) const;

  /// Inverse along the alpha axis: the alpha for which contract_variance
  /// equals `variance` at confidence `delta`.
  units::Alpha alpha_for_variance(double variance, units::Delta delta) const;

  /// Realized variance of a concrete plan: 8k/p^2 + 2 (sens/eps)^2.
  double plan_variance(const dp::PerturbationPlan& plan) const;

 private:
  std::size_t total_count_;
  std::size_t node_count_;
};

}  // namespace prc::pricing
