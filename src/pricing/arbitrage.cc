#include "pricing/arbitrage.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace prc::pricing {
namespace {

constexpr double kRelTolerance = 1e-9;

bool approximately_equal(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) <= 1e-6 * scale;
}

}  // namespace

std::string PropertyViolation::to_string() const {
  std::ostringstream out;
  out << "property " << property << " violated: " << from.to_string() << " -> "
      << to.to_string() << " lhs=" << lhs << " rhs=" << rhs;
  return out.str();
}

ArbitrageChecker::ArbitrageChecker(VarianceModel model)
    : ArbitrageChecker(model, Grid{}) {}

ArbitrageChecker::ArbitrageChecker(VarianceModel model, Grid grid)
    : model_(model), grid_(grid) {
  PRC_CHECK(grid_.alpha_steps >= 2 && grid_.delta_steps >= 2)
      << "checker grid needs >= 2 steps per axis, got alpha_steps="
      << grid_.alpha_steps << " delta_steps=" << grid_.delta_steps;
  PRC_CHECK(grid_.alpha_min > 0.0 && grid_.alpha_min < grid_.alpha_max &&
            grid_.alpha_max <= 1.0)
      << "checker grid needs 0 < alpha_min < alpha_max <= 1";
  PRC_CHECK(grid_.delta_min >= 0.0 && grid_.delta_min < grid_.delta_max &&
            grid_.delta_max < 1.0)
      << "checker grid needs 0 <= delta_min < delta_max < 1";
}

CheckReport ArbitrageChecker::check(const PricingFunction& pricing,
                                    std::size_t max_violations) const {
  PRC_TRACE_SPAN("pricing.arbitrage_check");
  telemetry::counter("pricing.arbitrage_checks").increment();
  CheckReport report;
  const auto record = [&](PropertyViolation violation) {
    report.arbitrage_avoiding = false;
    if (report.violations.size() < max_violations) {
      report.violations.push_back(std::move(violation));
    }
  };

  std::vector<double> alphas(grid_.alpha_steps);
  std::vector<double> deltas(grid_.delta_steps);
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    alphas[i] = grid_.alpha_min + (grid_.alpha_max - grid_.alpha_min) *
                                      static_cast<double>(i) /
                                      static_cast<double>(alphas.size() - 1);
  }
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    deltas[i] = grid_.delta_min + (grid_.delta_max - grid_.delta_min) *
                                      static_cast<double>(i) /
                                      static_cast<double>(deltas.size() - 1);
  }

  // Property 1: contracts with identical variance must have identical price.
  for (double alpha : alphas) {
    for (double delta : deltas) {
      const query::AccuracySpec spec{alpha, delta};
      const double v = model_.contract_variance(spec);
      for (double other_delta : deltas) {
        // Exact copies from the same grid vector, so identity compare
        // is the intended duplicate filter.
        if (other_delta == delta) continue;  // lint:allow float-eq
        const double other_alpha = model_.alpha_for_variance(v, other_delta);
        if (!(other_alpha > 0.0) || other_alpha > 1.0) continue;
        const query::AccuracySpec other{other_alpha, other_delta};
        const double price_a = pricing.price(spec);
        const double price_b = pricing.price(other);
        ++report.checks_performed;
        if (!approximately_equal(price_a, price_b)) {
          record({1, spec, other, price_a, price_b});
        }
      }
    }
  }

  // Property 2: raising delta — relative price increase must cover the
  // relative variance decrease.
  for (double alpha : alphas) {
    for (std::size_t j = 0; j + 1 < deltas.size(); ++j) {
      const query::AccuracySpec lo{alpha, deltas[j]};
      const query::AccuracySpec hi{alpha, deltas[j + 1]};
      const double pi_lo = pricing.price(lo);
      const double pi_hi = pricing.price(hi);
      const double v_lo = model_.contract_variance(lo);
      const double v_hi = model_.contract_variance(hi);
      const double lhs = (pi_hi - pi_lo) / pi_hi;
      const double rhs = (v_lo - v_hi) / v_lo;
      ++report.checks_performed;
      if (lhs < rhs - kRelTolerance) record({2, lo, hi, lhs, rhs});
    }
  }

  // Property 3: raising alpha — relative price drop must not exceed the
  // relative variance increase.
  for (double delta : deltas) {
    for (std::size_t i = 0; i + 1 < alphas.size(); ++i) {
      const query::AccuracySpec lo{alphas[i], delta};
      const query::AccuracySpec hi{alphas[i + 1], delta};
      const double pi_lo = pricing.price(lo);
      const double pi_hi = pricing.price(hi);
      const double v_lo = model_.contract_variance(lo);
      const double v_hi = model_.contract_variance(hi);
      const double lhs = (pi_lo - pi_hi) / pi_lo;
      const double rhs = (v_hi - v_lo) / v_hi;
      ++report.checks_performed;
      if (lhs > rhs + kRelTolerance) record({3, lo, hi, lhs, rhs});
    }
  }
  telemetry::counter("pricing.arbitrage_grid_checks")
      .increment(report.checks_performed);
  if (!report.arbitrage_avoiding) {
    telemetry::counter("pricing.arbitrage_violations")
        .increment(report.violations.size());
  }
  return report;
}

double AttackResult::savings() const {
  if (!profitable || honest_price <= 0.0) return 0.0;
  return 1.0 - best_attack_cost / honest_price;
}

AttackSimulator::AttackSimulator(VarianceModel model)
    : AttackSimulator(model, SearchSpace{}) {}

AttackSimulator::AttackSimulator(VarianceModel model, SearchSpace space)
    : model_(model), space_(space) {
  PRC_CHECK(space_.max_copies >= 2 && space_.alpha_steps >= 2 &&
            space_.delta_steps >= 1)
      << "attack search space too small";
  PRC_CHECK(space_.alpha_max > 0.0 && space_.alpha_max <= 1.0)
      << "alpha_max must be in (0, 1], got " << space_.alpha_max;
}

AttackResult AttackSimulator::best_attack(
    const PricingFunction& pricing, const query::AccuracySpec& target) const {
  target.validate();
  AttackResult result;
  result.honest_price = pricing.price(target);
  result.best_attack_cost = result.honest_price;
  const double target_variance = model_.contract_variance(target);

  for (std::size_t m = 2; m <= space_.max_copies; ++m) {
    const double variance_budget =
        static_cast<double>(m) * target_variance;  // V_w <= m * V(target)
    for (std::size_t ai = 1; ai <= space_.alpha_steps; ++ai) {
      const double alpha_w =
          target.alpha + (space_.alpha_max - target.alpha) *
                             static_cast<double>(ai) /
                             static_cast<double>(space_.alpha_steps);
      if (!(alpha_w > target.alpha) || alpha_w > 1.0) continue;
      for (std::size_t di = 1; di <= space_.delta_steps; ++di) {
        const double delta_w = target.delta * static_cast<double>(di) /
                               static_cast<double>(space_.delta_steps + 1);
        if (!(delta_w > 0.0) || !(delta_w < target.delta)) continue;
        const query::AccuracySpec weaker{alpha_w, delta_w};
        const double v_w = model_.contract_variance(weaker);
        if (v_w > variance_budget) continue;  // average still too noisy
        const double cost = static_cast<double>(m) * pricing.price(weaker);
        if (cost < result.best_attack_cost) {
          result.best_attack_cost = cost;
          result.copies = m;
          result.weaker_spec = weaker;
          result.combined_variance = v_w / static_cast<double>(m);
        }
      }
    }
  }
  result.profitable =
      result.best_attack_cost < result.honest_price * (1.0 - 1e-9);
  if (!result.profitable) {
    result.best_attack_cost = result.honest_price;
    result.copies = 0;
    result.combined_variance = target_variance;
  }
  return result;
}

}  // namespace prc::pricing
