#include "pricing/arbitrage.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace prc::pricing {
namespace {

constexpr double kRelTolerance = 1e-9;

bool approximately_equal(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) <= 1e-6 * scale;
}

}  // namespace

std::string PropertyViolation::to_string() const {
  std::ostringstream out;
  out << "property " << property << " violated: " << from.to_string() << " -> "
      << to.to_string() << " lhs=" << lhs << " rhs=" << rhs;
  return out.str();
}

ArbitrageChecker::ArbitrageChecker(VarianceModel model)
    : ArbitrageChecker(model, Grid{}) {}

ArbitrageChecker::ArbitrageChecker(VarianceModel model, Grid grid)
    : model_(model), grid_(grid) {
  PRC_CHECK(grid_.alpha_steps >= 2 && grid_.delta_steps >= 2)
      << "checker grid needs >= 2 steps per axis, got alpha_steps="
      << grid_.alpha_steps << " delta_steps=" << grid_.delta_steps;
  PRC_CHECK(grid_.alpha_min > 0.0 && grid_.alpha_min < grid_.alpha_max &&
            grid_.alpha_max <= 1.0)
      << "checker grid needs 0 < alpha_min < alpha_max <= 1";
  PRC_CHECK(grid_.delta_min >= 0.0 && grid_.delta_min < grid_.delta_max &&
            grid_.delta_max < 1.0)
      << "checker grid needs 0 <= delta_min < delta_max < 1";
}

CheckReport ArbitrageChecker::check(const PricingFunction& pricing,
                                    std::size_t max_violations) const {
  static telemetry::Counter& arbitrage_checks =
      telemetry::counter("pricing.arbitrage_checks");
  static telemetry::Counter& grid_checks =
      telemetry::counter("pricing.arbitrage_grid_checks");
  static telemetry::Counter& violations_counter =
      telemetry::counter("pricing.arbitrage_violations");
  PRC_TRACE_SPAN("pricing.arbitrage_check");
  arbitrage_checks.increment();
  CheckReport report;
  const auto record = [&](PropertyViolation violation) {
    report.arbitrage_avoiding = false;
    if (report.violations.size() < max_violations) {
      report.violations.push_back(std::move(violation));
    }
  };

  std::vector<double> alphas(grid_.alpha_steps);
  std::vector<double> deltas(grid_.delta_steps);
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    alphas[i] = grid_.alpha_min + (grid_.alpha_max - grid_.alpha_min) *
                                      static_cast<double>(i) /
                                      static_cast<double>(alphas.size() - 1);
  }
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    deltas[i] = grid_.delta_min + (grid_.delta_max - grid_.delta_min) *
                                      static_cast<double>(i) /
                                      static_cast<double>(deltas.size() - 1);
  }

  // Every property below prices and re-prices the same grid cells; quote
  // each cell ONCE up front and index into the vectors.  Pricing functions
  // are pure in (alpha, delta), so the precomputed doubles are the exact
  // values the per-cell calls produced.
  const auto cell = [this](std::size_t i, std::size_t j) {
    return i * grid_.delta_steps + j;
  };
  std::vector<double> price_grid(alphas.size() * deltas.size());
  std::vector<double> variance_grid(alphas.size() * deltas.size());
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    for (std::size_t j = 0; j < deltas.size(); ++j) {
      const query::AccuracySpec spec{alphas[i], deltas[j]};
      price_grid[cell(i, j)] = pricing.price(spec);
      variance_grid[cell(i, j)] = model_.contract_variance(spec);
    }
  }

  // Property 1: contracts with identical variance must have identical price.
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    for (std::size_t j = 0; j < deltas.size(); ++j) {
      const query::AccuracySpec spec{alphas[i], deltas[j]};
      const double v = variance_grid[cell(i, j)];
      const double price_a = price_grid[cell(i, j)];
      for (double other_delta : deltas) {
        // Exact copies from the same grid vector, so identity compare
        // is the intended duplicate filter.
        if (other_delta == deltas[j]) continue;  // lint:allow float-eq
        const double other_alpha = model_.alpha_for_variance(v, other_delta);
        if (!(other_alpha > 0.0) || other_alpha > 1.0) continue;
        // `other` sits off the grid (its alpha solves the iso-variance
        // equation), so it is the one contract this loop still prices
        // directly.
        const query::AccuracySpec other{other_alpha, other_delta};
        const double price_b = pricing.price(other);
        ++report.checks_performed;
        if (!approximately_equal(price_a, price_b)) {
          record({1, spec, other, price_a, price_b});
        }
      }
    }
  }

  // Property 2: raising delta — relative price increase must cover the
  // relative variance decrease.
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    for (std::size_t j = 0; j + 1 < deltas.size(); ++j) {
      const query::AccuracySpec lo{alphas[i], deltas[j]};
      const query::AccuracySpec hi{alphas[i], deltas[j + 1]};
      const double pi_lo = price_grid[cell(i, j)];
      const double pi_hi = price_grid[cell(i, j + 1)];
      const double v_lo = variance_grid[cell(i, j)];
      const double v_hi = variance_grid[cell(i, j + 1)];
      const double lhs = (pi_hi - pi_lo) / pi_hi;
      const double rhs = (v_lo - v_hi) / v_lo;
      ++report.checks_performed;
      if (lhs < rhs - kRelTolerance) record({2, lo, hi, lhs, rhs});
    }
  }

  // Property 3: raising alpha — relative price drop must not exceed the
  // relative variance increase.
  for (std::size_t j = 0; j < deltas.size(); ++j) {
    for (std::size_t i = 0; i + 1 < alphas.size(); ++i) {
      const query::AccuracySpec lo{alphas[i], deltas[j]};
      const query::AccuracySpec hi{alphas[i + 1], deltas[j]};
      const double pi_lo = price_grid[cell(i, j)];
      const double pi_hi = price_grid[cell(i + 1, j)];
      const double v_lo = variance_grid[cell(i, j)];
      const double v_hi = variance_grid[cell(i + 1, j)];
      const double lhs = (pi_lo - pi_hi) / pi_lo;
      const double rhs = (v_hi - v_lo) / v_hi;
      ++report.checks_performed;
      if (lhs > rhs + kRelTolerance) record({3, lo, hi, lhs, rhs});
    }
  }
  grid_checks.increment(report.checks_performed);
  if (!report.arbitrage_avoiding) {
    violations_counter.increment(report.violations.size());
  }
  return report;
}

double AttackResult::savings() const {
  if (!profitable || honest_price <= 0.0) return 0.0;
  return 1.0 - best_attack_cost / honest_price;
}

AttackSimulator::AttackSimulator(VarianceModel model)
    : AttackSimulator(model, SearchSpace{}) {}

AttackSimulator::AttackSimulator(VarianceModel model, SearchSpace space)
    : model_(model), space_(space) {
  PRC_CHECK(space_.max_copies >= 2 && space_.alpha_steps >= 2 &&
            space_.delta_steps >= 1)
      << "attack search space too small";
  PRC_CHECK(space_.alpha_max > 0.0 && space_.alpha_max <= 1.0)
      << "alpha_max must be in (0, 1], got " << space_.alpha_max;
}

AttackResult AttackSimulator::best_attack(
    const PricingFunction& pricing, const query::AccuracySpec& target) const {
  static telemetry::Counter& quote_cache_hits =
      telemetry::counter("pricing.attack_quote_cache_hits");
  target.validate();
  AttackResult result;
  result.honest_price = pricing.price(target);
  result.best_attack_cost = result.honest_price;
  const double target_variance = model_.contract_variance(target);

  // The (alpha_w, delta_w) candidate lattice is the same for every copy
  // count m — only the variance budget filter changes — so the old loop
  // re-quoted each admissible cell up to max_copies - 1 times.  Lay the
  // lattice out once, then fill prices lazily as the m-loop first touches
  // each cell; later visits are memo hits.  The memo is call-local (an
  // AttackSimulator is copied into each attacker, and the deliberation
  // phase runs best_attack concurrently), so no lock is needed, and a
  // memoized price is byte-for-byte the double the direct call returned.
  struct Cell {
    bool valid = false;
    query::AccuracySpec spec;
    double variance = 0.0;
    double price = 0.0;
    bool priced = false;
  };
  std::vector<Cell> cells(space_.alpha_steps * space_.delta_steps);
  for (std::size_t ai = 1; ai <= space_.alpha_steps; ++ai) {
    const double alpha_w =
        target.alpha + (space_.alpha_max - target.alpha) *
                           static_cast<double>(ai) /
                           static_cast<double>(space_.alpha_steps);
    if (!(alpha_w > target.alpha) || alpha_w > 1.0) continue;
    for (std::size_t di = 1; di <= space_.delta_steps; ++di) {
      const double delta_w = target.delta * static_cast<double>(di) /
                             static_cast<double>(space_.delta_steps + 1);
      if (!(delta_w > 0.0) || !(delta_w < target.delta)) continue;
      Cell& c = cells[(ai - 1) * space_.delta_steps + (di - 1)];
      c.valid = true;
      c.spec = query::AccuracySpec{alpha_w, delta_w};
      c.variance = model_.contract_variance(c.spec);
    }
  }

  for (std::size_t m = 2; m <= space_.max_copies; ++m) {
    const double variance_budget =
        static_cast<double>(m) * target_variance;  // V_w <= m * V(target)
    for (Cell& c : cells) {
      if (!c.valid) continue;
      if (c.variance > variance_budget) continue;  // average still too noisy
      if (!c.priced) {
        c.price = pricing.price(c.spec);
        c.priced = true;
      } else {
        quote_cache_hits.increment();
      }
      const double cost = static_cast<double>(m) * c.price;
      if (cost < result.best_attack_cost) {
        result.best_attack_cost = cost;
        result.copies = m;
        result.weaker_spec = c.spec;
        result.combined_variance = c.variance / static_cast<double>(m);
      }
    }
  }
  result.profitable =
      result.best_attack_cost < result.honest_price * (1.0 - 1e-9);
  if (!result.profitable) {
    result.best_attack_cost = result.honest_price;
    result.copies = 0;
    result.combined_variance = target_variance;
  }
  return result;
}

}  // namespace prc::pricing
