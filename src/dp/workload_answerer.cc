#include "dp/workload_answerer.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "dp/amplification.h"
#include "dp/laplace_mechanism.h"

namespace prc::dp {

WorkloadResult WorkloadAnswerer::answer(
    iot::SamplingNetwork& network, const std::vector<query::RangeQuery>& ranges,
    units::Epsilon total_epsilon, BudgetSplit split, Rng& rng,
    const std::vector<double>& weights) const {
  PRC_CHECK(!ranges.empty()) << "empty workload";
  PRC_CHECK(std::isfinite(total_epsilon) && total_epsilon > 0.0)
      << "total epsilon must be positive, got " << total_epsilon;
  const double p = network.base_station().sampling_probability();
  PRC_CHECK(p > 0.0) << "no sampling round committed yet";
  PRC_CHECK(weights.empty() || weights.size() == ranges.size())
      << "weights must match workload size";

  // Per-query budget allocation.
  std::vector<double> epsilons(ranges.size());
  switch (split) {
    case BudgetSplit::kUniform: {
      const double each = total_epsilon / static_cast<double>(ranges.size());
      for (auto& eps : epsilons) eps = each;
      break;
    }
    case BudgetSplit::kWeighted: {
      // Minimize sum_i w_i * 2 (s / eps_i)^2 subject to sum eps_i = total:
      // the stationarity condition w_i / eps_i^3 = const gives
      // eps_i proportional to w_i^{1/3}.
      double norm = 0.0;
      std::vector<double> shares(ranges.size());
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        const double w = weights.empty() ? 1.0 : weights[i];
        PRC_CHECK(std::isfinite(w) && w > 0.0)
            << "weights must be positive, got " << w;
        shares[i] = std::cbrt(w);
        norm += shares[i];
      }
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        epsilons[i] = total_epsilon * shares[i] / norm;
      }
      break;
    }
  }

  const double sensitivity = 1.0 / p;
  // One batched pass over the station cache answers the whole workload
  // (parallel across queries/nodes); the Laplace draws below then consume
  // `rng` serially in query order, so the noise stream is identical to the
  // old one-query-at-a-time loop.
  const std::vector<double> estimates =
      network.rank_counting_estimate_batch(ranges);
  WorkloadResult result;
  result.answers.reserve(ranges.size());
  std::vector<units::EffectiveEpsilon> amplified;
  amplified.reserve(ranges.size());
  // The uniform split (and the weighted one under equal weights) hands
  // every query the same epsilon_i, so the amplification map would be
  // re-evaluated on identical inputs B times; memoize the last result
  // (bit-identical: same pure function, same argument).
  double amplified_for = std::numeric_limits<double>::quiet_NaN();
  units::EffectiveEpsilon amplified_value = 0.0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const LaplaceMechanism mechanism(sensitivity, epsilons[i]);
    WorkloadAnswer answer;
    answer.range = ranges[i];
    answer.value = mechanism.perturb(units::Raw<double>(estimates[i]), rng);
    answer.epsilon = epsilons[i];
    // Exact != on purpose: the memo only replays on the identical double,
    // so a hit is byte-for-byte what the direct call would return.
    if (epsilons[i] != amplified_for) {  // lint:allow float-eq
      amplified_for = epsilons[i];
      amplified_value = amplified_epsilon(epsilons[i], p);
    }
    answer.epsilon_amplified = amplified_value;
    answer.noise_variance = mechanism.noise_variance();
    amplified.push_back(answer.epsilon_amplified);
    result.total_epsilon += epsilons[i];
    result.answers.push_back(answer);
  }
  result.total_epsilon_amplified = compose_sequential(amplified);
  return result;
}

}  // namespace prc::dp
