#include "dp/private_counting.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "dp/laplace_mechanism.h"

namespace prc::dp {
namespace {

std::size_t max_node_data_count(const iot::BaseStation& station) {
  std::size_t max_count = 0;
  for (const auto& view : station.node_views()) {
    max_count = std::max(max_count, view.data_count);
  }
  return max_count;
}

}  // namespace

PrivateRangeCounter::PrivateRangeCounter(iot::SamplingNetwork& network,
                                         PrivateCounterConfig config,
                                         std::uint64_t seed)
    : network_(network), config_(config), optimizer_(config.optimizer),
      noise_rng_(seed) {
  if (!(config_.probability_headroom >= 1.0)) {
    throw std::invalid_argument("probability headroom must be >= 1");
  }
}

PerturbationPlan PrivateRangeCounter::ensure_feasible_plan(
    const query::AccuracySpec& spec) {
  spec.validate();
  const std::size_t k = network_.node_count();
  const std::size_t n = network_.total_data_count();

  double target_p = std::max(
      network_.base_station().sampling_probability(),
      optimizer_.minimum_feasible_probability(spec, k, n,
                                              config_.probability_headroom));
  for (;;) {
    network_.ensure_sampling_probability(target_p);
    const double p = network_.base_station().sampling_probability();
    const auto plan = optimizer_.optimize(
        spec, p, k, n, max_node_data_count(network_.base_station()));
    if (plan) return *plan;
    if (p >= 1.0) {
      throw std::runtime_error(
          "accuracy contract " + spec.to_string() +
          " infeasible even with every datum sampled");
    }
    // Escalate: more samples shrink alpha_lo and open the search space.
    target_p = std::min(1.0, p * 1.5);
    PRC_LOG_INFO << "contract " << spec.to_string()
                 << " infeasible at p=" << p << "; topping up to "
                 << target_p;
  }
}

PrivateAnswer PrivateRangeCounter::answer(const query::RangeQuery& range,
                                          const query::AccuracySpec& spec) {
  range.validate();
  PrivateAnswer out;
  out.plan = ensure_feasible_plan(spec);
  out.sampled_estimate = network_.rank_counting_estimate(range);

  const LaplaceMechanism mechanism(out.plan.sensitivity, out.plan.epsilon);
  out.value = mechanism.perturb(out.sampled_estimate, noise_rng_);
  if (config_.clamp_to_domain) {
    out.value = std::clamp(
        out.value, 0.0, static_cast<double>(network_.total_data_count()));
  }
  return out;
}

PerturbationPlan PrivateRangeCounter::plan_for(
    const query::AccuracySpec& spec) const {
  spec.validate();
  const std::size_t k = network_.node_count();
  const std::size_t n = network_.total_data_count();
  double p = std::max(
      network_.base_station().sampling_probability(),
      optimizer_.minimum_feasible_probability(spec, k, n,
                                              config_.probability_headroom));
  for (;;) {
    const auto plan = optimizer_.optimize(
        spec, p, k, n, max_node_data_count(network_.base_station()));
    if (plan) return *plan;
    if (p >= 1.0) {
      throw std::runtime_error(
          "accuracy contract " + spec.to_string() +
          " infeasible even with every datum sampled");
    }
    p = std::min(1.0, p * 1.5);
  }
}

}  // namespace prc::dp
