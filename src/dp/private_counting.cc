#include "dp/private_counting.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "common/check.h"
#include "common/crash_point.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "dp/amplification.h"
#include "dp/laplace_mechanism.h"

namespace prc::dp {
namespace {

std::size_t max_node_data_count(const iot::BaseStation& station) {
  std::size_t max_count = 0;
  for (const auto& view : station.node_views()) {
    max_count = std::max(max_count, view.data_count);
  }
  return max_count;
}

}  // namespace

PrivateRangeCounter::PrivateRangeCounter(iot::SamplingNetwork& network,
                                         PrivateCounterConfig config,
                                         std::uint64_t seed)
    : network_(network), config_(config), optimizer_(config.optimizer),
      noise_rng_(seed) {
  PRC_CHECK(std::isfinite(config_.probability_headroom) &&
            config_.probability_headroom >= 1.0)
      << "probability headroom must be >= 1, got "
      << config_.probability_headroom;
}

PerturbationPlan PrivateRangeCounter::ensure_feasible_plan(
    const query::AccuracySpec& spec) {
  spec.validate();
  PRC_TRACE_SPAN("dp.ensure_feasible_plan");
  static telemetry::Counter& coverage_errors =
      telemetry::counter("dp.coverage_errors");
  static telemetry::Counter& topups = telemetry::counter("dp.topups");
  const std::size_t k = network_.node_count();
  const std::size_t n = network_.total_data_count();

  double target_p = std::max<double>(
      network_.base_station().sampling_probability(),
      optimizer_.minimum_feasible_probability(spec, k, n,
                                              config_.probability_headroom));
  for (;;) {
    network_.ensure_sampling_probability(target_p);
    const double p = network_.base_station().sampling_probability();
    const auto cov = network_.base_station().coverage();
    // Accuracy must be argued from the probability every node actually
    // REACHED, not the round target: a degraded round leaves stragglers at
    // an older p_i, and the Chebyshev bound is only as good as the worst of
    // them.  min_probability == 0 means some node never reported — no
    // finite accuracy statement covers its data.
    const double p_eff = cov.min_probability;
    if (p_eff > 0.0) {
      auto plan = optimizer_.optimize(
          spec, p_eff, k, n, max_node_data_count(network_.base_station()));
      if (plan) {
        if (cov.max_probability > p_eff) {
          // Privacy amplification is per node and weakest for the MOST
          // included node; re-derive the effective budget at max p_i (the
          // optimizer priced it at the conservative accuracy-side p_eff).
          plan->epsilon_amplified =
              amplified_epsilon(plan->epsilon, cov.max_probability);
        }
        return *plan;
      }
    }
    if (p >= 1.0) {
      coverage_errors.increment();
      if (!cov.complete()) {
        throw CoverageError(
            "accuracy contract " + spec.to_string() +
                " unreachable: degraded collection left coverage at " +
                std::to_string(cov.coverage),
            cov);
      }
      throw std::runtime_error(
          "accuracy contract " + spec.to_string() +
          " infeasible even with every datum sampled");
    }
    // Escalate: more samples shrink alpha_lo and open the search space
    // (and re-attempts delivery to nodes that dropped out last round).
    topups.increment();
    target_p = std::min(1.0, p * 1.5);
    PRC_LOG_INFO << "contract " << spec.to_string()
                 << " infeasible at effective p=" << p_eff
                 << "; topping up to " << target_p;
  }
}

PrivateAnswer PrivateRangeCounter::answer(const query::RangeQuery& range,
                                          const query::AccuracySpec& spec,
                                          const MintBarrier& pre_mint) {
  static telemetry::Counter& answers = telemetry::counter("dp.answers");
  static telemetry::Counter& laplace_draws =
      telemetry::counter("dp.laplace_draws");
  static telemetry::Gauge& epsilon_spent_total =
      telemetry::gauge("dp.epsilon_spent_total");
  static telemetry::Histogram& laplace_scale_hist =
      telemetry::histogram("dp.laplace_scale");
  static telemetry::Histogram& answer_duration =
      telemetry::histogram("dp.answer_duration_us");
  range.validate();
  PRC_TRACE_SPAN("dp.answer");
  telemetry::ScopedTimer answer_timer(answer_duration);
  // One release at a time: the noise stream stays serial and the top-up
  // below never interleaves with another seller's.
  std::lock_guard<std::mutex> lock(mutex_);
  PrivateAnswer out;
  // The hold is load-bearing: the feasibility top-up mutates sampling
  // state, and releasing between plan and estimate would let another
  // seller's top-up interleave.
  out.plan = ensure_feasible_plan(spec);  // lint:allow blocking
  out.coverage = network_.base_station().coverage();
  // Same critical section: the estimate must see exactly the round the
  // top-up above committed, and the serial noise stream below must not
  // interleave with another answer's.
  out.sampled_estimate = units::Raw<double>(
      network_.rank_counting_estimate(range));  // lint:allow blocking

  PRC_CHECK_FINITE(out.sampled_estimate.get());
  // Durability barrier: everything above can still fail with nothing
  // released; everything below is a mint the caller promised to account
  // for.  The barrier sees the final plan, so a durable intent written
  // here carries the exact epsilon' the draw below spends.
  if (pre_mint) pre_mint(out.plan);
  const LaplaceMechanism mechanism(out.plan.sensitivity, out.plan.epsilon);
  out.value = mechanism.perturb(out.sampled_estimate, noise_rng_);
  answers.increment();
  laplace_draws.increment();
  epsilon_spent_total.add(out.plan.epsilon_amplified);
  laplace_scale_hist.record(out.plan.laplace_scale);
  // Crash here models dying with budget spent but the sale not yet in the
  // ledger — the orphaned-intent case recovery must charge as spent.
  PRC_CRASH_POINT("dp.post_mint");
  // The release the market audits: a non-finite value or an amplified
  // budget above the base budget would void both the contract and the
  // ledger's composition accounting.
  PRC_CHECK_FINITE(out.value);
  PRC_CHECK(out.plan.epsilon_amplified <= out.plan.epsilon * (1.0 + 1e-12))
      << "amplified budget exceeds base budget: " << out.plan.to_string();
  if (config_.clamp_to_domain) {
    // Clamping a released value is post-processing; re-minting it here is
    // legitimate (PrivateRangeCounter is inside the friend boundary).
    out.value = units::Released<double>(std::clamp(
        out.value.value(), 0.0,
        static_cast<double>(network_.total_data_count())));
  }
  return out;
}

query::AccuracySpec PrivateRangeCounter::degraded_spec(
    const query::AccuracySpec& requested) const {
  requested.validate();
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t k = network_.node_count();
  const std::size_t n = network_.total_data_count();
  const auto cov = network_.base_station().coverage();
  const double p_eff = cov.min_probability;
  if (!(p_eff > 0.0)) {
    throw CoverageError(
        "no degraded contract exists: some node never reported at all", cov);
  }
  query::AccuracySpec spec = requested;
  for (;;) {
    const auto plan = optimizer_.optimize(
        spec, p_eff, k, n, max_node_data_count(network_.base_station()));
    if (plan) return spec;
    if (spec.alpha >= 1.0) {
      throw CoverageError(
          "no degraded contract exists even at alpha = 1 (effective p " +
              std::to_string(p_eff) + ")",
          cov);
    }
    spec.alpha = std::min(1.0, spec.alpha * 1.25);
  }
}

PerturbationPlan PrivateRangeCounter::plan_for(
    const query::AccuracySpec& spec) const {
  spec.validate();
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t k = network_.node_count();
  const std::size_t n = network_.total_data_count();
  double p = std::max<double>(
      network_.base_station().sampling_probability(),
      optimizer_.minimum_feasible_probability(spec, k, n,
                                              config_.probability_headroom));
  for (;;) {
    const auto plan = optimizer_.optimize(
        spec, p, k, n, max_node_data_count(network_.base_station()));
    if (plan) return *plan;
    if (p >= 1.0) {
      throw std::runtime_error(
          "accuracy contract " + spec.to_string() +
          " infeasible even with every datum sampled");
    }
    p = std::min(1.0, p * 1.5);
  }
}

}  // namespace prc::dp
