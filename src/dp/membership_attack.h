// Empirical privacy evaluation: a membership-inference adversary.
//
// Differential privacy upper-bounds what ANY adversary can learn; this
// module implements the strongest black-box membership attacker against a
// count release (the likelihood-ratio test, optimal by Neyman-Pearson) and
// measures its advantage over many trials.  For an epsilon-DP release the
// advantage TPR - FPR is at most (e^eps - 1)/(e^eps + 1); measuring it
// against the *amplified* budget epsilon' demonstrates the paper's
// "strengthened privacy guarantee under differential privacy" claim
// empirically — sampling alone already defeats most of the attacker.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/units.h"

namespace prc::dp {

/// Result of a Monte-Carlo membership experiment.
struct AttackAdvantage {
  double true_positive_rate = 0.0;
  double false_positive_rate = 0.0;
  std::size_t trials = 0;

  /// The attacker's edge over random guessing.
  double advantage() const {
    return true_positive_rate - false_positive_rate;
  }
};

/// The theoretical ceiling on any attacker's advantage under eps-DP:
/// (e^eps - 1) / (e^eps + 1).
double dp_advantage_bound(units::Epsilon epsilon);

/// Runs the likelihood-ratio membership attack against the paper's
/// sample-then-Laplace release of a counting query.
///
/// Setup: the world holds `base_count` records matching the attacker's
/// predicate; the target record (which also matches) is present in half the
/// trials.  Each trial subsamples every record with probability `p`,
/// releases count + Lap(sensitivity/epsilon) with sensitivity 1/p, and the
/// attacker — who knows base_count, p and the noise law — performs the
/// optimal test "guess present iff the released value is closer in
/// log-likelihood to the present-world distribution".
///
/// For tractability the attacker uses the exact convolution of the
/// Binomial subsample with the Laplace noise, evaluated by enumeration
/// (base_count is small in tests).  Requires p in (0, 1], epsilon > 0.
AttackAdvantage run_membership_attack(std::size_t base_count,
                                      units::Probability p,
                                      units::Epsilon epsilon,
                                      std::size_t trials, Rng& rng);

}  // namespace prc::dp
