#include "dp/membership_attack.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/distributions.h"

namespace prc::dp {
namespace {

/// Binomial(n, p) pmf table for c = 0..n, computed by the stable recurrence
/// pmf(c+1) = pmf(c) * (n-c)/(c+1) * p/(1-p).
std::vector<double> binomial_pmf(std::size_t n, double p) {
  std::vector<double> pmf(n + 1, 0.0);
  if (p >= 1.0) {
    pmf[n] = 1.0;
    return pmf;
  }
  pmf[0] = std::pow(1.0 - p, static_cast<double>(n));
  const double ratio = p / (1.0 - p);
  for (std::size_t c = 0; c < n; ++c) {
    pmf[c + 1] = pmf[c] * ratio * static_cast<double>(n - c) /
                 static_cast<double>(c + 1);
  }
  return pmf;
}

/// Density of (Binomial subsample count + Laplace noise) at y.
double mixture_density(const std::vector<double>& pmf, const Laplace& noise,
                       double y) {
  double density = 0.0;
  for (std::size_t c = 0; c < pmf.size(); ++c) {
    density += pmf[c] * noise.pdf(y - static_cast<double>(c));
  }
  return density;
}

}  // namespace

double dp_advantage_bound(units::Epsilon epsilon_in) {
  const double epsilon = epsilon_in.value();
  PRC_CHECK(std::isfinite(epsilon) && epsilon >= 0.0)
      << "epsilon must be >= 0, got " << epsilon;
  return std::expm1(epsilon) / (std::exp(epsilon) + 1.0);
}

AttackAdvantage run_membership_attack(std::size_t base_count,
                                      units::Probability p_in,
                                      units::Epsilon epsilon_in,
                                      std::size_t trials, Rng& rng) {
  const double p = p_in.value();
  const double epsilon = epsilon_in.value();
  PRC_CHECK_PROB(p);
  PRC_CHECK(std::isfinite(epsilon) && epsilon > 0.0)
      << "epsilon must be positive, got " << epsilon;
  PRC_CHECK(trials > 0) << "need >= 1 trial";

  // The mechanism: subsample the matching records at p, release the sampled
  // count + Lap(1/epsilon) (sensitivity 1 on the sample — exactly the
  // Lemma 3.4 composition whose amplified budget is ln(1 - p + p e^eps)).
  const Laplace noise(1.0 / epsilon);
  const auto pmf_absent = binomial_pmf(base_count, p);
  const auto pmf_present = binomial_pmf(base_count + 1, p);

  std::size_t true_positives = 0, positives_possible = 0;
  std::size_t false_positives = 0, negatives_possible = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const bool present = rng.bernoulli(0.5);
    std::size_t sampled = 0;
    const std::size_t population = base_count + (present ? 1 : 0);
    for (std::size_t i = 0; i < population; ++i) {
      if (rng.bernoulli(p)) ++sampled;
    }
    const double released =
        static_cast<double>(sampled) + noise.sample(rng);

    // Optimal (Neyman-Pearson) decision at threshold 1.
    const bool guess_present =
        mixture_density(pmf_present, noise, released) >
        mixture_density(pmf_absent, noise, released);
    if (present) {
      ++positives_possible;
      if (guess_present) ++true_positives;
    } else {
      ++negatives_possible;
      if (guess_present) ++false_positives;
    }
  }
  AttackAdvantage result;
  result.trials = trials;
  if (positives_possible > 0) {
    result.true_positive_rate = static_cast<double>(true_positives) /
                                static_cast<double>(positives_possible);
  }
  if (negatives_possible > 0) {
    result.false_positive_rate = static_cast<double>(false_positives) /
                                 static_cast<double>(negatives_possible);
  }
  return result;
}

}  // namespace prc::dp
