// The perturbation optimizer (paper §III-B, problem (3)).
//
// Given the customer contract (alpha, delta), the cached sampling
// probability p, node count k and data count n, pick the intermediate
// accuracy split (alpha', delta') and Laplace budget epsilon that minimize
// the *amplified* budget epsilon' = ln(1 + p(e^epsilon - 1)), subject to the
// composed answer still meeting (alpha, delta):
//
//   delta' = 1 - 8k / (p alpha' n)^2          (samples reused at fixed p)
//   delta' >  delta,  alpha' < alpha
//   Pr[|Lap| <= (alpha - alpha') n] >= delta / delta'
//     => epsilon >= (sens / ((alpha - alpha') n)) * ln(delta' / (delta' - delta))
//
// The continuous alpha' domain is searched on a uniform grid, as the paper
// prescribes ("we can approximate it to a discrete domain with arbitrarily
// small intervals").
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "dp/laplace_mechanism.h"
#include "query/range_query.h"

namespace prc::dp {

/// The optimizer's output: a concrete two-phase plan.
struct PerturbationPlan {
  units::Alpha alpha = 0.0;        ///< customer error bound
  units::Delta delta = 0.0;        ///< customer confidence
  units::Alpha alpha_prime = 0.0;  ///< sampling-phase error bound
  units::Delta delta_prime = 0.0;  ///< sampling-phase confidence
  units::Epsilon epsilon = 0.0;    ///< Laplace budget before amplification
  /// Effective budget ln(1 + p(e^eps - 1)) — what the ledger composes.
  units::EffectiveEpsilon epsilon_amplified = 0.0;
  double sensitivity = 0.0;   ///< Delta gamma_hat used for the noise scale
  double laplace_scale = 0.0; ///< sensitivity / epsilon
  units::Probability sampling_probability = 0.0;

  /// Total variance of the released answer under this plan: the sampling
  /// variance bound 8k/p^2 plus the Laplace noise variance 2 (sens/eps)^2.
  double total_variance(std::size_t node_count) const;

  std::string to_string() const;
};

struct OptimizerConfig {
  /// Number of alpha' grid points searched in (0, alpha).
  std::size_t grid_points = 512;
  /// Sensitivity policy for Delta gamma_hat (paper default: expected, 1/p).
  SensitivityPolicy sensitivity_policy = SensitivityPolicy::kExpected;
};

class PerturbationOptimizer {
 public:
  explicit PerturbationOptimizer(OptimizerConfig config = {});

  /// Finds the minimum-epsilon' plan, or nullopt when no alpha' split is
  /// feasible at this sampling probability (the caller must raise p first).
  /// `max_node_count` is only consulted by the worst-case sensitivity
  /// policy.  Requires p in (0, 1], node_count > 0, total_count > 0.
  std::optional<PerturbationPlan> optimize(const query::AccuracySpec& spec,
                                           units::Probability p,
                                           std::size_t node_count,
                                           std::size_t total_count,
                                           std::size_t max_node_count = 0) const;

  /// The smallest sampling probability at which optimize() can succeed for
  /// `spec` — i.e. some alpha' < alpha achieves delta' > delta with room for
  /// noise.  Used by the broker to decide how far to top up the samples.
  /// A small headroom factor (> 1) leaves slack for the noise phase.
  units::Probability minimum_feasible_probability(
      const query::AccuracySpec& spec, std::size_t node_count,
      std::size_t total_count, double headroom = 2.0) const;

 private:
  OptimizerConfig config_;
};

}  // namespace prc::dp
