// The perturbation optimizer (paper §III-B, problem (3)).
//
// Given the customer contract (alpha, delta), the cached sampling
// probability p, node count k and data count n, pick the intermediate
// accuracy split (alpha', delta') and Laplace budget epsilon that minimize
// the *amplified* budget epsilon' = ln(1 + p(e^epsilon - 1)), subject to the
// composed answer still meeting (alpha, delta):
//
//   delta' = 1 - 8k / (p alpha' n)^2          (samples reused at fixed p)
//   delta' >  delta,  alpha' < alpha
//   Pr[|Lap| <= (alpha - alpha') n] >= delta / delta'
//     => epsilon >= (sens / ((alpha - alpha') n)) * ln(delta' / (delta' - delta))
//
// The paper prescribes a discretized search ("we can approximate it to a
// discrete domain with arbitrarily small intervals"), but the structure of
// the objective makes brute force unnecessary:
//
//   * epsilon' is strictly increasing in epsilon at fixed p, so minimizing
//     epsilon(alpha') directly minimizes epsilon' — the amplification map
//     needs to be evaluated ONCE, for the winner, not per candidate;
//   * epsilon(alpha') diverges at both ends of the feasible interval
//     (delta' -> delta at alpha_lo, noise headroom -> 0 at alpha) and is
//     unimodal in between, so a coarse bracket plus golden-section
//     refinement converges to the continuous optimum in a few dozen
//     evaluations instead of hundreds of grid points.
//
// The default strategy is that coarse-to-fine search; kExhaustiveGrid keeps
// the original fixed uniform grid as a reference implementation for the
// property tests.  Results are additionally memoized in a PlanCache (see
// plan_cache.h) because a market re-plans the same few contracts constantly.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "dp/laplace_mechanism.h"
#include "query/range_query.h"

namespace prc::dp {

class PlanCache;

/// The optimizer's output: a concrete two-phase plan.
struct PerturbationPlan {
  units::Alpha alpha = 0.0;        ///< customer error bound
  units::Delta delta = 0.0;        ///< customer confidence
  units::Alpha alpha_prime = 0.0;  ///< sampling-phase error bound
  units::Delta delta_prime = 0.0;  ///< sampling-phase confidence
  units::Epsilon epsilon = 0.0;    ///< Laplace budget before amplification
  /// Effective budget ln(1 + p(e^eps - 1)) — what the ledger composes.
  units::EffectiveEpsilon epsilon_amplified = 0.0;
  double sensitivity = 0.0;   ///< Delta gamma_hat used for the noise scale
  double laplace_scale = 0.0; ///< sensitivity / epsilon
  units::Probability sampling_probability = 0.0;

  /// Total variance of the released answer under this plan: the sampling
  /// variance bound 8k/p^2 plus the Laplace noise variance 2 (sens/eps)^2.
  double total_variance(std::size_t node_count) const;

  std::string to_string() const;
};

/// How optimize() searches the continuous alpha' domain.
enum class SearchStrategy {
  /// Coarse bracket (coarse_points evaluations), then golden-section
  /// refinement of the winning bracket down to refine_tolerance.
  kCoarseToFine,
  /// The original fixed uniform grid of grid_points candidates.  Kept as
  /// the reference implementation the property tests compare against.
  kExhaustiveGrid,
};

struct OptimizerConfig {
  /// Number of alpha' grid points searched in (alpha_lo, alpha) by the
  /// kExhaustiveGrid strategy.
  std::size_t grid_points = 512;
  /// Sensitivity policy for Delta gamma_hat (paper default: expected, 1/p).
  SensitivityPolicy sensitivity_policy = SensitivityPolicy::kExpected;
  SearchStrategy search_strategy = SearchStrategy::kCoarseToFine;
  /// Coarse-bracket resolution for kCoarseToFine.  The bracket only needs
  /// to isolate the unimodal minimum, not approximate it.
  std::size_t coarse_points = 16;
  /// Golden-section stopping width, as a fraction of the feasible interval
  /// (alpha - alpha_lo).  1e-10 leaves the refined alpha' within ~1e-10 of
  /// the continuous optimum — far below any grid the paper contemplates.
  double refine_tolerance = 1e-10;
  /// Hard iteration cap on the refinement loop (each iteration shrinks the
  /// bracket by the golden ratio, so 128 is unreachable in practice).
  std::size_t max_refine_iterations = 128;
  /// Entries held by the memoized plan cache; 0 disables caching (used by
  /// property tests that want every call to exercise the raw search).
  std::size_t plan_cache_capacity = 1024;
};

class PerturbationOptimizer {
 public:
  explicit PerturbationOptimizer(OptimizerConfig config = {});
  ~PerturbationOptimizer();

  // The plan cache is identity-bearing state (shared across the threads
  // that hold this optimizer), so the optimizer is move-only.
  PerturbationOptimizer(PerturbationOptimizer&&) noexcept;
  PerturbationOptimizer& operator=(PerturbationOptimizer&&) noexcept;

  /// Finds the minimum-epsilon' plan, or nullopt when no alpha' split is
  /// feasible at this sampling probability (the caller must raise p first).
  /// `max_node_count` is only consulted by the worst-case sensitivity
  /// policy.  Requires p in (0, 1], node_count > 0, total_count > 0.
  ///
  /// Memoized: a repeated argument tuple is served from the plan cache
  /// bit-identically (same bytes the original search computed), without
  /// re-running the search or the amplification map.  Thread-safe.
  std::optional<PerturbationPlan> optimize(const query::AccuracySpec& spec,
                                           units::Probability p,
                                           std::size_t node_count,
                                           std::size_t total_count,
                                           std::size_t max_node_count = 0) const;

  /// The smallest sampling probability at which optimize() can succeed for
  /// `spec` — i.e. some alpha' < alpha achieves delta' > delta with room for
  /// noise.  Used by the broker to decide how far to top up the samples.
  /// A small headroom factor (> 1) leaves slack for the noise phase.
  units::Probability minimum_feasible_probability(
      const query::AccuracySpec& spec, std::size_t node_count,
      std::size_t total_count, double headroom = 2.0) const;

 private:
  std::optional<PerturbationPlan> search(const query::AccuracySpec& spec,
                                         units::Probability p,
                                         std::size_t node_count,
                                         std::size_t total_count,
                                         double sensitivity,
                                         units::Alpha alpha_lo) const;

  OptimizerConfig config_;
  std::unique_ptr<PlanCache> plan_cache_;
};

}  // namespace prc::dp
