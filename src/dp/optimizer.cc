#include "dp/optimizer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "dp/amplification.h"
#include "estimator/accuracy.h"
#include "estimator/rank_counting.h"

namespace prc::dp {

double PerturbationPlan::total_variance(std::size_t node_count) const {
  const double sampling_var =
      estimator::rank_counting_variance_bound(node_count,
                                              sampling_probability);
  const double noise_var = 2.0 * laplace_scale * laplace_scale;
  return sampling_var + noise_var;
}

std::string PerturbationPlan::to_string() const {
  std::ostringstream out;
  out << "plan{alpha'=" << alpha_prime << ", delta'=" << delta_prime
      << ", eps=" << epsilon << ", eps'=" << epsilon_amplified
      << ", scale=" << laplace_scale << ", p=" << sampling_probability << '}';
  return out.str();
}

PerturbationOptimizer::PerturbationOptimizer(OptimizerConfig config)
    : config_(config) {
  PRC_CHECK(config_.grid_points >= 2) << "optimizer needs >= 2 grid points";
}

std::optional<PerturbationPlan> PerturbationOptimizer::optimize(
    const query::AccuracySpec& spec, units::Probability p,
    std::size_t node_count, std::size_t total_count,
    std::size_t max_node_count) const {
  spec.validate();
  PRC_CHECK_PROB(p);
  PRC_CHECK(node_count > 0 && total_count > 0)
      << "need node_count > 0 and total_count > 0";
  PRC_TRACE_SPAN("dp.optimize");
  telemetry::ScopedTimer optimize_timer(
      telemetry::histogram("dp.optimize_duration_us"));
  telemetry::counter("dp.optimize_calls").increment();
  const double n = static_cast<double>(total_count);
  const double sensitivity =
      sensitivity_for(config_.sensitivity_policy, p, max_node_count);

  // alpha' must exceed this for the sampling phase to reach delta' > delta
  // at the cached p; it must stay below alpha to leave room for noise.
  const double alpha_lo =
      estimator::min_feasible_alpha(p, spec.delta, node_count, total_count);
  if (!(alpha_lo < spec.alpha)) {
    telemetry::counter("dp.optimize_infeasible").increment();
    return std::nullopt;
  }

  std::optional<PerturbationPlan> best;
  const std::size_t grid = config_.grid_points;
  telemetry::counter("dp.grid_evaluations").increment(grid);
  for (std::size_t i = 1; i <= grid; ++i) {
    // Open interval (alpha_lo, alpha): both endpoints are degenerate
    // (delta' == delta at alpha_lo; zero noise headroom at alpha).
    const double alpha_prime =
        alpha_lo + (spec.alpha - alpha_lo) * static_cast<double>(i) /
                       static_cast<double>(grid + 1);
    const double delta_prime =
        estimator::achieved_delta(p, alpha_prime, node_count, total_count);
    if (!(delta_prime > spec.delta)) continue;  // fp guard near alpha_lo

    const double headroom = (spec.alpha - alpha_prime) * n;
    const double epsilon = sensitivity / headroom *
                           std::log(delta_prime / (delta_prime - spec.delta));
    if (!std::isfinite(epsilon) || !(epsilon > 0.0)) continue;
    const units::EffectiveEpsilon eps_amp = amplified_epsilon(epsilon, p);
    if (!best || eps_amp < best->epsilon_amplified) {
      PerturbationPlan plan;
      plan.alpha = spec.alpha;
      plan.delta = spec.delta;
      plan.alpha_prime = alpha_prime;
      plan.delta_prime = delta_prime;
      plan.epsilon = epsilon;
      plan.epsilon_amplified = eps_amp;
      plan.sensitivity = sensitivity;
      plan.laplace_scale = sensitivity / epsilon;
      plan.sampling_probability = p;
      best = plan;
    }
  }
  if (best) {
    // The plan the market layer audits must sit strictly inside the
    // theorem's feasible region: the split leaves room for both phases
    // and sub-sampling amplification only ever shrinks the budget.
    PRC_DCHECK(best->alpha_prime > alpha_lo && best->alpha_prime < spec.alpha)
        << "alpha' must lie in (alpha_lo, alpha): " << best->to_string();
    PRC_DCHECK(best->delta_prime > spec.delta)
        << "delta' must exceed delta: " << best->to_string();
    PRC_DCHECK(best->epsilon_amplified <= best->epsilon * (1.0 + 1e-12))
        << "amplified budget must not exceed the base budget: "
        << best->to_string();
    PRC_DCHECK(std::isfinite(best->laplace_scale) && best->laplace_scale > 0.0)
        << "plan needs a positive finite noise scale: " << best->to_string();
    telemetry::histogram("dp.epsilon_amplified").record(best->epsilon_amplified);
  } else {
    telemetry::counter("dp.optimize_infeasible").increment();
  }
  return best;
}

units::Probability PerturbationOptimizer::minimum_feasible_probability(
    const query::AccuracySpec& spec, std::size_t node_count,
    std::size_t total_count, double headroom) const {
  PRC_CHECK(std::isfinite(headroom) && headroom >= 1.0)
      << "headroom must be >= 1, got " << headroom;
  const double required = estimator::required_sampling_probability(
      spec, node_count, total_count);
  return std::min(1.0, required * headroom);
}

}  // namespace prc::dp
