#include "dp/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "dp/amplification.h"
#include "dp/plan_cache.h"
#include "estimator/accuracy.h"
#include "estimator/rank_counting.h"

namespace prc::dp {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();
// 1/phi = (sqrt(5) - 1) / 2, spelled as a literal so every build computes
// the exact same bracket sequence (bit-identical plans are a cache and
// determinism invariant, not just a nicety).
constexpr double kInvGolden = 0.6180339887498949;

/// The constraint system of problem (3) at one candidate alpha': the
/// minimal Laplace budget epsilon that keeps the noise-phase tail bound,
/// or +inf when the candidate is infeasible (delta' <= delta near alpha_lo,
/// or no positive finite budget exists).  epsilon' = ln(1 + p(e^eps - 1))
/// is strictly increasing in eps at fixed p, so comparing candidates by
/// eps orders them exactly as epsilon' would — amplification is applied
/// once, to the winner, never per candidate.
struct SplitObjective {
  const query::AccuracySpec& spec;
  double p;
  std::size_t node_count;
  std::size_t total_count;
  double sensitivity;

  double epsilon_at(units::Alpha alpha_prime, units::Delta* delta_prime_out)
      const {
    const double delta_prime =
        estimator::achieved_delta(p, alpha_prime, node_count, total_count);
    if (!(delta_prime > spec.delta)) return kInfinity;  // fp guard at alpha_lo
    const double headroom =
        (spec.alpha - alpha_prime) * static_cast<double>(total_count);
    const double epsilon =
        sensitivity / headroom *
        std::log(delta_prime / (delta_prime - spec.delta));
    if (!std::isfinite(epsilon) || !(epsilon > 0.0)) return kInfinity;
    if (delta_prime_out != nullptr) *delta_prime_out = delta_prime;
    return epsilon;
  }
};

}  // namespace

double PerturbationPlan::total_variance(std::size_t node_count) const {
  const double sampling_var =
      estimator::rank_counting_variance_bound(node_count,
                                              sampling_probability);
  const double noise_var = 2.0 * laplace_scale * laplace_scale;
  return sampling_var + noise_var;
}

std::string PerturbationPlan::to_string() const {
  std::ostringstream out;
  out << "plan{alpha'=" << alpha_prime << ", delta'=" << delta_prime
      << ", eps=" << epsilon << ", eps'=" << epsilon_amplified
      << ", scale=" << laplace_scale << ", p=" << sampling_probability << '}';
  return out.str();
}

PerturbationOptimizer::PerturbationOptimizer(OptimizerConfig config)
    : config_(config),
      plan_cache_(std::make_unique<PlanCache>(config.plan_cache_capacity)) {
  PRC_CHECK(config_.grid_points >= 2) << "optimizer needs >= 2 grid points";
  PRC_CHECK(config_.coarse_points >= 2)
      << "optimizer needs >= 2 coarse points";
  PRC_CHECK(std::isfinite(config_.refine_tolerance) &&
            config_.refine_tolerance > 0.0)
      << "refine_tolerance must be a positive fraction, got "
      << config_.refine_tolerance;
}

PerturbationOptimizer::~PerturbationOptimizer() = default;
PerturbationOptimizer::PerturbationOptimizer(PerturbationOptimizer&&) noexcept =
    default;
PerturbationOptimizer& PerturbationOptimizer::operator=(
    PerturbationOptimizer&&) noexcept = default;

std::optional<PerturbationPlan> PerturbationOptimizer::optimize(
    const query::AccuracySpec& spec, units::Probability p,
    std::size_t node_count, std::size_t total_count,
    std::size_t max_node_count) const {
  static telemetry::Counter& optimize_calls =
      telemetry::counter("dp.optimize_calls");
  static telemetry::Counter& optimize_infeasible =
      telemetry::counter("dp.optimize_infeasible");
  static telemetry::Histogram& epsilon_amplified_hist =
      telemetry::histogram("dp.epsilon_amplified");
  static telemetry::Histogram& optimize_duration =
      telemetry::histogram("dp.optimize_duration_us");
  spec.validate();
  PRC_CHECK_PROB(p);
  PRC_CHECK(node_count > 0 && total_count > 0)
      << "need node_count > 0 and total_count > 0";
  PRC_TRACE_SPAN("dp.optimize");
  telemetry::ScopedTimer optimize_timer(optimize_duration);
  optimize_calls.increment();

  const auto key = PlanCacheKey::make(spec.alpha, spec.delta, p, node_count,
                                      total_count, max_node_count,
                                      config_.sensitivity_policy);
  if (auto cached = plan_cache_->lookup(key)) {
    // Bit-identical replay of the original search's verdict: no grid
    // evaluations, no amplification call, no histogram skew (the same
    // epsilon' the miss recorded is recorded again, once per answer).
    if (*cached) epsilon_amplified_hist.record((*cached)->epsilon_amplified);
    return *cached;
  }

  const double sensitivity =
      sensitivity_for(config_.sensitivity_policy, p, max_node_count);
  // alpha' must exceed this for the sampling phase to reach delta' > delta
  // at the cached p; it must stay below alpha to leave room for noise.
  const double alpha_lo =
      estimator::min_feasible_alpha(p, spec.delta, node_count, total_count);
  if (!(alpha_lo < spec.alpha)) {
    optimize_infeasible.increment();
    plan_cache_->put(key, std::nullopt);
    return std::nullopt;
  }

  std::optional<PerturbationPlan> best =
      search(spec, p, node_count, total_count, sensitivity, alpha_lo);
  if (best) {
    // The plan the market layer audits must sit strictly inside the
    // theorem's feasible region: the split leaves room for both phases
    // and sub-sampling amplification only ever shrinks the budget.
    PRC_DCHECK(best->alpha_prime > alpha_lo && best->alpha_prime < spec.alpha)
        << "alpha' must lie in (alpha_lo, alpha): " << best->to_string();
    PRC_DCHECK(best->delta_prime > spec.delta)
        << "delta' must exceed delta: " << best->to_string();
    PRC_DCHECK(best->epsilon_amplified <= best->epsilon * (1.0 + 1e-12))
        << "amplified budget must not exceed the base budget: "
        << best->to_string();
    PRC_DCHECK(std::isfinite(best->laplace_scale) && best->laplace_scale > 0.0)
        << "plan needs a positive finite noise scale: " << best->to_string();
    epsilon_amplified_hist.record(best->epsilon_amplified);
  } else {
    optimize_infeasible.increment();
  }
  plan_cache_->put(key, best);
  return best;
}

std::optional<PerturbationPlan> PerturbationOptimizer::search(
    const query::AccuracySpec& spec, units::Probability p,
    std::size_t node_count, std::size_t total_count, double sensitivity,
    units::Alpha alpha_lo) const {
  static telemetry::Counter& grid_evaluations =
      telemetry::counter("dp.grid_evaluations");
  static telemetry::Counter& refine_iterations =
      telemetry::counter("dp.refine_iterations");
  const SplitObjective objective{spec, p, node_count, total_count,
                                 sensitivity};
  const double width = spec.alpha - alpha_lo;

  double best_alpha = 0.0;
  double best_epsilon = kInfinity;

  if (config_.search_strategy == SearchStrategy::kExhaustiveGrid) {
    const std::size_t grid = config_.grid_points;
    grid_evaluations.increment(grid);
    for (std::size_t i = 1; i <= grid; ++i) {
      // Open interval (alpha_lo, alpha): both endpoints are degenerate
      // (delta' == delta at alpha_lo; zero noise headroom at alpha).
      const double alpha_prime =
          alpha_lo +
          width * static_cast<double>(i) / static_cast<double>(grid + 1);
      const double epsilon = objective.epsilon_at(alpha_prime, nullptr);
      if (epsilon < best_epsilon) {
        best_epsilon = epsilon;
        best_alpha = alpha_prime;
      }
    }
  } else {
    // Coarse bracket: locate which sub-interval holds the minimum of the
    // unimodal objective (it diverges at both ends, so the best coarse
    // point's neighbors always bracket the true optimum).
    const std::size_t coarse = config_.coarse_points;
    grid_evaluations.increment(coarse);
    std::size_t best_index = 0;
    for (std::size_t i = 1; i <= coarse; ++i) {
      const double alpha_prime =
          alpha_lo +
          width * static_cast<double>(i) / static_cast<double>(coarse + 1);
      const double epsilon = objective.epsilon_at(alpha_prime, nullptr);
      if (epsilon < best_epsilon) {
        best_epsilon = epsilon;
        best_alpha = alpha_prime;
        best_index = i;
      }
    }
    if (best_index > 0) {
      // Golden-section refinement inside [best-1, best+1] (clamped to the
      // open interval's ends, which the section never evaluates).
      const auto coarse_alpha = [&](std::size_t i) {
        return alpha_lo +
               width * static_cast<double>(i) / static_cast<double>(coarse + 1);
      };
      double lo =
          best_index == 1 ? alpha_lo.value() : coarse_alpha(best_index - 1);
      double hi = best_index == coarse ? spec.alpha.value()
                                       : coarse_alpha(best_index + 1);
      const double tolerance = width * config_.refine_tolerance;
      double probe_lo = hi - kInvGolden * (hi - lo);
      double probe_hi = lo + kInvGolden * (hi - lo);
      double eps_lo = objective.epsilon_at(probe_lo, nullptr);
      double eps_hi = objective.epsilon_at(probe_hi, nullptr);
      std::uint64_t iterations = 2;
      while (hi - lo > tolerance &&
             iterations < config_.max_refine_iterations) {
        if (eps_lo < eps_hi) {
          hi = probe_hi;
          probe_hi = probe_lo;
          eps_hi = eps_lo;
          probe_lo = hi - kInvGolden * (hi - lo);
          eps_lo = objective.epsilon_at(probe_lo, nullptr);
        } else {
          lo = probe_lo;
          probe_lo = probe_hi;
          eps_lo = eps_hi;
          probe_hi = lo + kInvGolden * (hi - lo);
          eps_hi = objective.epsilon_at(probe_hi, nullptr);
        }
        ++iterations;
      }
      refine_iterations.increment(iterations);
      if (eps_lo < best_epsilon) {
        best_epsilon = eps_lo;
        best_alpha = probe_lo;
      }
      if (eps_hi < best_epsilon) {
        best_epsilon = eps_hi;
        best_alpha = probe_hi;
      }
    }
  }

  if (!std::isfinite(best_epsilon)) return std::nullopt;
  units::Delta delta_prime = 0.0;
  const double epsilon = objective.epsilon_at(best_alpha, &delta_prime);
  // Exact == on purpose: the objective is a pure function, so re-evaluating
  // the winning alpha' must reproduce the identical double (bit-for-bit
  // determinism is what the plan cache and parallel market rely on).
  PRC_DCHECK(epsilon == best_epsilon)  // lint:allow float-eq
      << "re-evaluating the winning alpha' must reproduce its objective";
  // The single amplification evaluation of the whole search (monotonicity
  // of eps' in eps made per-candidate calls redundant).
  const units::EffectiveEpsilon eps_amp = amplified_epsilon(epsilon, p);
  PerturbationPlan plan;
  plan.alpha = spec.alpha;
  plan.delta = spec.delta;
  plan.alpha_prime = best_alpha;
  plan.delta_prime = delta_prime;
  plan.epsilon = epsilon;
  plan.epsilon_amplified = eps_amp;
  plan.sensitivity = sensitivity;
  plan.laplace_scale = sensitivity / epsilon;
  plan.sampling_probability = p;
  return plan;
}

units::Probability PerturbationOptimizer::minimum_feasible_probability(
    const query::AccuracySpec& spec, std::size_t node_count,
    std::size_t total_count, double headroom) const {
  PRC_CHECK(std::isfinite(headroom) && headroom >= 1.0)
      << "headroom must be >= 1, got " << headroom;
  const double required = estimator::required_sampling_probability(
      spec, node_count, total_count);
  return std::min(1.0, required * headroom);
}

}  // namespace prc::dp
