#include "dp/optimizer.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "dp/amplification.h"
#include "estimator/accuracy.h"
#include "estimator/rank_counting.h"

namespace prc::dp {

double PerturbationPlan::total_variance(std::size_t node_count) const {
  const double sampling_var =
      estimator::rank_counting_variance_bound(node_count,
                                              sampling_probability);
  const double noise_var = 2.0 * laplace_scale * laplace_scale;
  return sampling_var + noise_var;
}

std::string PerturbationPlan::to_string() const {
  std::ostringstream out;
  out << "plan{alpha'=" << alpha_prime << ", delta'=" << delta_prime
      << ", eps=" << epsilon << ", eps'=" << epsilon_amplified
      << ", scale=" << laplace_scale << ", p=" << sampling_probability << '}';
  return out.str();
}

PerturbationOptimizer::PerturbationOptimizer(OptimizerConfig config)
    : config_(config) {
  if (config_.grid_points < 2) {
    throw std::invalid_argument("optimizer needs >= 2 grid points");
  }
}

std::optional<PerturbationPlan> PerturbationOptimizer::optimize(
    const query::AccuracySpec& spec, double p, std::size_t node_count,
    std::size_t total_count, std::size_t max_node_count) const {
  spec.validate();
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("p must be in (0, 1]");
  }
  if (node_count == 0 || total_count == 0) {
    throw std::invalid_argument("need node_count > 0 and total_count > 0");
  }
  const double n = static_cast<double>(total_count);
  const double sensitivity =
      sensitivity_for(config_.sensitivity_policy, p, max_node_count);

  // alpha' must exceed this for the sampling phase to reach delta' > delta
  // at the cached p; it must stay below alpha to leave room for noise.
  const double alpha_lo =
      estimator::min_feasible_alpha(p, spec.delta, node_count, total_count);
  if (!(alpha_lo < spec.alpha)) return std::nullopt;

  std::optional<PerturbationPlan> best;
  const std::size_t grid = config_.grid_points;
  for (std::size_t i = 1; i <= grid; ++i) {
    // Open interval (alpha_lo, alpha): both endpoints are degenerate
    // (delta' == delta at alpha_lo; zero noise headroom at alpha).
    const double alpha_prime =
        alpha_lo + (spec.alpha - alpha_lo) * static_cast<double>(i) /
                       static_cast<double>(grid + 1);
    const double delta_prime =
        estimator::achieved_delta(p, alpha_prime, node_count, total_count);
    if (!(delta_prime > spec.delta)) continue;  // fp guard near alpha_lo

    const double headroom = (spec.alpha - alpha_prime) * n;
    const double epsilon = sensitivity / headroom *
                           std::log(delta_prime / (delta_prime - spec.delta));
    if (!std::isfinite(epsilon) || !(epsilon > 0.0)) continue;
    const double eps_amp = amplified_epsilon(epsilon, p);
    if (!best || eps_amp < best->epsilon_amplified) {
      PerturbationPlan plan;
      plan.alpha = spec.alpha;
      plan.delta = spec.delta;
      plan.alpha_prime = alpha_prime;
      plan.delta_prime = delta_prime;
      plan.epsilon = epsilon;
      plan.epsilon_amplified = eps_amp;
      plan.sensitivity = sensitivity;
      plan.laplace_scale = sensitivity / epsilon;
      plan.sampling_probability = p;
      best = plan;
    }
  }
  return best;
}

double PerturbationOptimizer::minimum_feasible_probability(
    const query::AccuracySpec& spec, std::size_t node_count,
    std::size_t total_count, double headroom) const {
  if (!(headroom >= 1.0)) {
    throw std::invalid_argument("headroom must be >= 1");
  }
  const double required = estimator::required_sampling_probability(
      spec, node_count, total_count);
  return std::min(1.0, required * headroom);
}

}  // namespace prc::dp
