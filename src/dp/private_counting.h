// End-to-end differentially private (alpha, delta)-range counting.
//
// PrivateRangeCounter glues the pipeline of paper §III together:
//   1. top up the network's sample cache until the optimizer has a feasible
//      (alpha', delta') split for the requested contract,
//   2. compute the RankCounting estimate from the cache,
//   3. perturb it with the optimizer's minimum-budget Laplace plan,
//   4. release the noisy answer together with the plan (the plan carries the
//      effective amplified budget epsilon', which the market layer audits).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "dp/optimizer.h"
#include "iot/sampling_network.h"
#include "query/range_query.h"

namespace prc::dp {

/// Raised when degraded collection (offline nodes, dropped frames) leaves
/// the sample cache unable to support the requested accuracy contract, even
/// after escalating the round target all the way to p = 1.  Carries the
/// coverage snapshot so the caller can decide between refusing the query
/// and re-quoting a weaker contract the cache CAN support.
class CoverageError : public std::runtime_error {
 public:
  CoverageError(const std::string& what, iot::CoverageSummary coverage)
      : std::runtime_error(what), coverage_(coverage) {}

  const iot::CoverageSummary& coverage() const noexcept { return coverage_; }

 private:
  iot::CoverageSummary coverage_;
};

/// One private release.
struct PrivateAnswer {
  /// The released count (clamped to >= 0 when configured; counts are
  /// nonnegative and clamping is post-processing, so DP is unaffected).
  /// Released<double>: minting happens only inside the DP layer, so a
  /// PrivateAnswer can never carry an unperturbed value here.
  units::Released<double> value;
  /// The pre-noise sampling estimate (internal; never released to consumers
  /// by the market layer).  Raw<double>: does not convert to double, so it
  /// cannot silently flow into a receipt, ledger entry or telemetry call.
  units::Raw<double> sampled_estimate;
  /// The plan the answer was produced under.
  PerturbationPlan plan;
  /// Cache coverage at answer time.  A complete() summary means the plan's
  /// contract holds exactly as quoted; otherwise the accuracy phase was run
  /// against the smallest effective per-node probability.
  iot::CoverageSummary coverage;
};

/// Durability hook invoked by answer() with the FINAL perturbation plan —
/// after feasibility/top-up settles the plan, immediately before the
/// Laplace draw mints the release.  The market layer uses it to flush a
/// write-ahead intent record carrying the exact epsilon' about to be
/// spent, so a crash after the mint can only ever over-count released
/// budget.  A barrier that throws aborts the answer with nothing released
/// (no noise has been drawn yet).
using MintBarrier = std::function<void(const PerturbationPlan&)>;

struct PrivateCounterConfig {
  OptimizerConfig optimizer;
  /// Multiplier on the Theorem 3.3 probability when topping up, leaving
  /// headroom for the noise phase.  Must be >= 1.
  double probability_headroom = 2.0;
  /// Clamp released counts to [0, n].
  bool clamp_to_domain = true;
};

/// Thread-safety: answer(), plan_for() and degraded_spec() serialize on an
/// internal mutex — concurrent sellers (market::MarketSimulation's
/// concurrent-consumers mode) may share one counter.  The lock covers both
/// the shared noise stream (every Laplace draw must come from ONE serial
/// stream or the privacy accounting of the released values falls apart) and
/// the network top-ups answer() performs (the sample cache is mutated
/// through a plain reference).  Const readers that bypass the counter and
/// touch the network directly are safe only through the BaseStation's own
/// mutex (coverage(), estimates); anything else requires quiescence.
class PrivateRangeCounter {
 public:
  /// The counter drives `network` (tops up its samples); the network must
  /// outlive the counter.  `seed` feeds the noise stream.
  PrivateRangeCounter(iot::SamplingNetwork& network,
                      PrivateCounterConfig config = {},
                      std::uint64_t seed = 97);

  /// Serves one (alpha, delta)-range counting request.  Throws
  /// std::runtime_error if the contract is infeasible even with every datum
  /// sampled (p = 1), or CoverageError when the cache cannot reach the
  /// contract because of degraded collection (the caller may retry with
  /// degraded_spec()).  `pre_mint`, when set, runs with the final plan
  /// just before the noise draw (see MintBarrier).
  PrivateAnswer answer(const query::RangeQuery& range,
                       const query::AccuracySpec& spec,
                       const MintBarrier& pre_mint = {});

  /// The plan that would currently be used for `spec`, without touching the
  /// network or spending budget (for price quoting).
  PerturbationPlan plan_for(const query::AccuracySpec& spec) const;

  /// The weakest widening of `requested` (alpha grown at fixed delta) that
  /// the cache supports at its ACHIEVED minimum per-node probability.  This
  /// is what a broker re-quotes after a CoverageError.  Throws CoverageError
  /// when no finite widening helps (some node never reported at all).
  query::AccuracySpec degraded_spec(const query::AccuracySpec& requested) const;

  const iot::SamplingNetwork& network() const noexcept { return network_; }

 private:
  PerturbationPlan ensure_feasible_plan(const query::AccuracySpec& spec)
      PRC_REQUIRES(mutex_);

  mutable std::mutex mutex_;
  /// Guarded by mutex_ too: answer() mutates the cache via top-up rounds,
  /// and plan_for()/degraded_spec() must not observe a half-finished round.
  iot::SamplingNetwork& network_;
  PrivateCounterConfig config_;
  PerturbationOptimizer optimizer_;
  Rng noise_rng_ PRC_GUARDED_BY(mutex_);
};

}  // namespace prc::dp
