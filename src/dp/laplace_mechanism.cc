#include "dp/laplace_mechanism.h"

#include <cmath>

#include "common/check.h"

namespace prc::dp {

LaplaceMechanism::LaplaceMechanism(double sensitivity,
                                   units::Epsilon epsilon)
    : sensitivity_(sensitivity),
      epsilon_(epsilon),
      noise_([&] {
        PRC_CHECK(std::isfinite(sensitivity) && sensitivity > 0.0)
            << "sensitivity must be positive, got " << sensitivity;
        PRC_CHECK(std::isfinite(epsilon) && epsilon > 0.0)
            << "epsilon must be positive, got " << epsilon;
        const double scale = sensitivity / epsilon;
        PRC_CHECK(std::isfinite(scale) && scale > 0.0)
            << "Laplace scale must be positive and finite, got " << scale;
        return Laplace(scale);
      }()) {}

double LaplaceMechanism::perturb(double value, Rng& rng) const noexcept {
  return value + noise_.sample(rng);
}

double LaplaceMechanism::noise_variance() const noexcept {
  const double b = noise_.scale();
  return 2.0 * b * b;
}

double sensitivity_for(SensitivityPolicy policy, units::Probability p,
                       std::size_t max_node_count) {
  switch (policy) {
    case SensitivityPolicy::kExpected:
      PRC_CHECK_PROB(p);
      return 1.0 / p;
    case SensitivityPolicy::kWorstCase:
      PRC_CHECK(max_node_count > 0) << "worst-case sensitivity needs n_i > 0";
      return static_cast<double>(max_node_count);
  }
  PRC_CHECK(false) << "unknown sensitivity policy";
  return 0.0;  // unreachable
}

}  // namespace prc::dp
