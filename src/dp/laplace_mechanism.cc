#include "dp/laplace_mechanism.h"

#include <stdexcept>

namespace prc::dp {

LaplaceMechanism::LaplaceMechanism(double sensitivity, double epsilon)
    : sensitivity_(sensitivity),
      epsilon_(epsilon),
      noise_([&] {
        if (!(sensitivity > 0.0)) {
          throw std::invalid_argument("sensitivity must be positive");
        }
        if (!(epsilon > 0.0)) {
          throw std::invalid_argument("epsilon must be positive");
        }
        return Laplace(sensitivity / epsilon);
      }()) {}

double LaplaceMechanism::perturb(double value, Rng& rng) const noexcept {
  return value + noise_.sample(rng);
}

double LaplaceMechanism::noise_variance() const noexcept {
  const double b = noise_.scale();
  return 2.0 * b * b;
}

double sensitivity_for(SensitivityPolicy policy, double p,
                       std::size_t max_node_count) {
  switch (policy) {
    case SensitivityPolicy::kExpected:
      if (!(p > 0.0)) throw std::invalid_argument("p must be positive");
      return 1.0 / p;
    case SensitivityPolicy::kWorstCase:
      if (max_node_count == 0) {
        throw std::invalid_argument("worst-case sensitivity needs n_i > 0");
      }
      return static_cast<double>(max_node_count);
  }
  throw std::invalid_argument("unknown sensitivity policy");
}

}  // namespace prc::dp
