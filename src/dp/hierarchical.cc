#include "dp/hierarchical.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/distributions.h"

namespace prc::dp {

HierarchicalMechanism::HierarchicalMechanism(const std::vector<double>& values,
                                             double lo, double hi,
                                             HierarchicalConfig config,
                                             Rng& rng)
    : config_(config), lo_(lo), hi_(hi) {
  PRC_CHECK(std::isfinite(lo) && std::isfinite(hi) && lo < hi)
      << "domain requires finite lo < hi, got [" << lo << ", " << hi << "]";
  PRC_CHECK(config_.levels >= 1 && config_.levels <= 24)
      << "levels must be in [1, 24], got " << config_.levels;
  PRC_CHECK(std::isfinite(config_.epsilon) && config_.epsilon > 0.0)
      << "epsilon must be positive, got " << config_.epsilon;
  const std::size_t leaves = leaf_count();
  leaf_width_ = (hi_ - lo_) / static_cast<double>(leaves);
  tree_.assign(2 * leaves, 0.0);

  // Exact counts: leaves first, then internal sums.
  for (double v : values) tree_[leaves + leaf_of(v)] += 1.0;
  for (std::size_t i = leaves - 1; i >= 1; --i) {
    tree_[i] = tree_[2 * i] + tree_[2 * i + 1];
  }

  if (!config_.disable_noise) {
    const Laplace noise(noise_scale());
    for (std::size_t i = 1; i < tree_.size(); ++i) {
      tree_[i] += noise.sample(rng);
    }
  }
}

double HierarchicalMechanism::noise_scale() const noexcept {
  return static_cast<double>(config_.levels + 1) / config_.epsilon;
}

std::size_t HierarchicalMechanism::leaf_of(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return leaf_count() - 1;
  const auto idx = static_cast<std::size_t>((x - lo_) / leaf_width_);
  return std::min(idx, leaf_count() - 1);
}

double HierarchicalMechanism::decompose(std::size_t first, std::size_t last,
                                        bool count_only) const {
  const std::size_t leaves = leaf_count();
  std::size_t lo = first + leaves;
  std::size_t hi = last + leaves + 1;  // exclusive
  double acc = 0.0;
  while (lo < hi) {
    if (lo & 1) {
      acc += count_only ? 1.0 : tree_[lo];
      ++lo;
    }
    if (hi & 1) {
      --hi;
      acc += count_only ? 1.0 : tree_[hi];
    }
    lo >>= 1;
    hi >>= 1;
  }
  return acc;
}

units::Released<double> HierarchicalMechanism::query(
    const query::RangeQuery& range) const {
  range.validate();
  if (range.upper < lo_ || range.lower > hi_) {
    return units::Released<double>(0.0);
  }
  const std::size_t first = leaf_of(range.lower);
  const std::size_t last = leaf_of(range.upper);
  return units::Released<double>(decompose(first, last, /*count_only=*/false));
}

std::size_t HierarchicalMechanism::canonical_nodes(
    const query::RangeQuery& range) const {
  range.validate();
  if (range.upper < lo_ || range.lower > hi_) return 0;
  return static_cast<std::size_t>(
      decompose(leaf_of(range.lower), leaf_of(range.upper),
                /*count_only=*/true));
}

double HierarchicalMechanism::noise_variance(
    const query::RangeQuery& range) const {
  const double scale = noise_scale();
  return static_cast<double>(canonical_nodes(range)) * 2.0 * scale * scale;
}

}  // namespace prc::dp
