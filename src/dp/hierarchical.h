// Hierarchical (dyadic) differentially private range counting — the
// centralized baseline family the paper contrasts against in §VI
// ("spatial decomposition trees ... efficiently answer differentially
// private range counting", Zhang et al. [20]; Chan/Dwork-style dyadic
// counts).
//
// The value domain [lo, hi] is split into 2^levels equal leaves; every
// tree node stores its subtree count plus Laplace noise.  An element
// contributes to one node per level, so with per-level budget
// epsilon / (levels + 1) the whole tree is epsilon-DP, and any range is
// answered by summing at most 2 canonical nodes per level — O(log) noisy
// terms instead of one noisy term per possible range.
//
// Trade-off vs the paper's sampling approach (measured in
// bench/dp_baseline_comparison): the tree must see the RAW data (full
// collection cost, no sampling), but once built it answers unlimited
// queries under the single epsilon; the paper's broker pays per answer
// but only ever ships samples.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "query/range_query.h"

namespace prc::dp {

struct HierarchicalConfig {
  /// Tree depth: 2^levels leaves.  Depth 10 -> 1024 leaves.
  std::size_t levels = 10;
  /// Total privacy budget for the whole tree (split evenly per level).
  units::Epsilon epsilon = 1.0;
  /// When true no noise is added (exact mode, used by tests to check the
  /// decomposition logic in isolation).
  bool disable_noise = false;
};

class HierarchicalMechanism {
 public:
  /// Builds the noisy tree over `values` bucketed into [lo, hi].  Values
  /// outside the domain are clamped into the edge leaves.  Requires
  /// lo < hi, levels >= 1, epsilon > 0.
  HierarchicalMechanism(const std::vector<double>& values, double lo,
                        double hi, HierarchicalConfig config, Rng& rng);

  std::size_t levels() const noexcept { return config_.levels; }
  std::size_t leaf_count() const noexcept { return std::size_t{1} << config_.levels; }
  units::Epsilon epsilon() const noexcept { return config_.epsilon; }

  /// Laplace scale applied to every node: (levels + 1) / epsilon.
  double noise_scale() const noexcept;

  /// Noisy count of values in [range.lower, range.upper].  The range is
  /// snapped to leaf boundaries (the mechanism's resolution); the snapping
  /// error is data-dependent and separate from the noise error.  Released:
  /// every tree node already carries calibrated Laplace noise (exact mode,
  /// disable_noise, is a test-only bypass and documented as such).
  units::Released<double> query(const query::RangeQuery& range) const;

  /// Number of canonical nodes the range decomposes into (wire/variance
  /// accounting; <= 2 * levels).
  std::size_t canonical_nodes(const query::RangeQuery& range) const;

  /// Worst-case noise variance of query(): canonical_nodes * 2 * scale^2.
  double noise_variance(const query::RangeQuery& range) const;

  /// Leaf index covering x (clamped to the domain).
  std::size_t leaf_of(double x) const;

 private:
  /// Sums noisy canonical nodes covering leaves [first, last] inclusive;
  /// when `count_only` the return value is the node count instead.
  double decompose(std::size_t first, std::size_t last,
                   bool count_only) const;

  HierarchicalConfig config_;
  double lo_;
  double hi_;
  double leaf_width_;
  /// Heap-style storage: tree_[1] is the root, children of i are 2i, 2i+1;
  /// leaves occupy [leaf_count(), 2 * leaf_count()).
  std::vector<double> tree_;
};

}  // namespace prc::dp
