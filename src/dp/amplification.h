// Privacy amplification by sampling and sequential composition.
//
// Lemma 3.4 (generalized from Kasiviswanathan et al.): if phi is
// epsilon-DP and S subsamples each item independently with probability p,
// then phi(S(.)) is epsilon'-DP with epsilon' = ln(1 - p + p e^epsilon).
// The optimizer minimizes this amplified budget.
#pragma once

#include <cstddef>
#include <span>

#include "common/units.h"

namespace prc::dp {

/// epsilon' = ln(1 - p + p * e^epsilon).  Requires epsilon >= 0, p in [0, 1].
units::EffectiveEpsilon amplified_epsilon(units::Epsilon epsilon,
                                          units::Probability p);

/// Inverse: the base epsilon whose amplification at probability p equals
/// `target`.  Requires target >= 0 and p in (0, 1].
units::Epsilon base_epsilon_for_amplified(units::EffectiveEpsilon target,
                                          units::Probability p);

/// Sequential composition: total budget of independent releases is the sum
/// of their budgets.  (Used by the ledger to audit cumulative leakage per
/// consumer.)
units::EffectiveEpsilon compose_sequential(
    std::span<const units::EffectiveEpsilon> epsilons);

}  // namespace prc::dp
