// Batch (workload) answering under a total privacy budget.
//
// Consumers often buy a *set* of ranges at once (the pollution-band
// dashboard in examples/pollution_monitoring is three ranges per index).
// Sequential composition means B independent answers at epsilon each cost
// B * epsilon; a budget-aware broker instead fixes the TOTAL budget and
// splits it across the workload.  Two splits are provided:
//
//   kUniform     — epsilon_i = total / B (the obvious baseline),
//   kProportional— epsilon_i proportional to 1/sqrt(w_i) for caller-chosen
//                  importance weights w_i, which minimizes the weighted sum
//                  of noise variances sum_i w_i * 2 (sens/eps_i)^2 subject
//                  to sum eps_i = total (Lagrange: eps_i ~ w_i^{1/3} for
//                  variance ~ 1/eps^2... see note in the .cc; we implement
//                  the exact cube-root allocation).
//
// Answers come from the shared sample cache (one sampling pass), so only
// the noise budget is split.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "iot/sampling_network.h"
#include "query/range_query.h"

namespace prc::dp {

enum class BudgetSplit {
  kUniform,
  /// Weighted: minimizes sum_i w_i * Var_i subject to sum eps_i = total,
  /// giving eps_i proportional to w_i^{1/3}.
  kWeighted,
};

struct WorkloadAnswer {
  query::RangeQuery range;
  units::Released<double> value;
  units::Epsilon epsilon = 0.0;  ///< Laplace budget spent on this answer
  units::EffectiveEpsilon epsilon_amplified = 0.0;  ///< after amplification
  double noise_variance = 0.0;
};

struct WorkloadResult {
  std::vector<WorkloadAnswer> answers;
  units::Epsilon total_epsilon = 0.0;  ///< sum of per-answer budgets
  units::EffectiveEpsilon total_epsilon_amplified = 0.0;  ///< composed
};

class WorkloadAnswerer {
 public:
  /// Answers all `ranges` from `network`'s current sample cache, splitting
  /// `total_epsilon` across them.  Weights (for kWeighted) default to 1.
  /// Requires a committed sampling round, total_epsilon > 0, and weights
  /// (when given) positive and matching ranges.size().
  WorkloadResult answer(iot::SamplingNetwork& network,
                        const std::vector<query::RangeQuery>& ranges,
                        units::Epsilon total_epsilon, BudgetSplit split,
                        Rng& rng,
                        const std::vector<double>& weights = {}) const;
};

}  // namespace prc::dp
