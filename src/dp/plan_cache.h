// Memoized perturbation plans: a thread-safe LRU cache in front of the
// coarse-to-fine (alpha', delta') search.
//
// A market serves the same handful of contracts over and over (honest
// consumers re-buy their favourite spec, attackers buy m copies of one
// weakened spec), so the optimizer's inputs repeat almost every call.  The
// plan is a pure function of (alpha, delta, p, node_count, total_count,
// max_node_count, sensitivity_policy) — nothing else feeds the search — so
// the full argument tuple is the cache key and no invalidation is ever
// needed: a changed input is simply a different key.
//
// Determinism contract: a hit returns the exact struct the miss computed
// (bit-for-bit; doubles are keyed by their bit patterns, not by value, so
// -0.0 vs 0.0 or NaN payloads cannot alias).  Because the cached value is
// itself a deterministic function of the key, concurrent miss/miss races on
// the same key store identical bytes, keeping the parallel market
// bit-identical to the serial one at any thread count.
//
// Infeasible verdicts (nullopt) are cached too: re-asking "can p support
// this contract?" is exactly as repetitive as re-planning a feasible one.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "dp/laplace_mechanism.h"
#include "dp/optimizer.h"

namespace prc::dp {

/// Everything PerturbationOptimizer::optimize depends on, keyed by the bit
/// patterns of the doubles so equality is exact (no epsilon-comparison
/// ambiguity in what "the same spec" means).
struct PlanCacheKey {
  std::uint64_t alpha_bits = 0;
  std::uint64_t delta_bits = 0;
  std::uint64_t probability_bits = 0;
  std::uint64_t node_count = 0;
  std::uint64_t total_count = 0;
  std::uint64_t max_node_count = 0;
  SensitivityPolicy sensitivity_policy = SensitivityPolicy::kExpected;

  static PlanCacheKey make(units::Alpha alpha, units::Delta delta,
                           units::Probability p, std::size_t node_count,
                           std::size_t total_count, std::size_t max_node_count,
                           SensitivityPolicy policy) {
    PlanCacheKey key;
    key.alpha_bits = std::bit_cast<std::uint64_t>(alpha.value());
    key.delta_bits = std::bit_cast<std::uint64_t>(delta.value());
    key.probability_bits = std::bit_cast<std::uint64_t>(p.value());
    key.node_count = node_count;
    key.total_count = total_count;
    key.max_node_count = max_node_count;
    key.sensitivity_policy = policy;
    return key;
  }

  bool operator==(const PlanCacheKey& other) const = default;
};

struct PlanCacheKeyHash {
  std::size_t operator()(const PlanCacheKey& key) const noexcept {
    // FNV-1a over the seven fields: cheap, stable, and good enough for the
    // few hundred distinct contracts a session ever sees.
    std::uint64_t h = 14695981039346656037ULL;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffULL;
        h *= 1099511628211ULL;
      }
    };
    mix(key.alpha_bits);
    mix(key.delta_bits);
    mix(key.probability_bits);
    mix(key.node_count);
    mix(key.total_count);
    mix(key.max_node_count);
    mix(static_cast<std::uint64_t>(key.sensitivity_policy));
    return static_cast<std::size_t>(h);
  }
};

/// Bounded LRU map from optimizer inputs to the optimizer's full result
/// (including "infeasible").  Thread-safe; all methods take the internal
/// mutex, so callers must not hold it (PRC_EXCLUDES).
class PlanCache {
 public:
  /// `capacity` == 0 disables the cache (every lookup misses, puts are
  /// dropped) — used by property tests that want the raw search.
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The cached optimizer verdict for `key`, refreshing its recency, or
  /// nullopt when the key has never been planned (note the two-level
  /// optional: the outer one is hit/miss, the inner one is the verdict).
  std::optional<std::optional<PerturbationPlan>> lookup(const PlanCacheKey& key)
      const PRC_EXCLUDES(mutex_);

  /// Stores a verdict, evicting the least recently used entry when full.
  /// Racing puts for the same key keep the first value — by the
  /// determinism contract both racers hold identical bytes, so which one
  /// wins is unobservable.
  void put(const PlanCacheKey& key, const std::optional<PerturbationPlan>& plan)
      PRC_EXCLUDES(mutex_);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const PRC_EXCLUDES(mutex_);

 private:
  struct Entry {
    PlanCacheKey key;
    std::optional<PerturbationPlan> plan;
  };
  using EntryList = std::list<Entry>;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  /// Front = most recently used; back = eviction candidate.
  mutable EntryList entries_ PRC_GUARDED_BY(mutex_);
  mutable std::unordered_map<PlanCacheKey, EntryList::iterator,
                             PlanCacheKeyHash>
      index_ PRC_GUARDED_BY(mutex_);
};

}  // namespace prc::dp
