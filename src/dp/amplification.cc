#include "dp/amplification.h"

#include <cmath>

#include "common/check.h"
#include "common/telemetry.h"

namespace prc::dp {

units::EffectiveEpsilon amplified_epsilon(units::Epsilon epsilon_in,
                                          units::Probability p_in) {
  const double epsilon = epsilon_in.value();
  const double p = p_in.value();
  // Called once per optimizer grid point; cache the registry reference
  // (stable across reset(), which zeroes in place) to keep the hot path at
  // one relaxed atomic increment.
  static telemetry::Counter& amplification_calls =
      telemetry::counter("dp.amplification_calls");
  amplification_calls.increment();
  PRC_CHECK(std::isfinite(epsilon) && epsilon >= 0.0)
      << "epsilon must be >= 0, got " << epsilon;
  PRC_CHECK(std::isfinite(p) && p >= 0.0 && p <= 1.0)
      << "p must be in [0, 1], got " << p;
  // ln(1 - p + p e^eps) = ln(1 + p (e^eps - 1)); use expm1/log1p for
  // stability when epsilon or p is tiny.  Past the expm1 overflow point
  // (~709) switch to the algebraically equal form
  //   eps + ln(p + (1 - p) e^-eps),
  // which stays finite and tends to eps + ln(p) — without it the result
  // overflows to inf and violates the Lemma 3.4 monotonicity contract.
  constexpr double kExpm1SafeMax = 700.0;
  const double amplified =
      epsilon <= kExpm1SafeMax
          ? std::log1p(p * std::expm1(epsilon))
          : (p == 0.0 ? 0.0
                      : epsilon + std::log(p + (1.0 - p) * std::exp(-epsilon)));
  // Lemma 3.4 monotonicity: subsampling can only strengthen privacy, so
  // the amplified budget never exceeds the base budget (tiny fp slack).
  PRC_DCHECK(amplified >= 0.0 &&
             amplified <= epsilon * (1.0 + 1e-12) + 1e-12)
      << "amplification must satisfy 0 <= eps' <= eps; eps=" << epsilon
      << " p=" << p << " eps'=" << amplified;
  return amplified;
}

units::Epsilon base_epsilon_for_amplified(units::EffectiveEpsilon target_in,
                                          units::Probability p_in) {
  const double target = target_in.value();
  const double p = p_in.value();
  PRC_CHECK(std::isfinite(target) && target >= 0.0)
      << "target must be >= 0, got " << target;
  PRC_CHECK_PROB(p);
  // e^eps = 1 + (e^target - 1) / p.  Past the expm1 overflow point use the
  // algebraically equal  target - ln(p) + log1p((p - 1) e^-target), which
  // stays finite (tends to target - ln p).
  constexpr double kExpm1SafeMax = 700.0;
  const double base =
      target <= kExpm1SafeMax
          ? std::log1p(std::expm1(target) / p)
          : target - std::log(p) + std::log1p((p - 1.0) * std::exp(-target));
  PRC_DCHECK(base >= target * (1.0 - 1e-12) - 1e-12)
      << "inverse amplification must not shrink the budget; target="
      << target << " p=" << p << " base=" << base;
  return base;
}

units::EffectiveEpsilon compose_sequential(
    std::span<const units::EffectiveEpsilon> epsilons) {
  double total = 0.0;
  for (const double eps : epsilons) {
    PRC_CHECK(std::isfinite(eps) && eps >= 0.0)
        << "composed epsilon must be >= 0, got " << eps;
    total += eps;
  }
  return total;
}

}  // namespace prc::dp
