#include "dp/amplification.h"

#include <cmath>
#include <stdexcept>

namespace prc::dp {

double amplified_epsilon(double epsilon, double p) {
  if (epsilon < 0.0) throw std::invalid_argument("epsilon must be >= 0");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("p must be in [0, 1]");
  // ln(1 - p + p e^eps) = ln(1 + p (e^eps - 1)); use expm1/log1p for
  // stability when epsilon or p is tiny.
  return std::log1p(p * std::expm1(epsilon));
}

double base_epsilon_for_amplified(double target, double p) {
  if (target < 0.0) throw std::invalid_argument("target must be >= 0");
  if (!(p > 0.0) || p > 1.0) throw std::invalid_argument("p must be in (0, 1]");
  // e^eps = 1 + (e^target - 1) / p.
  return std::log1p(std::expm1(target) / p);
}

double compose_sequential(std::span<const double> epsilons) {
  double total = 0.0;
  for (double eps : epsilons) {
    if (eps < 0.0) throw std::invalid_argument("epsilon must be >= 0");
    total += eps;
  }
  return total;
}

}  // namespace prc::dp
