// The Laplace mechanism (Dwork et al. 2006), as used by the paper's
// perturbation phase.
#pragma once

#include "common/distributions.h"
#include "common/rng.h"
#include "common/units.h"

namespace prc::dp {

/// Classic Laplace mechanism: release value + Lap(sensitivity / epsilon).
/// Satisfies epsilon-differential privacy for any query whose L1 sensitivity
/// is at most `sensitivity`.
class LaplaceMechanism {
 public:
  /// Requires sensitivity > 0 and epsilon > 0.
  LaplaceMechanism(double sensitivity, units::Epsilon epsilon);

  double sensitivity() const noexcept { return sensitivity_; }
  units::Epsilon epsilon() const noexcept { return epsilon_; }
  double scale() const noexcept { return noise_.scale(); }

  /// One perturbed release across the taint boundary: the only public
  /// Raw -> Released conversion in the codebase.
  units::Released<double> perturb(const units::Raw<double>& value,
                                  Rng& rng) const noexcept {
    return units::Released<double>(perturb(value.get(), rng));
  }

  /// Numeric kernel of the release (noise-law tests sample it directly).
  /// The returned double is NOT marked released; pipeline code must use
  /// the Raw -> Released overload above.
  double perturb(double value, Rng& rng) const noexcept;

  /// Pr[|noise| <= t]; the optimizer's tail constraint
  /// Pr[|Lap| <= (alpha - alpha') n] >= delta / delta' evaluates this.
  double central_probability(double t) const noexcept {
    return noise_.central_probability(t);
  }

  /// Noise magnitude not exceeded with probability q.
  double central_quantile(double q) const { return noise_.central_quantile(q); }

  /// Noise variance 2 * scale^2; feeds the pricing variance model.
  double noise_variance() const noexcept;

 private:
  double sensitivity_;
  units::Epsilon epsilon_;
  Laplace noise_;
};

/// How the broker sets the sensitivity of the RankCounting estimate.
enum class SensitivityPolicy {
  /// The paper's "fair solution": E[delta gamma_hat] = 1/p.  One item's
  /// presence shifts the estimate by ~ the expected gap correction.
  kExpected,
  /// Worst case: one item can shift a node estimate by up to n_i; utility-
  /// destroying, retained for the ablation bench.
  kWorstCase,
};

/// Sensitivity value under a policy.  `p` is the sampling probability,
/// `max_node_count` the largest n_i (only used by kWorstCase).
double sensitivity_for(SensitivityPolicy policy, units::Probability p,
                       std::size_t max_node_count);

}  // namespace prc::dp
