#include "dp/plan_cache.h"

#include "common/telemetry.h"

namespace prc::dp {

std::optional<std::optional<PerturbationPlan>> PlanCache::lookup(
    const PlanCacheKey& key) const {
  static telemetry::Counter& hits = telemetry::counter("dp.plan_cache_hits");
  static telemetry::Counter& misses =
      telemetry::counter("dp.plan_cache_misses");
  if (capacity_ == 0) {
    misses.increment();
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses.increment();
    return std::nullopt;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  hits.increment();
  return it->second->plan;
}

void PlanCache::put(const PlanCacheKey& key,
                    const std::optional<PerturbationPlan>& plan) {
  static telemetry::Counter& evictions =
      telemetry::counter("dp.plan_cache_evictions");
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.find(key) != index_.end()) {
    // A concurrent miss on the same key beat us here.  Both computed the
    // same bytes (the value is a deterministic function of the key), so
    // keeping the incumbent changes nothing observable.
    return;
  }
  entries_.push_front(Entry{key, plan});
  index_.emplace(key, entries_.begin());
  if (entries_.size() > capacity_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    evictions.increment();
  }
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace prc::dp
