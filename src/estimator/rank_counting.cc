#include "estimator/rank_counting.h"

#include "common/check.h"

namespace prc::estimator {

double rank_counting_node_estimate(const sampling::RankSampleSet& samples,
                                   std::size_t data_count, double p,
                                   const query::RangeQuery& range) {
  PRC_CHECK_PROB(p);
  range.validate();
  if (data_count == 0) return 0.0;

  const auto pred = samples.predecessor(range.lower);
  const auto succ = samples.successor(range.upper);
  const double n_i = static_cast<double>(data_count);
  const double inv_p = 1.0 / p;

  if (pred && succ) {
    // gamma(p(l), s(u), i): elements ranked between the two samples,
    // inclusive — exact thanks to the transmitted ranks.
    const double interior =
        static_cast<double>(succ->rank) - static_cast<double>(pred->rank) + 1.0;
    return interior - 2.0 * inv_p;
  }
  if (pred) {
    // gamma(p(l), lst, i): from the predecessor to the node's maximum.
    const double interior = n_i - static_cast<double>(pred->rank) + 1.0;
    return interior - inv_p;
  }
  if (succ) {
    // gamma(fst, s(u), i): from the node's minimum to the successor.
    const double interior = static_cast<double>(succ->rank);
    return interior - inv_p;
  }
  // gamma(fst, lst, i) = n_i.
  return n_i;
}

double rank_counting_estimate(std::span<const NodeSampleView> nodes, double p,
                              const query::RangeQuery& range) {
  double total = 0.0;
  for (const auto& node : nodes) {
    PRC_CHECK(node.samples != nullptr) << "rank counting: null node sample view";
    total +=
        rank_counting_node_estimate(*node.samples, node.data_count, p, range);
  }
  return total;
}

double rank_counting_estimate(std::span<const NodeSampleView> nodes,
                              std::span<const double> probabilities,
                              const query::RangeQuery& range) {
  PRC_CHECK(nodes.size() == probabilities.size())
      << "rank counting: one probability per node required, got "
      << nodes.size() << " nodes and " << probabilities.size()
      << " probabilities";
  double total = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& node = nodes[i];
    PRC_CHECK(node.samples != nullptr) << "rank counting: null node sample view";
    // Empty nodes contribute 0 regardless of p; skipping them lets callers
    // pass probability 0 for nodes that never reported.
    if (node.data_count == 0) continue;
    if (node.samples->empty()) {
      // No cached samples: the 4-case estimator degenerates to
      // gamma(fst, lst, i) = n_i, which does not involve p at all.  This
      // also covers nodes the station knows only by cardinality (p_i = 0).
      total += static_cast<double>(node.data_count);
      continue;
    }
    total += rank_counting_node_estimate(*node.samples, node.data_count,
                                         probabilities[i], range);
  }
  return total;
}

double rank_counting_node_variance_bound(double p) {
  PRC_CHECK(p > 0.0) << "p must be positive, got " << p;
  return 8.0 / (p * p);
}

double rank_counting_variance_bound(std::size_t node_count, double p) {
  return static_cast<double>(node_count) * rank_counting_node_variance_bound(p);
}

double rank_counting_variance_bound(std::span<const double> probabilities) {
  double total = 0.0;
  for (const double p : probabilities) {
    total += rank_counting_node_variance_bound(p);
  }
  return total;
}

}  // namespace prc::estimator
