#include "estimator/rank_counting.h"

#include "common/check.h"
#include "common/parallel.h"

namespace prc::estimator {
namespace {

/// Sum of per-node estimates over the fixed reduce chunk grid.  Both the
/// single-query entry points and the batch go through this helper, so a
/// batched answer is bit-identical to the corresponding single-query call
/// at any thread count.
template <typename NodeEstimateFn>
double chunked_node_sum(std::size_t node_count, NodeEstimateFn&& estimate) {
  return parallel::parallel_reduce(
      node_count, parallel::kDefaultReduceChunk, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double partial = 0.0;
        for (std::size_t i = begin; i < end; ++i) partial += estimate(i);
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
}

double hetero_node_estimate(const NodeSampleView& node, double probability,
                            const query::RangeQuery& range) {
  PRC_CHECK(node.samples != nullptr) << "rank counting: null node sample view";
  // Empty nodes contribute 0 regardless of p; skipping them lets callers
  // pass probability 0 for nodes that never reported.
  if (node.data_count == 0) return 0.0;
  if (node.samples->empty()) {
    // No cached samples: the 4-case estimator degenerates to
    // gamma(fst, lst, i) = n_i, which does not involve p at all.  This
    // also covers nodes the station knows only by cardinality (p_i = 0).
    return static_cast<double>(node.data_count);
  }
  return rank_counting_node_estimate(*node.samples, node.data_count,
                                     probability, range);
}

}  // namespace

double rank_counting_node_estimate(const sampling::RankSampleSet& samples,
                                   std::size_t data_count, double p,
                                   const query::RangeQuery& range) {
  PRC_CHECK_PROB(p);
  range.validate();
  if (data_count == 0) return 0.0;

  const auto pred = samples.predecessor(range.lower);
  const auto succ = samples.successor(range.upper);
  const double n_i = static_cast<double>(data_count);
  const double inv_p = 1.0 / p;

  if (pred && succ) {
    // gamma(p(l), s(u), i): elements ranked between the two samples,
    // inclusive — exact thanks to the transmitted ranks.
    const double interior =
        static_cast<double>(succ->rank) - static_cast<double>(pred->rank) + 1.0;
    return interior - 2.0 * inv_p;
  }
  if (pred) {
    // gamma(p(l), lst, i): from the predecessor to the node's maximum.
    const double interior = n_i - static_cast<double>(pred->rank) + 1.0;
    return interior - inv_p;
  }
  if (succ) {
    // gamma(fst, s(u), i): from the node's minimum to the successor.
    const double interior = static_cast<double>(succ->rank);
    return interior - inv_p;
  }
  // gamma(fst, lst, i) = n_i.
  return n_i;
}

double rank_counting_estimate(std::span<const NodeSampleView> nodes, double p,
                              const query::RangeQuery& range) {
  return chunked_node_sum(nodes.size(), [&](std::size_t i) {
    PRC_CHECK(nodes[i].samples != nullptr)
        << "rank counting: null node sample view";
    return rank_counting_node_estimate(*nodes[i].samples, nodes[i].data_count,
                                       p, range);
  });
}

double rank_counting_estimate(std::span<const NodeSampleView> nodes,
                              std::span<const double> probabilities,
                              const query::RangeQuery& range) {
  PRC_CHECK(nodes.size() == probabilities.size())
      << "rank counting: one probability per node required, got "
      << nodes.size() << " nodes and " << probabilities.size()
      << " probabilities";
  return chunked_node_sum(nodes.size(), [&](std::size_t i) {
    return hetero_node_estimate(nodes[i], probabilities[i], range);
  });
}

std::vector<double> rank_counting_estimate_batch(
    std::span<const NodeSampleView> nodes, double p,
    std::span<const query::RangeQuery> ranges) {
  std::vector<double> estimates(ranges.size());
  // Parallel over queries; when Q is too small to fill the pool the inner
  // node sum parallelizes instead (nested regions inline, so exactly one
  // level fans out).
  parallel::parallel_for_each(ranges.size(), [&](std::size_t q) {
    estimates[q] = rank_counting_estimate(nodes, p, ranges[q]);
  });
  return estimates;
}

std::vector<double> rank_counting_estimate_batch(
    std::span<const NodeSampleView> nodes,
    std::span<const double> probabilities,
    std::span<const query::RangeQuery> ranges) {
  PRC_CHECK(nodes.size() == probabilities.size())
      << "rank counting: one probability per node required, got "
      << nodes.size() << " nodes and " << probabilities.size()
      << " probabilities";
  std::vector<double> estimates(ranges.size());
  parallel::parallel_for_each(ranges.size(), [&](std::size_t q) {
    estimates[q] = chunked_node_sum(nodes.size(), [&](std::size_t i) {
      return hetero_node_estimate(nodes[i], probabilities[i], ranges[q]);
    });
  });
  return estimates;
}

double rank_counting_node_variance_bound(double p) {
  PRC_CHECK(p > 0.0) << "p must be positive, got " << p;
  return 8.0 / (p * p);
}

double rank_counting_variance_bound(std::size_t node_count, double p) {
  return static_cast<double>(node_count) * rank_counting_node_variance_bound(p);
}

double rank_counting_variance_bound(std::span<const double> probabilities) {
  double total = 0.0;
  for (const double p : probabilities) {
    total += rank_counting_node_variance_bound(p);
  }
  return total;
}

}  // namespace prc::estimator
