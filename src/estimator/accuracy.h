// (alpha, delta) accuracy machinery for the RankCounting estimator.
//
// Theorem 3.3 couples the sampling probability to the accuracy contract:
//   p >= (sqrt(2k) / (alpha * n)) * 2 / sqrt(1 - delta)
// makes the estimate an (alpha, delta)-range counting.  Inverting the same
// relation gives the accuracy (delta') actually *achieved* by samples that
// were collected at some fixed p — which is what the DP optimizer needs when
// it reuses the cached samples for every alpha' it considers.
#pragma once

#include <cstddef>
#include <span>

#include "common/units.h"

#include "query/range_query.h"

namespace prc::estimator {

/// Theorem 3.3: minimum sampling probability for an (alpha, delta)
/// guarantee with k nodes and n total data items.  The exact expression can
/// exceed 1 for tiny datasets or strict contracts; the uncapped value is
/// returned (callers clamp and treat p >= 1 as "collect everything").
/// Requires alpha in (0,1], delta in [0,1), n > 0, k > 0.
double required_sampling_probability(const query::AccuracySpec& spec,
                                     std::size_t node_count,
                                     std::size_t total_count);

/// Inverse of Theorem 3.3: the confidence delta' achieved at error level
/// alpha' by samples collected with probability p, i.e.
///   delta' = 1 - 8k / (p * alpha' * n)^2.
/// May be negative, meaning alpha' is not achievable at this p (the
/// Chebyshev bound is vacuous).  Requires p in (0,1], alpha' > 0, n > 0.
units::Delta achieved_delta(units::Probability p, units::Alpha alpha_prime,
                            std::size_t node_count, std::size_t total_count);

/// Smallest alpha' for which achieved_delta(..) >= delta_min:
///   alpha' = sqrt(8k / (1 - delta_min)) / (p * n).
/// Requires delta_min in [0, 1).
units::Alpha min_feasible_alpha(units::Probability p, units::Delta delta_min,
                                std::size_t node_count,
                                std::size_t total_count);

/// Chebyshev half-width of a confidence interval around a RankCounting
/// estimate: the absolute error not exceeded with probability `confidence`,
///   t = sqrt(8k / p^2 / (1 - confidence)).
/// Requires p in (0, 1], confidence in [0, 1).
double error_bound_at_confidence(units::Probability p,
                                 std::size_t node_count,
                                 units::Delta confidence);

/// Heterogeneous-probability analogue of achieved_delta: the confidence
/// actually achieved at error level alpha' when node i's sample was
/// collected at its own p_i,
///   delta' = 1 - (sum_i 8 / p_i^2) / (alpha' * n)^2.
/// May be negative (the bound is vacuous at this alpha').  Every p_i must
/// be in (0, 1]; callers with never-reported nodes have no finite bound and
/// must refuse/degrade before calling.
units::Delta achieved_delta_heterogeneous(
    std::span<const double> probabilities, units::Alpha alpha_prime,
    std::size_t total_count);

/// Heterogeneous Chebyshev half-width: sqrt(sum_i 8/p_i^2 / (1 - conf)).
/// This is the error bound a degraded round can still honestly promise,
/// computed from the per-node probabilities actually ACHIEVED rather than
/// the round target.
double heterogeneous_error_bound(std::span<const double> probabilities,
                                 units::Delta confidence);

/// The BasicCounting analogue of Theorem 3.3: the smallest p for which the
/// Horvitz-Thompson estimator's worst-case variance n(1-p)/p meets the
/// (alpha, delta) contract via Chebyshev:
///   n(1-p)/p <= (alpha n)^2 (1-delta)  =>  p >= 1/(1 + alpha^2 n (1-delta)).
/// Because this variance grows with the true count, the worst case (a
/// full-domain query) drives the requirement — the paper's core §III-A
/// argument for why RankCounting needs asymptotically fewer samples.
double basic_counting_required_probability(const query::AccuracySpec& spec,
                                           std::size_t total_count);

}  // namespace prc::estimator
