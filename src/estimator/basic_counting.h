// The BasicCounting baseline (paper §III-A).
//
// The straightforward Horvitz–Thompson estimator: count the samples that fall
// in the range and scale by 1/p.  Unbiased, but its variance
// gamma(l,u,D) * (1-p) / p grows with the true count — i.e. with the query
// width — which is exactly the weakness RankCounting removes.
#pragma once

#include <cstddef>
#include <span>

#include "query/range_query.h"
#include "sampling/rank_sample.h"

namespace prc::estimator {

/// BasicCounting estimate over one node's sample.  Requires p in (0, 1].
double basic_counting_node_estimate(const sampling::RankSampleSet& samples,
                                    double p, const query::RangeQuery& range);

/// Global BasicCounting estimate: pooled sample count in range, scaled by
/// 1/p.
double basic_counting_estimate(
    std::span<const sampling::RankSampleSet* const> nodes, double p,
    const query::RangeQuery& range);

/// Exact variance of the estimator given the true in-range count:
/// true_count * (1 - p) / p.
double basic_counting_variance(double true_count, double p);

}  // namespace prc::estimator
