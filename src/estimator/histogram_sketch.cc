#include "estimator/histogram_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace prc::estimator {

HistogramSketch::HistogramSketch(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi) {
  PRC_CHECK(bins >= 1) << "sketch needs >= 1 bin";
  PRC_CHECK(std::isfinite(lo) && std::isfinite(hi) && lo < hi)
      << "sketch needs finite lo < hi, got [" << lo << ", " << hi << "]";
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0.0);
}

HistogramSketch::HistogramSketch(const std::vector<double>& values, double lo,
                                 double hi, std::size_t bins)
    : HistogramSketch(lo, hi, bins) {
  for (double v : values) {
    std::size_t bin;
    if (v <= lo_) {
      bin = 0;
    } else if (v >= hi_) {
      bin = counts_.size() - 1;
    } else {
      bin = std::min(static_cast<std::size_t>((v - lo_) / width_),
                     counts_.size() - 1);
    }
    counts_[bin] += 1.0;
    ++total_;
  }
}

void HistogramSketch::merge(const HistogramSketch& other) {
  // Exact double comparison is intentional: merging is only defined for
  // sketches built from the identical binning constants.
  PRC_CHECK(other.counts_.size() == counts_.size() && other.lo_ == lo_ &&
            other.hi_ == hi_)
      << "sketch binning mismatch";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double HistogramSketch::bin_low(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double HistogramSketch::bin_high(std::size_t bin) const {
  return bin_low(bin) + width_;
}

double HistogramSketch::estimate(const query::RangeQuery& range) const {
  range.validate();
  const double l = std::max(range.lower, lo_);
  const double u = std::min(range.upper, hi_);
  if (l > u) return 0.0;
  double acc = 0.0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const double b_lo = bin_low(bin);
    const double b_hi = bin_high(bin);
    if (b_hi <= l || b_lo >= u) continue;
    const double overlap =
        (std::min(b_hi, u) - std::max(b_lo, l)) / width_;
    acc += counts_[bin] * std::clamp(overlap, 0.0, 1.0);
  }
  return acc;
}

double HistogramSketch::error_bound(const query::RangeQuery& range) const {
  range.validate();
  double bound = 0.0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const double b_lo = bin_low(bin);
    const double b_hi = bin_high(bin);
    const bool covers_lower = b_lo < range.lower && range.lower < b_hi;
    const bool covers_upper = b_lo < range.upper && range.upper < b_hi;
    if (covers_lower || covers_upper) bound += counts_[bin];
  }
  return bound;
}

std::size_t HistogramSketch::wire_size() const noexcept {
  return counts_.size() * sizeof(double);
}

}  // namespace prc::estimator
