#include "estimator/basic_counting.h"

#include "common/check.h"

namespace prc::estimator {
namespace {

std::size_t in_range_count(const sampling::RankSampleSet& samples,
                           const query::RangeQuery& range) {
  std::size_t count = 0;
  for (const auto& s : samples.samples()) {
    if (range.contains(s.value)) ++count;
  }
  return count;
}

}  // namespace

double basic_counting_node_estimate(const sampling::RankSampleSet& samples,
                                    double p, const query::RangeQuery& range) {
  PRC_CHECK_PROB(p);
  range.validate();
  return static_cast<double>(in_range_count(samples, range)) / p;
}

double basic_counting_estimate(
    std::span<const sampling::RankSampleSet* const> nodes, double p,
    const query::RangeQuery& range) {
  PRC_CHECK_PROB(p);
  range.validate();
  std::size_t pooled = 0;
  for (const auto* node : nodes) {
    PRC_CHECK(node != nullptr) << "basic counting: null node sample";
    pooled += in_range_count(*node, range);
  }
  return static_cast<double>(pooled) / p;
}

double basic_counting_variance(double true_count, double p) {
  PRC_CHECK_PROB(p);
  return true_count * (1.0 - p) / p;
}

}  // namespace prc::estimator
