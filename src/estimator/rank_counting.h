// The RankCounting estimator (paper §III-A).
//
// Per node i, with per-element inclusion probability p, sampled set S_i and
// local size n_i, the estimate of gamma(l, u, i) is the 4-case formula:
//
//   gamma(p(l), s(u), i) - 2/p   if predecessor and successor both exist
//   gamma(p(l), lst,  i) - 1/p   if only the predecessor exists
//   gamma(fst,  s(u), i) - 1/p   if only the successor exists
//   gamma(fst,  lst,  i) = n_i   otherwise
//
// where p(l) is the largest sampled value <= l, s(u) the smallest sampled
// value > u, and the interior counts are exact because samples carry their
// local ranks.  The estimator is unbiased with per-node variance <= 8/p^2
// (Thm 3.1) and global variance <= 8k/p^2 (Thm 3.2) — independent of the
// query width, unlike the BasicCounting baseline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "query/range_query.h"
#include "sampling/rank_sample.h"

namespace prc::estimator {

/// What the base station knows about one node: its current rank-annotated
/// sample and the node's local data cardinality n_i (nodes report n_i with
/// their samples; it is a single integer, not sensitive payload).
struct NodeSampleView {
  const sampling::RankSampleSet* samples = nullptr;
  std::size_t data_count = 0;  // n_i
};

/// Per-node RankCounting estimate of gamma(l, u, i).  May be negative (the
/// correction terms can overshoot); negativity is essential for
/// unbiasedness and is only clamped at the response boundary.
/// Requires p in (0, 1]; returns 0 for an empty node.
double rank_counting_node_estimate(const sampling::RankSampleSet& samples,
                                   std::size_t data_count, double p,
                                   const query::RangeQuery& range);

/// Global estimate: sum of per-node estimates (paper Eq. 2).
double rank_counting_estimate(std::span<const NodeSampleView> nodes, double p,
                              const query::RangeQuery& range);

/// Heterogeneous-probability overload: node i's sample was collected at its
/// own inclusion probability probabilities[i] (per-node Horvitz–Thompson
/// correction).  This keeps the estimate unbiased when a degraded round
/// left some nodes at an older p than the rest of the fleet.  Nodes with
/// data_count == 0 contribute nothing and may carry probability 0; a node
/// with data but an EMPTY cached sample contributes the case-4 estimate
/// n_i (p never enters that branch, so probability 0 is fine there too); a
/// node with samples but probability outside (0, 1] throws
/// std::invalid_argument.
double rank_counting_estimate(std::span<const NodeSampleView> nodes,
                              std::span<const double> probabilities,
                              const query::RangeQuery& range);

/// Batched estimate: answers Q ranges in one pass over the node views.
/// Parallelizes over queries for large Q and over nodes for large N (the
/// inner node sum uses the fixed reduce chunk grid), and returns exactly
/// the values Q single-query calls would: result[q] ==
/// rank_counting_estimate(nodes, p, ranges[q]) bit for bit, at any thread
/// count.
std::vector<double> rank_counting_estimate_batch(
    std::span<const NodeSampleView> nodes, double p,
    std::span<const query::RangeQuery> ranges);

/// Heterogeneous-probability batch (see the single-query overload for the
/// per-node probability semantics).
std::vector<double> rank_counting_estimate_batch(
    std::span<const NodeSampleView> nodes,
    std::span<const double> probabilities,
    std::span<const query::RangeQuery> ranges);

/// Theorem 3.1 bound on one node's estimator variance: 8 / p^2.
double rank_counting_node_variance_bound(double p);

/// Theorem 3.2 bound on the global estimator variance: 8k / p^2.
double rank_counting_variance_bound(std::size_t node_count, double p);

/// Heterogeneous Theorem 3.2: sum of 8 / p_i^2 over the given per-node
/// probabilities.  Entries <= 0 throw (a node with unknown data has no
/// finite variance bound; callers must filter those out first).
double rank_counting_variance_bound(std::span<const double> probabilities);

}  // namespace prc::estimator
