// Quantile estimation from rank samples.
//
// The paper's companion work ("Approximate aggregation for tracking
// quantiles and range countings in WSNs", He et al., TCS 2015 — reference
// [6]) tracks quantiles with the same rank-annotated samples RankCounting
// ships.  The key observation: the number of elements <= x at node i is a
// one-sided instance of the 4-case estimator (the predecessor of -inf never
// exists), so
//
//   prefix(x, i) = r(s(x, i)) - 1/p   if a successor of x is sampled,
//                  n_i                otherwise,
//
// is unbiased for the local rank of x, and the q-quantile of D is read off
// as the sampled value whose estimated global rank is closest to q * n.
#pragma once

#include <cstddef>
#include <span>

#include "estimator/rank_counting.h"
#include "sampling/rank_sample.h"

namespace prc::estimator {

/// Unbiased estimate of |{y in D_i : y <= x}| from node i's sample.
/// Requires p in (0, 1].
double prefix_count_estimate(const sampling::RankSampleSet& samples,
                             std::size_t data_count, double p, double x);

/// Estimated global rank of x: sum of per-node prefix estimates.
double global_prefix_estimate(std::span<const NodeSampleView> nodes, double p,
                              double x);

/// One-sided analogue of the Theorem 3.1 variance bound: 4 / p^2 per node
/// (half the correction terms of the two-sided estimator).
double prefix_variance_bound(double p);

/// Estimated q-quantile of the global dataset: the sampled value whose
/// estimated global rank is closest to q * n (binary search over the pooled
/// sorted sample).  Requires q in [0, 1], a non-empty pooled sample, and
/// a known total count n > 0.
double quantile_estimate(std::span<const NodeSampleView> nodes, double p,
                         double q, std::size_t total_count);

}  // namespace prc::estimator
