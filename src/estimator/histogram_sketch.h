// Equi-width histogram sketch — the "what a naive system would ship"
// baseline for approximate range counting.
//
// Every node summarizes its local data into B equal-width bins over an
// agreed global domain and ships the B counts once (fixed cost B * 8
// bytes, independent of |D_i| and of p).  The base station merges the
// sketches and answers a range by summing fully covered bins plus a
// uniform-interpolation fraction of the two boundary bins.
//
// Compared to RankCounting: no tunable accuracy knob (the error is bounded
// by the boundary-bin mass, data-dependent), no unbiasedness guarantee
// under skew inside bins, but a very low, perfectly predictable wire cost.
// bench/dp_baseline_comparison puts the three approaches side by side.
#pragma once

#include <cstddef>
#include <vector>

#include "query/range_query.h"

namespace prc::estimator {

class HistogramSketch {
 public:
  /// Builds a node's sketch of `values` with `bins` bins over [lo, hi].
  /// Values outside the domain are clamped to the edge bins.  Requires
  /// bins >= 1, lo < hi.
  HistogramSketch(const std::vector<double>& values, double lo, double hi,
                  std::size_t bins);

  /// An empty sketch suitable as a merge accumulator.
  HistogramSketch(double lo, double hi, std::size_t bins);

  std::size_t bins() const noexcept { return counts_.size(); }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t total_count() const noexcept { return total_; }

  /// Merges another node's sketch.  Requires identical binning.
  void merge(const HistogramSketch& other);

  /// Estimated count in [range.lower, range.upper]: full bins exactly,
  /// boundary bins by uniform interpolation.
  double estimate(const query::RangeQuery& range) const;

  /// Upper bound on the estimation error for this range: the mass of the
  /// (at most two) partially covered bins.
  double error_bound(const query::RangeQuery& range) const;

  /// Wire size of one node's sketch under the simulator's cost model:
  /// one 8-byte count per bin.
  std::size_t wire_size() const noexcept;

 private:
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

  double lo_;
  double hi_;
  double width_;
  std::vector<double> counts_;
  std::size_t total_ = 0;
};

}  // namespace prc::estimator
