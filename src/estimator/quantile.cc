#include "estimator/quantile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace prc::estimator {

double prefix_count_estimate(const sampling::RankSampleSet& samples,
                             std::size_t data_count, double p, double x) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("prefix estimate requires p in (0, 1]");
  }
  if (data_count == 0) return 0.0;
  const auto succ = samples.successor(x);
  if (!succ) return static_cast<double>(data_count);
  return static_cast<double>(succ->rank) - 1.0 / p;
}

double global_prefix_estimate(std::span<const NodeSampleView> nodes, double p,
                              double x) {
  double total = 0.0;
  for (const auto& node : nodes) {
    if (node.samples == nullptr) {
      throw std::invalid_argument("prefix estimate: null node sample view");
    }
    total += prefix_count_estimate(*node.samples, node.data_count, p, x);
  }
  return total;
}

double prefix_variance_bound(double p) {
  if (!(p > 0.0)) throw std::invalid_argument("p must be positive");
  return 4.0 / (p * p);
}

double quantile_estimate(std::span<const NodeSampleView> nodes, double p,
                         double q, std::size_t total_count) {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile requires q in [0, 1]");
  }
  if (total_count == 0) {
    throw std::invalid_argument("quantile requires total_count > 0");
  }
  std::vector<double> pooled;
  for (const auto& node : nodes) {
    if (node.samples == nullptr) {
      throw std::invalid_argument("quantile: null node sample view");
    }
    for (const auto& s : node.samples->samples()) pooled.push_back(s.value);
  }
  if (pooled.empty()) {
    throw std::invalid_argument("quantile requires a non-empty sample");
  }
  std::sort(pooled.begin(), pooled.end());

  const double target = q * static_cast<double>(total_count);
  // The estimated global rank is monotone (non-decreasing) in x up to the
  // correction terms, so binary search for the first pooled value whose
  // estimated rank reaches the target, then pick the closer neighbor.
  std::size_t lo = 0;
  std::size_t hi = pooled.size();  // first index with rank >= target
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (global_prefix_estimate(nodes, p, pooled[mid]) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == pooled.size()) return pooled.back();
  if (lo == 0) return pooled.front();
  const double above = global_prefix_estimate(nodes, p, pooled[lo]);
  const double below = global_prefix_estimate(nodes, p, pooled[lo - 1]);
  return (std::abs(above - target) <= std::abs(target - below))
             ? pooled[lo]
             : pooled[lo - 1];
}

}  // namespace prc::estimator
