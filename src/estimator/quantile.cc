#include "estimator/quantile.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"

namespace prc::estimator {

double prefix_count_estimate(const sampling::RankSampleSet& samples,
                             std::size_t data_count, double p, double x) {
  PRC_CHECK_PROB(p);
  if (data_count == 0) return 0.0;
  const auto succ = samples.successor(x);
  if (!succ) return static_cast<double>(data_count);
  return static_cast<double>(succ->rank) - 1.0 / p;
}

double global_prefix_estimate(std::span<const NodeSampleView> nodes, double p,
                              double x) {
  // Same fixed chunk grid as the rank-counting sums: parallel over nodes
  // for large fleets, bit-identical at any thread count.
  return parallel::parallel_reduce(
      nodes.size(), parallel::kDefaultReduceChunk, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double partial = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          PRC_CHECK(nodes[i].samples != nullptr)
              << "prefix estimate: null node sample view";
          partial += prefix_count_estimate(*nodes[i].samples,
                                           nodes[i].data_count, p, x);
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
}

double prefix_variance_bound(double p) {
  PRC_CHECK(p > 0.0) << "p must be positive, got " << p;
  return 4.0 / (p * p);
}

double quantile_estimate(std::span<const NodeSampleView> nodes, double p,
                         double q, std::size_t total_count) {
  PRC_CHECK(q >= 0.0 && q <= 1.0)
      << "quantile requires q in [0, 1], got " << q;
  PRC_CHECK(total_count > 0) << "quantile requires total_count > 0";
  std::vector<double> pooled;
  for (const auto& node : nodes) {
    PRC_CHECK(node.samples != nullptr) << "quantile: null node sample view";
    for (const auto& s : node.samples->samples()) pooled.push_back(s.value);
  }
  PRC_CHECK(!pooled.empty()) << "quantile requires a non-empty sample";
  std::sort(pooled.begin(), pooled.end());

  const double target = q * static_cast<double>(total_count);
  // The estimated global rank is monotone (non-decreasing) in x up to the
  // correction terms, so binary search for the first pooled value whose
  // estimated rank reaches the target, then pick the closer neighbor.
  std::size_t lo = 0;
  std::size_t hi = pooled.size();  // first index with rank >= target
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (global_prefix_estimate(nodes, p, pooled[mid]) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == pooled.size()) return pooled.back();
  if (lo == 0) return pooled.front();
  const double above = global_prefix_estimate(nodes, p, pooled[lo]);
  const double below = global_prefix_estimate(nodes, p, pooled[lo - 1]);
  return (std::abs(above - target) <= std::abs(target - below))
             ? pooled[lo]
             : pooled[lo - 1];
}

}  // namespace prc::estimator
