#include "estimator/accuracy.h"

#include <cmath>

#include "common/check.h"

namespace prc::estimator {

double required_sampling_probability(const query::AccuracySpec& spec,
                                     std::size_t node_count,
                                     std::size_t total_count) {
  spec.validate();
  PRC_CHECK(node_count > 0 && total_count > 0)
      << "need node_count > 0 and total_count > 0";
  const double k = static_cast<double>(node_count);
  const double n = static_cast<double>(total_count);
  return (std::sqrt(2.0 * k) / (spec.alpha * n)) * 2.0 /
         std::sqrt(1.0 - spec.delta);
}

units::Delta achieved_delta(units::Probability p, units::Alpha alpha_prime,
                            std::size_t node_count,
                            std::size_t total_count) {
  PRC_CHECK_PROB(p);
  PRC_CHECK(std::isfinite(alpha_prime) && alpha_prime > 0.0)
      << "alpha' must be positive, got " << alpha_prime;
  PRC_CHECK(total_count > 0) << "total_count must be > 0";
  const double k = static_cast<double>(node_count);
  const double n = static_cast<double>(total_count);
  const double denom = p.value() * alpha_prime.value() * n;
  return 1.0 - 8.0 * k / (denom * denom);
}

units::Alpha min_feasible_alpha(units::Probability p, units::Delta delta_min,
                                std::size_t node_count,
                                std::size_t total_count) {
  PRC_CHECK_PROB(p);
  PRC_CHECK(delta_min >= 0.0 && delta_min < 1.0)
      << "delta_min must be in [0, 1), got " << delta_min;
  PRC_CHECK(total_count > 0) << "total_count must be > 0";
  const double k = static_cast<double>(node_count);
  const double n = static_cast<double>(total_count);
  return std::sqrt(8.0 * k / (1.0 - delta_min)) / (p.value() * n);
}

namespace {

// Shared by the heterogeneous delta/bound: sum of per-node variance bounds
// 8 / p_i^2 (Theorem 3.1 applied node-by-node).  Rejects any p_i outside
// (0, 1] — a node with no finite bound must be handled before calling.
double heterogeneous_variance_bound(std::span<const double> probabilities) {
  PRC_CHECK(!probabilities.empty()) << "need at least one node probability";
  double total = 0.0;
  for (const double p : probabilities) {
    PRC_CHECK_PROB(p);
    total += 8.0 / (p * p);
  }
  return total;
}

}  // namespace

units::Delta achieved_delta_heterogeneous(
    std::span<const double> probabilities, units::Alpha alpha_prime,
    std::size_t total_count) {
  PRC_CHECK(std::isfinite(alpha_prime) && alpha_prime > 0.0)
      << "alpha' must be positive, got " << alpha_prime;
  PRC_CHECK(total_count > 0) << "total_count must be > 0";
  const double n = static_cast<double>(total_count);
  const double denom = alpha_prime * n;
  return 1.0 - heterogeneous_variance_bound(probabilities) / (denom * denom);
}

double heterogeneous_error_bound(std::span<const double> probabilities,
                                 units::Delta confidence) {
  PRC_CHECK(confidence >= 0.0 && confidence < 1.0)
      << "confidence must be in [0, 1), got " << confidence;
  return std::sqrt(heterogeneous_variance_bound(probabilities) /
                   (1.0 - confidence));
}

double basic_counting_required_probability(const query::AccuracySpec& spec,
                                           std::size_t total_count) {
  spec.validate();
  PRC_CHECK(total_count > 0) << "total_count must be > 0";
  const double n = static_cast<double>(total_count);
  return 1.0 / (1.0 + spec.alpha * spec.alpha * n * (1.0 - spec.delta));
}

double error_bound_at_confidence(units::Probability p,
                                 std::size_t node_count,
                                 units::Delta confidence) {
  PRC_CHECK_PROB(p);
  PRC_CHECK(confidence >= 0.0 && confidence < 1.0)
      << "confidence must be in [0, 1), got " << confidence;
  const double p_v = p.value();
  const double variance =
      8.0 * static_cast<double>(node_count) / (p_v * p_v);
  return std::sqrt(variance / (1.0 - confidence));
}

}  // namespace prc::estimator
