#include "query/range_query.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace prc::query {

void RangeQuery::validate() const {
  PRC_CHECK_FINITE(lower);
  PRC_CHECK_FINITE(upper);
  PRC_CHECK(lower <= upper) << "range [" << lower << ", " << upper
                            << "] requires lower <= upper";
}

std::string RangeQuery::to_string() const {
  std::ostringstream out;
  out << '[' << lower << ", " << upper << ']';
  return out.str();
}

void AccuracySpec::validate() const {
  PRC_CHECK(std::isfinite(alpha) && alpha > 0.0 && alpha <= 1.0)
      << "alpha must be in (0, 1], got " << alpha;
  PRC_CHECK(std::isfinite(delta) && delta > 0.0 && delta < 1.0)
      << "delta must be in (0, 1), got " << delta;
}

bool AccuracySpec::is_implied_by(const AccuracySpec& other) const noexcept {
  return other.alpha <= alpha && other.delta >= delta;
}

std::string AccuracySpec::to_string() const {
  std::ostringstream out;
  out << "(alpha=" << alpha << ", delta=" << delta << ')';
  return out.str();
}

std::size_t exact_range_count(std::span<const double> values,
                              const RangeQuery& range) {
  std::size_t count = 0;
  for (double v : values) {
    if (range.contains(v)) ++count;
  }
  return count;
}

}  // namespace prc::query
