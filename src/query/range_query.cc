#include "query/range_query.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace prc::query {

void RangeQuery::validate() const {
  if (!std::isfinite(lower) || !std::isfinite(upper)) {
    throw std::invalid_argument("range bounds must be finite");
  }
  if (lower > upper) {
    throw std::invalid_argument("range requires lower <= upper");
  }
}

std::string RangeQuery::to_string() const {
  std::ostringstream out;
  out << '[' << lower << ", " << upper << ']';
  return out.str();
}

void AccuracySpec::validate() const {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("alpha must be in (0, 1]");
  }
  if (!(delta > 0.0) || delta >= 1.0) {
    throw std::invalid_argument("delta must be in (0, 1)");
  }
}

bool AccuracySpec::is_implied_by(const AccuracySpec& other) const noexcept {
  return other.alpha <= alpha && other.delta >= delta;
}

std::string AccuracySpec::to_string() const {
  std::ostringstream out;
  out << "(alpha=" << alpha << ", delta=" << delta << ')';
  return out.str();
}

std::size_t exact_range_count(std::span<const double> values,
                              const RangeQuery& range) {
  std::size_t count = 0;
  for (double v : values) {
    if (range.contains(v)) ++count;
  }
  return count;
}

}  // namespace prc::query
