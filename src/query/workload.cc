#include "query/workload.h"

#include <algorithm>
#include <stdexcept>

namespace prc::query {

std::vector<RangeQuery> quantile_anchored_ranges(
    const data::Column& column, const std::vector<double>& quantile_grid) {
  if (column.empty()) throw std::invalid_argument("empty column");
  std::vector<RangeQuery> queries;
  for (std::size_t i = 0; i < quantile_grid.size(); ++i) {
    for (std::size_t j = i + 1; j < quantile_grid.size(); ++j) {
      const double lo_q = quantile_grid[i];
      const double hi_q = quantile_grid[j];
      if (!(lo_q < hi_q)) continue;
      RangeQuery q{column.quantile(lo_q), column.quantile(hi_q)};
      q.validate();
      queries.push_back(q);
    }
  }
  return queries;
}

std::vector<RangeQuery> uniform_random_ranges(const data::Column& column,
                                              std::size_t count, Rng& rng) {
  if (column.empty()) throw std::invalid_argument("empty column");
  const double lo = column.min();
  const double hi = column.max();
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    double a = rng.uniform(lo, hi);
    double b = rng.uniform(lo, hi);
    if (a > b) std::swap(a, b);
    queries.push_back(RangeQuery{a, b});
  }
  return queries;
}

std::vector<RangeQuery> sliding_windows(const data::Column& column,
                                        double width_fraction,
                                        std::size_t count) {
  if (column.empty()) throw std::invalid_argument("empty column");
  if (!(width_fraction > 0.0) || width_fraction > 1.0) {
    throw std::invalid_argument("width_fraction must be in (0, 1]");
  }
  if (count == 0) return {};
  const double lo = column.min();
  const double hi = column.max();
  const double domain = hi - lo;
  const double width = domain * width_fraction;
  const double slack = domain - width;
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double start =
        count == 1 ? lo
                   : lo + slack * static_cast<double>(i) /
                             static_cast<double>(count - 1);
    queries.push_back(RangeQuery{start, start + width});
  }
  return queries;
}

std::vector<RangeQuery> default_evaluation_suite(const data::Column& column) {
  // Quantile pairs chosen to span narrow (5%), medium (~30-50%) and wide
  // (90%+) selectivities, mirroring "different ranges" in the paper's Fig. 2.
  static const std::vector<double> grid = {0.02, 0.10, 0.25, 0.40,
                                           0.60, 0.75, 0.90, 0.97};
  return quantile_anchored_ranges(column, grid);
}

}  // namespace prc::query
