// Query workload generators.
//
// The paper evaluates "air pollution levels with different ranges"; these
// generators produce the range suites the experiment binaries sweep over:
// quantile-anchored ranges (so every query has a known selectivity), uniform
// random ranges, and sliding windows across the domain.
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "query/range_query.h"

namespace prc::query {

/// Ranges whose endpoints sit at data quantiles, giving a controlled spread
/// of selectivities.  For each (lo_q, hi_q) pair with lo_q < hi_q drawn from
/// `quantile_grid`, emits [Q(lo_q), Q(hi_q)].
std::vector<RangeQuery> quantile_anchored_ranges(
    const data::Column& column, const std::vector<double>& quantile_grid);

/// `count` ranges with endpoints uniform over the column's [min, max].
std::vector<RangeQuery> uniform_random_ranges(const data::Column& column,
                                              std::size_t count, Rng& rng);

/// Fixed-width windows sliding across the domain: width = domain * fraction,
/// `count` evenly spaced starting points.
std::vector<RangeQuery> sliding_windows(const data::Column& column,
                                        double width_fraction,
                                        std::size_t count);

/// The default evaluation suite used by the experiment binaries: a mix of
/// narrow / medium / wide quantile-anchored ranges (selectivities from ~5% to
/// ~95%).  Deterministic for a given column.
std::vector<RangeQuery> default_evaluation_suite(const data::Column& column);

}  // namespace prc::query
