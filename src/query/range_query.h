// Range-counting query types and the customer accuracy contract.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "common/units.h"

namespace prc::query {

/// A closed range [l, u] over the value domain (paper Def. 2.1).
struct RangeQuery {
  double lower = 0.0;
  double upper = 0.0;

  /// Throws std::invalid_argument unless lower <= upper and both are finite.
  void validate() const;

  double width() const noexcept { return upper - lower; }
  bool contains(double x) const noexcept { return lower <= x && x <= upper; }

  std::string to_string() const;
};

/// The (alpha, delta) accuracy contract of Def. 2.2: the returned count must
/// satisfy Pr[|estimate - truth| <= alpha * |D|] >= delta.
struct AccuracySpec {
  units::Alpha alpha = 0.1;
  units::Delta delta = 0.9;

  /// Throws std::invalid_argument unless alpha in (0, 1] and delta in (0, 1).
  /// delta = 1 is rejected because Chebyshev-based guarantees can never reach
  /// probability exactly 1 with finite samples; delta = 0 is rejected because
  /// the contract would be vacuous (any answer satisfies it) and the
  /// optimizer's minimum budget degenerates to 0.
  void validate() const;

  /// True if an answer meeting `other` also meets this spec (other is at
  /// least as strict: alpha' <= alpha and delta' >= delta).
  bool is_implied_by(const AccuracySpec& other) const noexcept;

  std::string to_string() const;
};

/// Exact count of values in [l, u] over an unsorted multiset (O(n) scan);
/// prefer data::Column::exact_range_count when a sorted copy exists.
std::size_t exact_range_count(std::span<const double> values,
                              const RangeQuery& range);

}  // namespace prc::query
