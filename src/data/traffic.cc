#include "data/traffic.h"

#include <algorithm>
#include <cmath>

#include "common/distributions.h"

namespace prc::data {
namespace {

constexpr double kSecondsPerDay = 86400.0;

/// Weekday demand profile: two Gaussian rush-hour humps (8:30 and 17:30)
/// on a daytime plateau; value in [0, 1].
double weekday_profile(double day_frac) {
  const double hour = day_frac * 24.0;
  const auto hump = [](double h, double center, double width) {
    const double z = (h - center) / width;
    return std::exp(-0.5 * z * z);
  };
  const double morning = hump(hour, 8.5, 1.2);
  const double evening = hump(hour, 17.5, 1.5);
  // Daytime plateau between roughly 7:00 and 21:00.
  const double plateau =
      0.35 / (1.0 + std::exp(-(hour - 6.5))) / (1.0 + std::exp(hour - 21.5));
  return std::min(1.0, morning + evening + plateau);
}

/// Weekend: single flat midday hump, lower overall.
double weekend_profile(double day_frac) {
  const double hour = day_frac * 24.0;
  const double z = (hour - 14.0) / 4.0;
  return 0.55 * std::exp(-0.5 * z * z);
}

}  // namespace

TrafficGenerator::TrafficGenerator(TrafficConfig config) : config_(config) {}

std::vector<TrafficRecord> TrafficGenerator::generate() const {
  Rng master(config_.seed);
  Rng noise_rng = master.split();
  std::vector<TrafficRecord> records;
  records.reserve(config_.record_count);

  // 2014-08-01 was a Friday; day-of-week offset from the epoch (Thursday).
  for (std::size_t r = 0; r < config_.record_count; ++r) {
    TrafficRecord record;
    record.timestamp = config_.start_timestamp +
                       static_cast<std::int64_t>(r) * config_.cadence_seconds;
    const double t = static_cast<double>(record.timestamp);
    const double day_frac = std::fmod(t, kSecondsPerDay) / kSecondsPerDay;
    const int day_of_week =
        static_cast<int>((record.timestamp / 86400 + 4) % 7);  // 0 = Sunday
    const bool weekend = day_of_week == 0 || day_of_week == 6;
    const double profile =
        weekend ? weekend_profile(day_frac) : weekday_profile(day_frac);
    const double rate =
        config_.night_rate + (config_.peak_rate - config_.night_rate) * profile;

    // Overdispersed counts: lognormal multiplicative noise on the rate,
    // then rounding — bursty like real loop-detector data.
    const double burst = std::exp(sample_normal(noise_rng, 0.0, 0.35));
    record.vehicle_count =
        std::max(0.0, std::round(rate * burst +
                                 sample_normal(noise_rng, 0.0, 1.5)));
    records.push_back(record);
  }
  return records;
}

std::vector<double> TrafficGenerator::generate_counts() const {
  const auto records = generate();
  std::vector<double> counts;
  counts.reserve(records.size());
  for (const auto& record : records) counts.push_back(record.vehicle_count);
  return counts;
}

}  // namespace prc::data
