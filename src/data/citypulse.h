// Synthetic CityPulse-like pollution dataset.
//
// The paper evaluates on the CityPulse Smart City pollution dataset: 17,568
// records (5-minute cadence, 2014-08-01 00:05 .. 2014-10-01 00:00) each with
// five air-quality indexes.  The real export is not redistributable here, so
// this module generates a statistically similar substitute: per-index AQI
// levels in [0, 200] with diurnal and weekly cycles, slow seasonal drift,
// sensor-specific bias, bursty pollution episodes and heavy-ish measurement
// noise.  The experiments only depend on dataset cardinality and the shape of
// the per-index value distribution, which this preserves.  CSV load/store is
// provided so a real CityPulse export can be substituted via --csv.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/record.h"

namespace prc::data {

/// Generation knobs.  Defaults reproduce the paper's dataset shape.
struct CityPulseConfig {
  /// Number of records; the paper's export has 17,568 (= 61 days * 288/day).
  std::size_t record_count = 17568;
  /// Seconds between consecutive records (5 minutes).
  std::int64_t cadence_seconds = 300;
  /// Epoch of the first record: 2014-08-01T00:05:00Z.
  std::int64_t start_timestamp = 1406851500;
  /// Number of distinct road-side sensors contributing records round-robin.
  int sensor_count = 8;
  /// Master seed; every derived stream is a split of this.
  std::uint64_t seed = 20140801;
};

/// Deterministic generator for the synthetic dataset.
class CityPulseGenerator {
 public:
  explicit CityPulseGenerator(CityPulseConfig config = {});

  /// Generates the full record sequence.  Deterministic in the config seed.
  std::vector<AirQualityRecord> generate() const;

 private:
  CityPulseConfig config_;
};

/// Serializes records to the CSV schema
/// `timestamp,sensor_id,ozone,particulate_matter,carbon_monoxide,
///  sulfur_dioxide,nitrogen_dioxide`.
void write_records_csv(const std::vector<AirQualityRecord>& records,
                       const std::string& path);

/// Loads records from a CSV with the schema above (extra columns ignored).
/// Also accepts the REAL CityPulse export verbatim, which differs in three
/// ways this loader absorbs:
///   - header spellings `particullate_matter` and `sulfure_dioxide`
///     (the upstream dataset's typos) alias the canonical names,
///   - `timestamp` may be a `YYYY-MM-DD HH:MM:SS` datetime string instead
///     of epoch seconds,
///   - `sensor_id` may be absent (defaults to 0; the export is per-sensor
///     files).
/// Throws std::invalid_argument if any required column is missing under
/// either spelling or a timestamp is unparseable.
std::vector<AirQualityRecord> read_records_csv(const std::string& path);

/// Parses either epoch seconds ("1406851500") or a CityPulse datetime
/// ("2014-08-01 00:05:00", interpreted as UTC).  Throws
/// std::invalid_argument on any other shape.
std::int64_t parse_citypulse_timestamp(const std::string& text);

}  // namespace prc::data
