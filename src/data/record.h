// Air-quality record schema mirroring the CityPulse pollution export.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace prc::data {

/// The five air-quality indexes carried by each CityPulse pollution record.
enum class AirQualityIndex : int {
  kOzone = 0,
  kParticulateMatter = 1,
  kCarbonMonoxide = 2,
  kSulfurDioxide = 3,
  kNitrogenDioxide = 4,
};

inline constexpr std::size_t kAirQualityIndexCount = 5;

inline constexpr std::array<AirQualityIndex, kAirQualityIndexCount>
    kAllAirQualityIndexes = {
        AirQualityIndex::kOzone,          AirQualityIndex::kParticulateMatter,
        AirQualityIndex::kCarbonMonoxide, AirQualityIndex::kSulfurDioxide,
        AirQualityIndex::kNitrogenDioxide,
};

/// Column name as used in the CSV schema (matches the CityPulse export).
constexpr std::string_view index_name(AirQualityIndex index) {
  switch (index) {
    case AirQualityIndex::kOzone: return "ozone";
    case AirQualityIndex::kParticulateMatter: return "particulate_matter";
    case AirQualityIndex::kCarbonMonoxide: return "carbon_monoxide";
    case AirQualityIndex::kSulfurDioxide: return "sulfur_dioxide";
    case AirQualityIndex::kNitrogenDioxide: return "nitrogen_dioxide";
  }
  return "unknown";
}

/// One pollution measurement.  `timestamp` is seconds since the epoch of the
/// observation window (the paper's data runs 2014-08-01T00:05 to
/// 2014-10-01T00:00 at 5-minute cadence).
struct AirQualityRecord {
  std::int64_t timestamp = 0;
  int sensor_id = 0;
  std::array<double, kAirQualityIndexCount> values{};

  double value(AirQualityIndex index) const {
    return values[static_cast<std::size_t>(index)];
  }
  void set_value(AirQualityIndex index, double v) {
    values[static_cast<std::size_t>(index)] = v;
  }
};

}  // namespace prc::data
