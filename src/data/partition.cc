#include "data/partition.h"

#include <stdexcept>

#include "common/distributions.h"

namespace prc::data {

std::vector<std::vector<double>> partition_values(
    const std::vector<double>& values, std::size_t node_count,
    PartitionStrategy strategy, Rng& rng, double zipf_exponent) {
  if (node_count == 0) throw std::invalid_argument("node_count must be >= 1");
  std::vector<std::vector<double>> nodes(node_count);
  switch (strategy) {
    case PartitionStrategy::kRoundRobin:
      for (std::size_t i = 0; i < values.size(); ++i) {
        nodes[i % node_count].push_back(values[i]);
      }
      break;
    case PartitionStrategy::kContiguous: {
      const std::size_t base = values.size() / node_count;
      const std::size_t extra = values.size() % node_count;
      std::size_t cursor = 0;
      for (std::size_t node = 0; node < node_count; ++node) {
        const std::size_t take = base + (node < extra ? 1 : 0);
        nodes[node].assign(values.begin() + static_cast<std::ptrdiff_t>(cursor),
                           values.begin() +
                               static_cast<std::ptrdiff_t>(cursor + take));
        cursor += take;
      }
      break;
    }
    case PartitionStrategy::kZipfSkewed:
      for (double v : values) {
        const auto node = static_cast<std::size_t>(sample_zipf(
            rng, static_cast<std::int64_t>(node_count), zipf_exponent));
        nodes[node].push_back(v);
      }
      break;
    case PartitionStrategy::kUniformRandom:
      for (double v : values) {
        const auto node = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(node_count) - 1));
        nodes[node].push_back(v);
      }
      break;
  }
  return nodes;
}

}  // namespace prc::data
