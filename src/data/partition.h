// Data-to-node assignment strategies.
//
// The paper's IoT model has k nodes each holding a local multiset D_i with
// D = union D_i.  How values are spread across nodes affects nothing in the
// estimator's unbiasedness but does affect per-node sample counts, so the
// simulator supports several placements for ablation.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace prc::data {

enum class PartitionStrategy {
  /// Values go to nodes round-robin: near-equal n_i, interleaved values.
  kRoundRobin,
  /// Contiguous chunks: node i gets the i-th slice of the value stream, so
  /// local value distributions differ across nodes (temporal locality).
  kContiguous,
  /// Node chosen per value from a Zipf law: heavily skewed n_i.
  kZipfSkewed,
  /// Node chosen uniformly at random per value.
  kUniformRandom,
};

/// Splits `values` across `node_count` nodes.  Every value lands on exactly
/// one node; the concatenation of the result is a permutation of the input.
/// `rng` is only consulted by the randomized strategies.
std::vector<std::vector<double>> partition_values(
    const std::vector<double>& values, std::size_t node_count,
    PartitionStrategy strategy, Rng& rng, double zipf_exponent = 1.1);

}  // namespace prc::data
