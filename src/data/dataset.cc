#include "data/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace prc::data {

Column::Column(std::string name, std::vector<double> values)
    : name_(std::move(name)), values_(std::move(values)), sorted_(values_) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Column::min() const {
  if (sorted_.empty()) throw std::logic_error("min of empty column");
  return sorted_.front();
}

double Column::max() const {
  if (sorted_.empty()) throw std::logic_error("max of empty column");
  return sorted_.back();
}

double Column::quantile(double q) const {
  if (sorted_.empty()) throw std::logic_error("quantile of empty column");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("q must be in [0, 1]");
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::size_t Column::exact_range_count(double l, double u) const {
  if (l > u) return 0;
  const auto first = std::lower_bound(sorted_.begin(), sorted_.end(), l);
  const auto last = std::upper_bound(sorted_.begin(), sorted_.end(), u);
  return static_cast<std::size_t>(last - first);
}

Dataset::Dataset(const std::vector<AirQualityRecord>& records) {
  record_count_ = records.size();
  columns_.reserve(kAirQualityIndexCount);
  for (auto index : kAllAirQualityIndexes) {
    std::vector<double> values;
    values.reserve(records.size());
    for (const auto& record : records) values.push_back(record.value(index));
    columns_.emplace_back(std::string(index_name(index)), std::move(values));
  }
}

const Column& Dataset::column(AirQualityIndex index) const {
  return columns_.at(static_cast<std::size_t>(index));
}

Dataset Dataset::prefix(const std::vector<AirQualityRecord>& records,
                        std::size_t count) {
  const std::size_t n = std::min(count, records.size());
  return Dataset(
      std::vector<AirQualityRecord>(records.begin(), records.begin() + n));
}

}  // namespace prc::data
