#include "data/citypulse.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/csv.h"
#include "common/distributions.h"

namespace prc::data {
namespace {

constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
constexpr double kSecondsPerDay = 86400.0;
constexpr double kSecondsPerWeek = 7.0 * kSecondsPerDay;

/// Static per-index climatology: baseline level, diurnal amplitude, weekly
/// amplitude, episode proneness and noise scale, loosely matching typical AQI
/// sub-index behaviour (ozone peaks midday; NO2/CO peak at rush hours; PM
/// episodic; SO2 low and flat).
struct IndexProfile {
  double base;
  double diurnal_amp;
  double diurnal_phase;  // fraction of a day where the peak sits
  double weekly_amp;
  double episode_rate;   // per-record probability an episode starts
  double episode_boost;  // mean added level during an episode
  double noise_sigma;
};

constexpr IndexProfile profile_for(AirQualityIndex index) {
  switch (index) {
    case AirQualityIndex::kOzone:
      return {70.0, 30.0, 0.58, 4.0, 0.0006, 35.0, 8.0};
    case AirQualityIndex::kParticulateMatter:
      return {55.0, 12.0, 0.35, 6.0, 0.0012, 60.0, 10.0};
    case AirQualityIndex::kCarbonMonoxide:
      return {40.0, 18.0, 0.33, 8.0, 0.0008, 25.0, 6.0};
    case AirQualityIndex::kSulfurDioxide:
      return {25.0, 6.0, 0.45, 3.0, 0.0004, 20.0, 4.0};
    case AirQualityIndex::kNitrogenDioxide:
      return {60.0, 25.0, 0.36, 10.0, 0.0009, 30.0, 7.0};
  }
  return {50.0, 10.0, 0.5, 5.0, 0.001, 30.0, 5.0};
}

}  // namespace

CityPulseGenerator::CityPulseGenerator(CityPulseConfig config)
    : config_(config) {}

std::vector<AirQualityRecord> CityPulseGenerator::generate() const {
  Rng master(config_.seed);
  Rng noise_rng = master.split();
  Rng episode_rng = master.split();
  Rng sensor_rng = master.split();

  // Fixed per-sensor, per-index additive bias (calibration differences).
  std::vector<std::array<double, kAirQualityIndexCount>> sensor_bias(
      static_cast<std::size_t>(std::max(config_.sensor_count, 1)));
  for (auto& biases : sensor_bias) {
    for (double& b : biases) b = sample_normal(sensor_rng, 0.0, 3.0);
  }

  // Episode state per index: remaining records and current boost.
  struct Episode {
    std::size_t remaining = 0;
    double boost = 0.0;
  };
  std::array<Episode, kAirQualityIndexCount> episodes{};

  std::vector<AirQualityRecord> records;
  records.reserve(config_.record_count);
  const double total_span =
      static_cast<double>(config_.record_count) *
      static_cast<double>(config_.cadence_seconds);

  for (std::size_t r = 0; r < config_.record_count; ++r) {
    AirQualityRecord record;
    record.timestamp = config_.start_timestamp +
                       static_cast<std::int64_t>(r) * config_.cadence_seconds;
    record.sensor_id =
        static_cast<int>(r % static_cast<std::size_t>(
                                 std::max(config_.sensor_count, 1)));
    const double t = static_cast<double>(record.timestamp -
                                         config_.start_timestamp);
    const double day_frac = std::fmod(t, kSecondsPerDay) / kSecondsPerDay;
    const double week_frac = std::fmod(t, kSecondsPerWeek) / kSecondsPerWeek;
    const double season_frac = total_span > 0.0 ? t / total_span : 0.0;

    for (std::size_t idx = 0; idx < kAirQualityIndexCount; ++idx) {
      const auto profile = profile_for(static_cast<AirQualityIndex>(idx));
      auto& episode = episodes[idx];
      if (episode.remaining == 0 && episode_rng.bernoulli(profile.episode_rate)) {
        // Episodes last 2-12 hours (24-144 records at 5-min cadence).
        episode.remaining =
            static_cast<std::size_t>(episode_rng.uniform_int(24, 144));
        episode.boost =
            profile.episode_boost * (0.5 + episode_rng.uniform());
      }
      double level = profile.base;
      level += profile.diurnal_amp *
               std::sin(kTwoPi * (day_frac - profile.diurnal_phase + 0.25));
      level += profile.weekly_amp * std::sin(kTwoPi * week_frac);
      // Slow seasonal drift over the two-month window.
      level += 8.0 * std::sin(kTwoPi * season_frac / 2.0);
      if (episode.remaining > 0) {
        level += episode.boost;
        --episode.remaining;
      }
      level += sensor_bias[static_cast<std::size_t>(record.sensor_id)][idx];
      level += sample_normal(noise_rng, 0.0, profile.noise_sigma);
      record.values[idx] = std::clamp(level, 0.0, 200.0);
    }
    records.push_back(record);
  }
  return records;
}

void write_records_csv(const std::vector<AirQualityRecord>& records,
                       const std::string& path) {
  std::vector<std::string> header = {"timestamp", "sensor_id"};
  for (auto index : kAllAirQualityIndexes) {
    header.emplace_back(index_name(index));
  }
  CsvTable table(std::move(header));
  for (const auto& record : records) {
    std::vector<std::string> row;
    row.reserve(2 + kAirQualityIndexCount);
    row.push_back(std::to_string(record.timestamp));
    row.push_back(std::to_string(record.sensor_id));
    for (double v : record.values) {
      // Fixed 6-digit precision keeps the round-trip lossless enough for the
      // experiments while staying compact.
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.6f", v);
      row.emplace_back(buffer);
    }
    table.add_row(std::move(row));
  }
  write_csv_file(table, path);
}

std::int64_t parse_citypulse_timestamp(const std::string& text) {
  // Epoch seconds.
  if (!text.empty() &&
      text.find_first_not_of("0123456789-") == std::string::npos &&
      text.find('-', 1) == std::string::npos) {
    return std::stoll(text);
  }
  // "YYYY-MM-DD HH:MM:SS" (the real export's shape), treated as UTC.
  int year, month, day, hour, minute, second;
  if (std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d", &year, &month, &day,
                  &hour, &minute, &second) != 6) {
    throw std::invalid_argument("citypulse csv: unparseable timestamp '" +
                                text + "'");
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour < 0 ||
      hour > 23 || minute < 0 || minute > 59 || second < 0 || second > 60) {
    throw std::invalid_argument("citypulse csv: timestamp out of range '" +
                                text + "'");
  }
  // Days since the epoch via the standard civil-date algorithm
  // (Howard Hinnant's days_from_civil), avoiding timezone-dependent mktime.
  const int y = year - (month <= 2 ? 1 : 0);
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = static_cast<unsigned>(
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  const std::int64_t days =
      static_cast<std::int64_t>(era) * 146097 +
      static_cast<std::int64_t>(doe) - 719468;
  return days * 86400 + hour * 3600 + minute * 60 + second;
}

std::vector<AirQualityRecord> read_records_csv(const std::string& path) {
  const CsvTable table = read_csv_file(path);
  // The real export misspells two column names; accept both spellings.
  const auto find_any =
      [&table](std::initializer_list<std::string_view> names)
      -> std::optional<std::size_t> {
    for (auto name : names) {
      if (auto idx = table.column_index(name)) return idx;
    }
    return std::nullopt;
  };
  const auto require =
      [&](std::initializer_list<std::string_view> names) {
        auto idx = find_any(names);
        if (!idx) {
          throw std::invalid_argument("citypulse csv: missing column '" +
                                      std::string(*names.begin()) + "'");
        }
        return *idx;
      };
  const std::size_t ts_col = require({"timestamp"});
  const auto sensor_col = find_any({"sensor_id"});  // absent in the export
  std::array<std::size_t, kAirQualityIndexCount> value_cols{};
  value_cols[static_cast<std::size_t>(AirQualityIndex::kOzone)] =
      require({"ozone"});
  value_cols[static_cast<std::size_t>(AirQualityIndex::kParticulateMatter)] =
      require({"particulate_matter", "particullate_matter"});
  value_cols[static_cast<std::size_t>(AirQualityIndex::kCarbonMonoxide)] =
      require({"carbon_monoxide"});
  value_cols[static_cast<std::size_t>(AirQualityIndex::kSulfurDioxide)] =
      require({"sulfur_dioxide", "sulfure_dioxide"});
  value_cols[static_cast<std::size_t>(AirQualityIndex::kNitrogenDioxide)] =
      require({"nitrogen_dioxide"});

  std::vector<AirQualityRecord> records;
  records.reserve(table.row_count());
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    AirQualityRecord record;
    record.timestamp = parse_citypulse_timestamp(table.field(r, ts_col));
    record.sensor_id =
        sensor_col ? static_cast<int>(table.field_as_double(r, *sensor_col))
                   : 0;
    for (std::size_t idx = 0; idx < kAirQualityIndexCount; ++idx) {
      record.values[idx] = table.field_as_double(r, value_cols[idx]);
    }
    records.push_back(record);
  }
  return records;
}

}  // namespace prc::data
