// Synthetic traffic-volume dataset.
//
// The paper's introduction motivates range counting over "particulate
// matter level, traffic volume or weather data"; CityPulse also publishes a
// vehicle-count dataset alongside the pollution one.  This generator
// produces a statistically similar traffic workload — vehicle counts per
// 5-minute window with weekday rush-hour bimodality, quiet nights, weekend
// flattening and overdispersed (bursty) counts — so the framework's
// dataset-agnosticism can be exercised on a second, differently shaped
// domain (counts are discrete, zero-inflated at night and right-skewed,
// unlike the smooth AQI levels).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace prc::data {

struct TrafficConfig {
  /// Number of 5-minute observation windows (61 days' worth by default,
  /// matching the pollution dataset's span).
  std::size_t record_count = 17568;
  std::int64_t cadence_seconds = 300;
  std::int64_t start_timestamp = 1406851500;  // 2014-08-01T00:05:00Z
  /// Mean vehicles per window on an average weekday at peak.
  double peak_rate = 180.0;
  /// Night-time floor rate.
  double night_rate = 4.0;
  std::uint64_t seed = 20140802;
};

/// One traffic observation: vehicle count in the window.
struct TrafficRecord {
  std::int64_t timestamp = 0;
  double vehicle_count = 0.0;
};

class TrafficGenerator {
 public:
  explicit TrafficGenerator(TrafficConfig config = {});

  /// Deterministic in the config seed.
  std::vector<TrafficRecord> generate() const;

  /// Convenience: just the vehicle-count column.
  std::vector<double> generate_counts() const;

 private:
  TrafficConfig config_;
};

}  // namespace prc::data
