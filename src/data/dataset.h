// Columnar view over air-quality records.
//
// The estimators operate on plain multisets of doubles (one per air-quality
// index); Dataset adapts record sequences to that view and provides the
// value-domain metadata (min/max/quantiles) that workload generators use to
// produce meaningful query ranges.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/record.h"

namespace prc::data {

/// A single scalar column extracted from records, with cached order
/// statistics for range construction.
class Column {
 public:
  Column(std::string name, std::vector<double> values);

  const std::string& name() const noexcept { return name_; }
  const std::vector<double>& values() const noexcept { return values_; }
  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  /// Domain minimum/maximum.  Require non-empty column.
  double min() const;
  double max() const;

  /// Value at quantile q in [0, 1] (linear interpolation on sorted values).
  double quantile(double q) const;

  /// Exact range count |{x : l <= x <= u}| computed on the sorted copy in
  /// O(log n); this is the ground-truth oracle for all experiments.
  std::size_t exact_range_count(double l, double u) const;

 private:
  std::string name_;
  std::vector<double> values_;
  std::vector<double> sorted_;
};

/// All five air-quality columns of a record set.
class Dataset {
 public:
  explicit Dataset(const std::vector<AirQualityRecord>& records);

  std::size_t record_count() const noexcept { return record_count_; }

  const Column& column(AirQualityIndex index) const;

  /// Dataset restricted to the first `count` records, matching the paper's
  /// Fig. 4 "data size 10%..100%" prefix scaling.
  static Dataset prefix(const std::vector<AirQualityRecord>& records,
                        std::size_t count);

 private:
  Dataset() = default;
  std::size_t record_count_ = 0;
  std::vector<Column> columns_;
};

}  // namespace prc::data
