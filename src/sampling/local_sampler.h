// Per-node Bernoulli sampling with incremental top-up.
//
// The paper's protocol keeps one sample set per node and, when a query needs
// a higher sampling probability than was used so far, collects *more* samples
// rather than resampling from scratch ("if the existing samples are unable to
// satisfy the query accuracy requirement, more samples should be drawn").
// Raising the inclusion probability from p1 to p2 while keeping marginal
// inclusion Bernoulli(p2) is done by flipping each still-unsampled element
// with probability (p2 - p1) / (1 - p1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sampling/rank_sample.h"

namespace prc::sampling {

/// Owns one node's sorted local data and its sampling state.
class LocalSampler {
 public:
  /// Copies and sorts the node's local values.  Ranks are positions in this
  /// sorted order (1-based); duplicates get consecutive distinct ranks.
  explicit LocalSampler(std::vector<double> values);

  std::size_t data_count() const noexcept { return sorted_.size(); }

  /// Current inclusion probability (0 before the first round).
  double inclusion_probability() const noexcept { return p_; }

  /// Number of currently sampled elements.
  std::size_t sample_count() const noexcept { return sampled_count_; }

  /// Raises the inclusion probability to `p` (no-op if p <= current) and
  /// returns only the *newly* selected samples — what the node would transmit
  /// this round.  Throws std::invalid_argument unless p is in [0, 1].
  std::vector<RankedValue> raise_probability(double p, Rng& rng);

  /// Continuous collection: merges newly observed values into the local
  /// multiset, sampling each with the current inclusion probability so the
  /// marginal inclusion law stays Bernoulli(p) for every element.  Ranks of
  /// existing samples shift, so after an append the node must retransmit its
  /// full sample (current_sample()) rather than a delta.
  void append(const std::vector<double>& values, Rng& rng);

  /// The full current sample with ranks.
  RankSampleSet current_sample() const;

  /// First (smallest) and last (largest) local values; used by the estimator
  /// cases where the predecessor/successor does not exist.  Requires
  /// data_count() > 0.
  double first_value() const;
  double last_value() const;

 private:
  std::vector<double> sorted_;
  std::vector<bool> selected_;
  std::size_t sampled_count_ = 0;
  double p_ = 0.0;
};

}  // namespace prc::sampling
