#include "sampling/rank_sample.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace prc::sampling {
namespace {

bool value_rank_less(const RankedValue& a, const RankedValue& b) {
  if (a.value != b.value) return a.value < b.value;
  return a.rank < b.rank;
}

}  // namespace

RankSampleSet::RankSampleSet(std::vector<RankedValue> samples)
    : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end(), value_rank_less);
  check_invariants();
}

// Every station-side ingest constructs or merges a RankSampleSet, so this
// validation sits squarely on the collection hot path; the hash-set walk
// costs an allocation plus O(n) hashing per call (see the
// rank_sample_validation micro-benchmark).  It therefore rides PRC_DCHECK:
// debug and sanitizer builds verify every set, release builds trust the
// LocalSampler/codec contracts that produced the ranks.
void RankSampleSet::check_invariants() const {
#if PRC_DCHECK_IS_ON()
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(samples_.size());
  for (const auto& s : samples_) {
    PRC_DCHECK(s.rank != 0) << "rank sample: ranks are 1-based";
    PRC_DCHECK(seen.insert(s.rank).second)
        << "rank sample: duplicate rank " << s.rank;
  }
#endif
}

std::optional<RankedValue> RankSampleSet::predecessor(double x) const {
  // Last element with value <= x.  upper_bound over values gives the first
  // element with value > x; the predecessor is the one before it.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), x,
      [](double v, const RankedValue& s) { return v < s.value; });
  if (it == samples_.begin()) return std::nullopt;
  return *(it - 1);
}

std::optional<RankedValue> RankSampleSet::successor(double x) const {
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), x,
      [](double v, const RankedValue& s) { return v < s.value; });
  if (it == samples_.end()) return std::nullopt;
  return *it;
}

void RankSampleSet::merge(const RankSampleSet& other) {
  std::vector<RankedValue> merged;
  merged.reserve(samples_.size() + other.samples_.size());
  std::merge(samples_.begin(), samples_.end(), other.samples_.begin(),
             other.samples_.end(), std::back_inserter(merged),
             value_rank_less);
  samples_ = std::move(merged);
  check_invariants();
}

}  // namespace prc::sampling
