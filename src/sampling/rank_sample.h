// Rank-annotated samples: the wire format of the RankCounting protocol.
//
// Each sensor node samples its local multiset and ships (value, local rank)
// pairs to the base station.  The rank is the element's 1-based position in
// the node's sorted local data, which lets the estimator compute exact
// interior counts between any two sampled elements.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace prc::sampling {

/// One sampled element: its value and 1-based rank within the node's sorted
/// local dataset.  Duplicated values get distinct consecutive ranks.
struct RankedValue {
  double value = 0.0;
  std::uint64_t rank = 0;  // 1-based

  friend bool operator==(const RankedValue&, const RankedValue&) = default;
};

/// An immutable, value-ordered set of rank-annotated samples from one node,
/// supporting the predecessor/successor queries of the RankCounting
/// estimator (paper §III-A).
class RankSampleSet {
 public:
  RankSampleSet() = default;

  /// Takes samples in any order; sorts by (value, rank).  Rank validity
  /// (1-based, collision-free) is verified only when PRC_DCHECK is on
  /// (debug / sanitizer builds), raising prc::ContractViolation (a
  /// std::invalid_argument); release builds trust the sampler/codec
  /// contracts and skip the check — it sits on the station's per-report
  /// ingest path.
  explicit RankSampleSet(std::vector<RankedValue> samples);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  const std::vector<RankedValue>& samples() const noexcept { return samples_; }

  /// 𝔭(x): the sampled element with the largest value <= x (ties: largest
  /// rank, i.e. the one closest to x in sorted order).  nullopt if none.
  std::optional<RankedValue> predecessor(double x) const;

  /// 𝔰(x): the sampled element with the smallest value > x (ties: smallest
  /// rank).  nullopt if none.
  std::optional<RankedValue> successor(double x) const;

  /// Merges additional samples (e.g. from a top-up round).  Rank collisions
  /// are caught only when PRC_DCHECK is on, like the constructor.
  void merge(const RankSampleSet& other);

 private:
  /// Debug-only full validation (see constructor comment).
  void check_invariants() const;

  std::vector<RankedValue> samples_;  // sorted by (value, rank)
};

}  // namespace prc::sampling
