#include "sampling/local_sampler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace prc::sampling {

LocalSampler::LocalSampler(std::vector<double> values)
    : sorted_(std::move(values)), selected_(sorted_.size(), false) {
  std::sort(sorted_.begin(), sorted_.end());
}

std::vector<RankedValue> LocalSampler::raise_probability(double p, Rng& rng) {
  PRC_CHECK(std::isfinite(p) && p >= 0.0 && p <= 1.0)
      << "inclusion probability must be in [0, 1], got " << p;
  std::vector<RankedValue> added;
  if (p <= p_) return added;
  // Conditional inclusion probability for elements not yet selected.
  const double conditional =
      p_ >= 1.0 ? 0.0 : (p - p_) / (1.0 - p_);
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (selected_[i]) continue;
    if (rng.bernoulli(conditional)) {
      selected_[i] = true;
      ++sampled_count_;
      added.push_back(RankedValue{sorted_[i], static_cast<std::uint64_t>(i + 1)});
    }
  }
  p_ = p;
  return added;
}

void LocalSampler::append(const std::vector<double>& values, Rng& rng) {
  if (values.empty()) return;
  // Pair up the existing order with its selection flags, add the newcomers
  // (each drawn at the current p), and re-sort; ranks follow the new order.
  std::vector<std::pair<double, bool>> merged;
  merged.reserve(sorted_.size() + values.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    merged.emplace_back(sorted_[i], static_cast<bool>(selected_[i]));
  }
  for (double v : values) {
    const bool take = rng.bernoulli(p_);
    merged.emplace_back(v, take);
    if (take) ++sampled_count_;
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  sorted_.resize(merged.size());
  selected_.assign(merged.size(), false);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    sorted_[i] = merged[i].first;
    selected_[i] = merged[i].second;
  }
}

RankSampleSet LocalSampler::current_sample() const {
  std::vector<RankedValue> samples;
  samples.reserve(sampled_count_);
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (selected_[i]) {
      samples.push_back(
          RankedValue{sorted_[i], static_cast<std::uint64_t>(i + 1)});
    }
  }
  return RankSampleSet(std::move(samples));
}

double LocalSampler::first_value() const {
  PRC_CHECK(!sorted_.empty()) << "first_value of empty node";
  return sorted_.front();
}

double LocalSampler::last_value() const {
  PRC_CHECK(!sorted_.empty()) << "last_value of empty node";
  return sorted_.back();
}

}  // namespace prc::sampling
