#include "common/metrics_metadata.h"

#include <unordered_map>

namespace prc::telemetry {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

const std::vector<MetricMetadata>& all_metric_metadata() {
  static const std::vector<MetricMetadata> table = {
#define PRC_METRIC(metric_name, metric_kind, metric_unit, metric_help) \
  MetricMetadata{metric_name, MetricKind::metric_kind, metric_unit,    \
                 metric_help},
#include "common/metrics_metadata.inc"
#undef PRC_METRIC
  };
  return table;
}

const MetricMetadata* find_metric_metadata(const std::string& name) {
  static const std::unordered_map<std::string, const MetricMetadata*> index =
      [] {
        std::unordered_map<std::string, const MetricMetadata*> out;
        for (const auto& entry : all_metric_metadata()) {
          out.emplace(entry.name, &entry);
        }
        return out;
      }();
  auto found = index.find(name);
  return found == index.end() ? nullptr : found->second;
}

}  // namespace prc::telemetry
