#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/telemetry.h"

namespace prc::trace {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread stack of open span ids; parent/child links are intra-thread.
thread_local std::vector<std::uint64_t> t_open_spans;

// Small stable per-thread id (1, 2, ...) in thread-creation order — Chrome
// trace viewers want compact integer tids, not pthread handles.
std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next_tid{0};
  thread_local const std::uint32_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
  return tid;
}

// Minimal JSON string escaping for span names (names are identifiers by
// convention, but a stray quote must not corrupt the trace file).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer() : epoch_ns_(steady_now_ns()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::int64_t Tracer::now_ns() const { return steady_now_ns() - epoch_ns_; }

void Tracer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(1, capacity);
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

void Tracer::record(SpanRecord span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(span));
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  dropped_ = 0;
}

std::string Tracer::flame_text() const {
  auto spans = snapshot();
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  std::ostringstream out;
  out << "# trace (" << spans.size() << " spans";
  const std::uint64_t evicted = dropped();
  if (evicted != 0) out << ", " << evicted << " evicted";
  out << ")\n";
  if (evicted != 0) {
    out << "# WARNING: " << evicted
        << " span(s) evicted from the ring buffer (oldest first); this "
           "flamegraph is incomplete — raise Tracer::set_capacity() or "
           "scope tracing tighter\n";
  }
  out << std::fixed << std::setprecision(3);
  for (const auto& span : spans) {
    out << std::string(2 * span.depth, ' ') << span.name << "  "
        << static_cast<double>(span.duration_ns) / 1e6 << " ms  @ +"
        << static_cast<double>(span.start_ns) / 1e6 << " ms\n";
  }
  return out.str();
}

std::string Tracer::to_chrome_json() const {
  auto spans = snapshot();
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  const auto previous = out.precision();
  out.precision(3);
  out << std::fixed;
  bool first = true;
  for (const auto& span : spans) {
    out << (first ? "\n" : ",\n");
    first = false;
    // "X" = complete event; ts/dur are microseconds per the trace_event
    // spec.  pid is constant (single process); tid preserves per-thread
    // nesting exactly as the viewer's flame lanes expect.
    out << "  {\"name\": \"" << json_escape(span.name)
        << "\", \"cat\": \"prc\", \"ph\": \"X\", \"ts\": "
        << static_cast<double>(span.start_ns) / 1e3
        << ", \"dur\": " << static_cast<double>(span.duration_ns) / 1e3
        << ", \"pid\": 1, \"tid\": " << span.tid << ", \"args\": {\"id\": "
        << span.id << ", \"parent_id\": " << span.parent_id
        << ", \"depth\": " << span.depth << "}}";
  }
  out.precision(previous);
  out << (first ? "]" : "\n]") << "}\n";
  return out.str();
}

void publish_telemetry() {
  telemetry::gauge("trace.spans_dropped")
      .set(static_cast<double>(Tracer::instance().dropped()));
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  auto& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  active_ = true;
  id_ = tracer.next_id();
  parent_id_ = t_open_spans.empty() ? 0 : t_open_spans.back();
  depth_ = static_cast<std::uint32_t>(t_open_spans.size());
  t_open_spans.push_back(id_);
  start_ns_ = tracer.now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  auto& tracer = Tracer::instance();
  SpanRecord span;
  span.id = id_;
  span.parent_id = parent_id_;
  span.depth = depth_;
  span.tid = current_tid();
  span.name = name_;
  span.start_ns = start_ns_;
  span.duration_ns = tracer.now_ns() - start_ns_;
  t_open_spans.pop_back();
  tracer.record(std::move(span));
}

}  // namespace prc::trace
