#include "common/telemetry.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace prc::telemetry {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_double(std::ostringstream& out, double value) {
  // max_digits10 keeps snapshot -> JSON -> snapshot lossless.
  const auto previous = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  out.precision(previous);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Minimal cursor over the JSON dialect to_json() emits.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      throw std::invalid_argument(std::string("telemetry JSON: expected '") +
                                  c + "' at offset " + std::to_string(pos_));
    }
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  double parse_number() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) {
      throw std::invalid_argument("telemetry JSON: expected a number at "
                                  "offset " + std::to_string(pos_));
    }
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const std::vector<double>& default_bounds() {
  static const std::vector<double> bounds = [] {
    // 1-2-5 series over 10^-6 .. 10^9.
    std::vector<double> out;
    for (int exponent = -6; exponent <= 9; ++exponent) {
      const double decade = std::pow(10.0, exponent);
      for (double mantissa : {1.0, 2.0, 5.0}) {
        out.push_back(mantissa * decade);
      }
    }
    return out;
  }();
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  PRC_CHECK(!bounds_.empty()) << "histogram needs >= 1 bucket bound";
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    PRC_CHECK(bounds_[i] < bounds_[i + 1])
        << "histogram bounds must be strictly increasing at index " << i;
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) {
  PRC_CHECK_FINITE(value);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[bucket];
  sum_ += value;
  min_ = count_ == 0 ? value : std::min(min_, value);
  max_ = count_ == 0 ? value : std::max(max_, value);
  ++count_;
}

double Histogram::quantile_locked(double q) const {
  if (count_ == 0) return 0.0;
  const double rank = q * static_cast<double>(count_);
  double seen = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = seen + static_cast<double>(counts_[i]);
    if (rank <= next) {
      // Linear interpolation inside the bucket; the edge buckets use the
      // exact observed min/max as their finite ends.
      const double lo = i == 0 ? min_ : bounds_[i - 1];
      const double hi = i == bounds_.size() ? max_ : bounds_[i];
      const double fraction =
          (rank - seen) / static_cast<double>(counts_[i]);
      const double value = lo + (hi - lo) * fraction;
      return std::clamp(value, min_, max_);
    }
    seen = next;
  }
  return max_;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  std::lock_guard<std::mutex> lock(mutex_);
  out.count = count_;
  out.sum = sum_;
  out.min = min_;
  out.max = max_;
  out.p50 = quantile_locked(0.50);
  out.p95 = quantile_locked(0.95);
  out.p99 = quantile_locked(0.99);
  out.bucket_counts = counts_;
  return out;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

std::size_t TelemetrySnapshot::metric_count() const noexcept {
  return counters.size() + gauges.size() + histograms.size();
}

bool TelemetrySnapshot::has_prefix(const std::string& prefix) const {
  const auto starts = [&prefix](const std::string& name) {
    return name.rfind(prefix, 0) == 0;
  };
  for (const auto& [name, value] : counters) {
    if (starts(name)) return true;
  }
  for (const auto& [name, value] : gauges) {
    if (starts(name)) return true;
  }
  for (const auto& histogram : histograms) {
    if (starts(histogram.name)) return true;
  }
  return false;
}

std::string TelemetrySnapshot::to_json() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << json_escape(counters[i].first) << "\": " << counters[i].second;
  }
  out << (counters.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << json_escape(gauges[i].first) << "\": ";
    append_double(out, gauges[i].second);
  }
  out << (gauges.empty() ? "}" : "\n  }") << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(h.name)
        << "\": {\"count\": " << h.count << ", \"sum\": ";
    append_double(out, h.sum);
    out << ", \"min\": ";
    append_double(out, h.min);
    out << ", \"max\": ";
    append_double(out, h.max);
    out << ", \"p50\": ";
    append_double(out, h.p50);
    out << ", \"p95\": ";
    append_double(out, h.p95);
    out << ", \"p99\": ";
    append_double(out, h.p99);
    out << ", \"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b != 0) out << ", ";
      append_double(out, h.bounds[b]);
    }
    out << "], \"bucket_counts\": [";
    for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (b != 0) out << ", ";
      out << h.bucket_counts[b];
    }
    out << "]}";
  }
  out << (histograms.empty() ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

std::string TelemetrySnapshot::to_csv() const {
  std::ostringstream out;
  out << "kind,name,field,value\n";
  for (const auto& [name, value] : counters) {
    out << "counter," << name << ",value," << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << "gauge," << name << ",value,";
    append_double(out, value);
    out << "\n";
  }
  for (const auto& h : histograms) {
    out << "histogram," << h.name << ",count," << h.count << "\n";
    const std::pair<const char*, double> fields[] = {
        {"sum", h.sum},   {"min", h.min}, {"max", h.max},
        {"mean", h.mean()}, {"p50", h.p50}, {"p95", h.p95},
        {"p99", h.p99}};
    for (const auto& [field, value] : fields) {
      out << "histogram," << h.name << "," << field << ",";
      append_double(out, value);
      out << "\n";
    }
  }
  return out.str();
}

TelemetrySnapshot TelemetrySnapshot::from_json(const std::string& json) {
  TelemetrySnapshot out;
  JsonCursor cursor(json);
  cursor.expect('{');

  const auto parse_section = [&cursor](const std::string& expected_key) {
    const std::string key = cursor.parse_string();
    if (key != expected_key) {
      throw std::invalid_argument("telemetry JSON: expected section '" +
                                  expected_key + "', got '" + key + "'");
    }
    cursor.expect(':');
    cursor.expect('{');
  };

  parse_section("counters");
  while (cursor.peek() == '"') {
    const std::string name = cursor.parse_string();
    cursor.expect(':');
    out.counters.emplace_back(
        name, static_cast<std::uint64_t>(cursor.parse_number()));
    if (!cursor.consume(',')) break;
  }
  cursor.expect('}');
  cursor.expect(',');

  parse_section("gauges");
  while (cursor.peek() == '"') {
    const std::string name = cursor.parse_string();
    cursor.expect(':');
    out.gauges.emplace_back(name, cursor.parse_number());
    if (!cursor.consume(',')) break;
  }
  cursor.expect('}');
  cursor.expect(',');

  parse_section("histograms");
  while (cursor.peek() == '"') {
    HistogramSnapshot h;
    h.name = cursor.parse_string();
    cursor.expect(':');
    cursor.expect('{');
    while (cursor.peek() == '"') {
      const std::string field = cursor.parse_string();
      cursor.expect(':');
      if (field == "bounds" || field == "bucket_counts") {
        cursor.expect('[');
        while (cursor.peek() != ']') {
          const double value = cursor.parse_number();
          if (field == "bounds") {
            h.bounds.push_back(value);
          } else {
            h.bucket_counts.push_back(static_cast<std::uint64_t>(value));
          }
          if (!cursor.consume(',')) break;
        }
        cursor.expect(']');
      } else {
        const double value = cursor.parse_number();
        if (field == "count") {
          h.count = static_cast<std::uint64_t>(value);
        } else if (field == "sum") {
          h.sum = value;
        } else if (field == "min") {
          h.min = value;
        } else if (field == "max") {
          h.max = value;
        } else if (field == "p50") {
          h.p50 = value;
        } else if (field == "p95") {
          h.p95 = value;
        } else if (field == "p99") {
          h.p99 = value;
        } else {
          throw std::invalid_argument(
              "telemetry JSON: unknown histogram field '" + field + "'");
        }
      }
      if (!cursor.consume(',')) break;
    }
    cursor.expect('}');
    out.histograms.push_back(std::move(h));
    if (!cursor.consume(',')) break;
  }
  cursor.expect('}');
  cursor.expect('}');
  return out;
}

Telemetry& Telemetry::registry() {
  static Telemetry instance;
  return instance;
}

Counter& Telemetry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Telemetry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Telemetry::histogram(const std::string& name,
                                std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? default_bounds() : std::move(bounds));
  }
  return *slot;
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    auto h = histogram->snapshot();
    h.name = name;
    out.histograms.push_back(std::move(h));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return out;
}

void Telemetry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

ScopedTimer::ScopedTimer(Histogram& sink)
    : sink_(sink), start_ns_(steady_now_ns()) {}

ScopedTimer::~ScopedTimer() {
  const double elapsed_us =
      static_cast<double>(steady_now_ns() - start_ns_) / 1000.0;
  sink_.record(elapsed_us);
}

}  // namespace prc::telemetry
