// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in prc (samplers, noise mechanisms, workload
// generators, failure injectors) draws from an explicitly-passed Rng so that
// experiments are reproducible bit-for-bit from a single master seed.
//
// The generator is xoshiro256++ seeded via SplitMix64, the combination
// recommended by the xoshiro authors.  We do not use std::mt19937 because its
// seeding is error-prone (a single 32-bit seed) and its state is large; and we
// never use a shared global generator because that couples unrelated
// experiments' random streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace prc {

/// SplitMix64 step; used to expand a 64-bit seed into generator state and to
/// derive independent child seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator.  Satisfies std::uniform_random_bit_generator, so it
/// can also be plugged into <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Derives an independent child generator.  Children produced by distinct
  /// calls have statistically independent streams; this is how per-node /
  /// per-trial generators are created from a master seed.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace prc
