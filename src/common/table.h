// Fixed-width text tables for experiment output.
//
// Every bench binary prints the paper-style series through this, so the
// formatting (alignment, precision) is consistent across all experiments.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace prc {

/// Builds an aligned text table row by row.  Cells are strings; the numeric
/// overloads format with a configurable precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header, int precision = 4);

  /// Appends a row of pre-formatted cells.  Throws on width mismatch.
  void add_row(std::vector<std::string> cells);

  /// Appends a row of numbers formatted with the table's precision.
  void add_numeric_row(const std::vector<double>& cells);

  /// Formats a double with this table's precision.
  std::string format(double value) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table with a separator line under the header.
  std::string to_string() const;

  /// Renders the same content as CSV (for downstream plotting).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  int precision_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace prc
