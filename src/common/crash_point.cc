#include "common/crash_point.h"

#include <algorithm>
#include <cstdlib>

namespace prc::crashpoints {

void Point::fire(int mode) {
  // Self-disarm before firing: recovery code that re-walks the same path
  // (WAL re-append, compaction after replay) must not die again.
  mode_.store(static_cast<int>(CrashMode::kDisarmed),
              std::memory_order_relaxed);
  if (mode == static_cast<int>(CrashMode::kExit)) {
    // A real crash runs no destructors and flushes no buffered streams;
    // _Exit models that faithfully — only bytes already handed to the OS
    // survive, which is exactly what the WAL's flush discipline relies on.
    std::_Exit(Registry::kExitStatus);
  }
  throw SimulatedCrash(name_);
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

Registry::Registry() {
  const char* spec = std::getenv("PRC_CRASH_POINT");
  if (spec == nullptr || *spec == '\0') return;
  std::string name(spec);
  CrashMode mode = CrashMode::kThrow;
  if (const auto colon = name.rfind(':'); colon != std::string::npos) {
    const std::string suffix = name.substr(colon + 1);
    if (suffix == "exit") {
      mode = CrashMode::kExit;
      name.resize(colon);
    } else if (suffix == "throw") {
      name.resize(colon);
    }
    // Any other suffix is part of the point name itself.
  }
  if (!name.empty()) arm(name, mode);
}

Point& Registry::require(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = points_[name];
  if (!slot) slot = std::make_unique<Point>(name);
  return *slot;
}

void Registry::arm(const std::string& name, CrashMode mode) {
  require(name).mode_.store(static_cast<int>(mode),
                            std::memory_order_relaxed);
}

void Registry::disarm(const std::string& name) {
  arm(name, CrashMode::kDisarmed);
}

void Registry::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, point] : points_) {
    point->mode_.store(static_cast<int>(CrashMode::kDisarmed),
                       std::memory_order_relaxed);
  }
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(points_.size());
    for (const auto& [name, point] : points_) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t Registry::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second->hits();
}

}  // namespace prc::crashpoints
