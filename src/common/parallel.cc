#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/thread_annotations.h"

namespace prc::parallel {
namespace {

thread_local bool t_in_parallel_region = false;

std::size_t initial_thread_count() {
  // PRC_THREADS seeds the default for processes that never call
  // set_thread_count(); 0 means "hardware".  Anything unparsable falls back
  // to the serial default so a stray variable cannot change results.
  if (const char* env = std::getenv("PRC_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      return parsed == 0 ? hardware_threads()
                         : static_cast<std::size_t>(parsed);
    }
  }
  return 1;
}

std::atomic<std::size_t>& configured_threads() {
  static std::atomic<std::size_t> count{initial_thread_count()};
  return count;
}

/// One in-flight parallel_for: a fixed block count claimed via an atomic
/// cursor (contiguous blocks, no per-item stealing — cache-friendly and
/// cheap) and a completion count the caller waits on.
struct Job {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t items = 0;
  std::size_t blocks = 0;
  // Block cursors: monotonic seq_cst counters; the caller's final read
  // of `completed` happens inside the done_cv_ predicate under the pool
  // mutex, so no cross-thread decision rests on a relaxed load.
  std::atomic<std::size_t> next{0};       // lint:allow atomic
  std::atomic<std::size_t> completed{0};  // lint:allow atomic
  std::mutex error_mutex;
  std::exception_ptr error PRC_GUARDED_BY(error_mutex);

  void run_block(std::size_t block) noexcept {
    const std::size_t begin = block * items / blocks;
    const std::size_t end = (block + 1) * items / blocks;
    if (begin < end) {
      try {
        (*body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  }
};

/// Fixed pool of (size - 1) workers; the caller of run() is the size-th
/// lane.  One job runs at a time; concurrent callers from threads outside
/// the pool serialize on run_mutex_ (nested calls from inside a region
/// never reach the pool — parallel_for inlines them).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t size) {
    workers_.reserve(size > 0 ? size - 1 : 0);
    for (std::size_t i = 0; i + 1 < size; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  std::size_t size() const noexcept { return workers_.size() + 1; }

  void run(Job& job) {
    std::lock_guard<std::mutex> serialize(run_mutex_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      ++generation_;
    }
    wake_cv_.notify_all();
    // The caller is a full participant: claim blocks until the cursor runs
    // dry, then wait for the stragglers.
    t_in_parallel_region = true;
    for (;;) {
      const std::size_t block = job.next.fetch_add(1);
      if (block >= job.blocks) break;
      job.run_block(block);
      job.completed.fetch_add(1);
    }
    t_in_parallel_region = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Retract the job before waiting so no further worker can enter it,
      // then wait for every worker that DID enter to step back out.  Waiting
      // on completed alone is not enough: a worker that loaded job_ but has
      // not yet touched the cursor would race our caller destroying the
      // stack-allocated Job.
      job_ = nullptr;
      // Explicit wait loop (not a predicate lambda): thread-safety
      // analysis cannot carry the held capability into a lambda body.
      while (job.completed.load() != job.blocks || workers_in_job_ != 0) {
        done_cv_.wait(lock);
      }
    }
  }

 private:
  void worker_loop() {
    t_in_parallel_region = true;
    std::uint64_t seen_generation = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        // Explicit wait loop: see run() above.
        while (!stop_ && (job_ == nullptr || generation_ == seen_generation)) {
          wake_cv_.wait(lock);
        }
        if (stop_) return;
        seen_generation = generation_;
        job = job_;
        ++workers_in_job_;
      }
      for (;;) {
        const std::size_t block = job->next.fetch_add(1);
        if (block >= job->blocks) break;
        job->run_block(block);
        job->completed.fetch_add(1);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --workers_in_job_;
      }
      // The caller waits for completed == blocks AND workers_in_job_ == 0;
      // our exit may satisfy either half, so always notify.
      done_cv_.notify_all();
    }
  }

  std::vector<std::thread> workers_;
  // Serializes whole run() submissions (one job in flight at a time);
  // guards no data — the job handoff itself happens under mutex_.
  std::mutex run_mutex_;  // lint:allow atomic
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  Job* job_ PRC_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ PRC_GUARDED_BY(mutex_) = 0;
  std::size_t workers_in_job_ PRC_GUARDED_BY(mutex_) = 0;
  bool stop_ PRC_GUARDED_BY(mutex_) = false;
};

std::mutex& pool_mutex() {
  static std::mutex mutex;
  return mutex;
}

/// The shared pool, rebuilt when the configured size changed since the
/// last parallel call.  Guarded by pool_mutex(); the unique_ptr is static
/// so workers join cleanly at process exit.
ThreadPool& shared_pool() {
  static std::unique_ptr<ThreadPool> pool;
  const std::size_t want = thread_count();
  if (!pool || pool->size() != want) {
    pool = std::make_unique<ThreadPool>(want);
  }
  return *pool;
}

}  // namespace

std::size_t hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t thread_count() noexcept {
  const std::size_t count = configured_threads().load(std::memory_order_relaxed);
  return count == 0 ? 1 : count;
}

void set_thread_count(std::size_t count) {
  configured_threads().store(count == 0 ? hardware_threads() : count,
                             std::memory_order_relaxed);
}

bool in_parallel_region() noexcept { return t_in_parallel_region; }

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  PRC_CHECK(body != nullptr) << "parallel_for: null body";
  if (n == 0) return;
  const std::size_t threads = thread_count();
  if (threads == 1 || n == 1 || t_in_parallel_region) {
    body(0, n);
    return;
  }
  Job job;
  job.body = &body;
  job.items = n;
  // A few blocks per lane evens out skew without per-item dispatch cost;
  // never more blocks than items.
  constexpr std::size_t kBlocksPerThread = 4;
  job.blocks = std::min(n, threads * kBlocksPerThread);
  std::lock_guard<std::mutex> lock(pool_mutex());
  shared_pool().run(job);
  // Workers are all out of the job once run() returns, but the compiler
  // cannot see that: read the slot under its own mutex.
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(job.error_mutex);
    error = job.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace prc::parallel
