// Deterministic parallel execution primitives.
//
// A small fixed-size thread pool drives two loop shapes:
//
//   parallel_for(n, body)        — body(begin, end) over contiguous chunks
//                                  of [0, n); chunk→thread assignment is
//                                  dynamic, so the body must only write
//                                  state owned by its index range.
//   parallel_reduce(n, chunk,    — associative merge over a FIXED chunk
//                   id, map, op)   grid: map(begin, end) produces one
//                                  partial per chunk and op folds the
//                                  partials in chunk-index order.
//
// Determinism is the design contract: the reduce chunk grid depends only on
// (n, chunk), never on the thread count, and partials are folded serially
// in index order — so a reduction returns the same bits at threads=1 and
// threads=64.  parallel_for carries no ordering of its own; callers get
// determinism by writing per-index slots and merging serially afterwards
// (the pattern the collection round and the batched estimator use).
//
// The pool is process-global and lazily built at the configured
// thread_count().  The default is 1 (fully serial — byte-identical to the
// pre-parallel library); benches and tools opt in via --threads, and the
// PRC_THREADS environment variable seeds the default for processes that
// never call set_thread_count().  Nested parallel_for calls from inside a
// pool worker (or from a region the caller is already driving) run inline
// on the calling thread, so composed parallel code cannot deadlock the
// fixed-size pool.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace prc::parallel {

/// Hardware concurrency, clamped to >= 1.
std::size_t hardware_threads() noexcept;

/// The current global thread count (>= 1).  Initialized from PRC_THREADS
/// when set (0 there means "hardware"), else 1.
std::size_t thread_count() noexcept;

/// Sets the global thread count.  0 = hardware_threads().  The shared pool
/// is (re)built lazily on the next parallel call.  Not safe to call while a
/// parallel region is running.
void set_thread_count(std::size_t count);

/// True when the calling thread is already inside a parallel region (pool
/// worker or a caller currently driving one); nested loops run inline.
bool in_parallel_region() noexcept;

/// Runs body(begin, end) over a partition of [0, n) on the shared pool.
/// Blocks until every chunk completed; rethrows the first exception any
/// chunk raised.  With thread_count() == 1, n == 0/1, or when nested,
/// runs body(0, n) inline.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Per-index convenience over parallel_for.
template <typename Fn>
void parallel_for_each(std::size_t n, Fn&& fn) {
  parallel_for(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Default reduce chunk: small enough to expose parallelism on big inputs,
/// large enough that inputs under one chunk fold exactly like the plain
/// serial loop (so estimates over <= 256 nodes are bit-identical to the
/// pre-parallel library).
inline constexpr std::size_t kDefaultReduceChunk = 256;

/// Chunked associative reduction with a thread-count-independent grid:
/// ceil(n / chunk) chunks, map_chunk(begin, end) evaluated (possibly in
/// parallel) per chunk, partials folded serially in chunk-index order via
/// combine(accumulator, partial).  Bit-deterministic for any thread count.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t n, std::size_t chunk, T identity,
                  MapFn&& map_chunk, CombineFn&& combine) {
  if (n == 0 || chunk == 0) return identity;
  const std::size_t chunks = (n + chunk - 1) / chunk;
  if (chunks == 1) {
    return combine(std::move(identity), map_chunk(std::size_t{0}, n));
  }
  std::vector<T> partials(chunks);
  parallel_for(chunks, [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = lo + chunk < n ? lo + chunk : n;
      partials[c] = map_chunk(lo, hi);
    }
  });
  T total = std::move(identity);
  for (auto& partial : partials) {
    total = combine(std::move(total), std::move(partial));
  }
  return total;
}

}  // namespace prc::parallel
