// Type-enforced privacy flow: strong privacy-unit types and raw/released
// taint wrappers.
//
// The paper's guarantees are carried by a handful of dimensionless doubles
// that must never be confused with one another:
//
//   Epsilon          the Laplace budget BEFORE sampling amplification —
//                    what the mechanism's noise scale is calibrated to.
//   EffectiveEpsilon the amplified budget eps' = ln(1 + p(e^eps - 1)) of
//                    Lemma 3.4 — what the ledger composes and the broker
//                    caps.  Swapping it with Epsilon silently over- or
//                    under-accounts every sale.
//   Delta            the confidence of an (alpha, delta) contract
//                    (Def. 2.2) and the optimizer's intermediate delta'.
//   Alpha            the relative error bound of the same contract.
//   Probability      a sampling / inclusion probability in (0, 1].
//
// Each alias is a distinct phantom-typed wrapper around one double
// (zero-cost: trivially copyable, same size and layout as double).  The
// rules are:
//
//   * a bare double (or literal) converts IN implicitly — that is the
//     adoption path, policed by the `unit-suffix-consistency` lint rule
//     and scripts/check_units_adoption.py rather than by the type system;
//   * a unit converts OUT to double implicitly (formula code reads
//     straight through), but double is a dead end: converting on to a
//     DIFFERENT unit would need a second user-defined conversion, which
//     C++ forbids.  `Epsilon e = some_delta;`, passing an
//     EffectiveEpsilon where an Epsilon parameter is declared, and
//     returning the wrong unit are all compile errors;
//   * mixed-unit arithmetic and comparisons (eps < delta, alpha + delta,
//     ...) are explicitly deleted, so they fail even though both sides
//     could decay to double.
//
// Raw<T> / Released<T> implement the raw -> released taint boundary:
// Raw wraps an unperturbed, privacy-sensitive quantity (a RankCounting
// estimate before noise) and converts to NOTHING implicitly — it cannot
// be assigned into a ledger field, a telemetry call, or a receipt without
// a visible `.get()`.  Released wraps a value that went through a
// differentially private mechanism; anyone may read it, but only the DP
// mechanisms listed as friends below can MINT one.  Removing or widening
// that friend list is detected by tests/compile_fail (the cases that
// construct a Released outside the DP layer start compiling, and the
// harness fails).
//
// The compile-fail contract tests in tests/compile_fail/ assert one case
// per forbidden conversion; tests/units_test.cc covers the runtime
// semantics (arithmetic, comparisons, plan round-trips).
#pragma once

#include <type_traits>

namespace prc::dp {
class LaplaceMechanism;
class PrivateRangeCounter;
class WorkloadAnswerer;
class HierarchicalMechanism;
}  // namespace prc::dp

namespace prc::units {

/// Phantom-typed double.  `Tag` only disambiguates; it is never defined.
template <class Tag>
class Unit {
 public:
  constexpr Unit() noexcept = default;
  /// Implicit on purpose: literals and legacy doubles flow in freely (the
  /// lint layer owns naming discipline); what the type system forbids is
  /// crossing BETWEEN units.
  constexpr Unit(double value) noexcept : value_(value) {}

  /// Explicit read-out for formula code that wants to be visibly unitless.
  constexpr double value() const noexcept { return value_; }

  /// Implicit read-out: units participate in double arithmetic, streams
  /// and PRC_CHECK messages without ceremony.  The conversion cannot chain
  /// into another unit (one user-defined conversion per sequence).
  constexpr operator double() const noexcept { return value_; }

  // Same-unit accumulation (the ledger and workload totals).  The operand
  // converts through Unit, so `eps += 0.1` works while `eps += delta`
  // would need a second user-defined conversion and fails to compile.
  constexpr Unit& operator+=(Unit other) noexcept {
    value_ += other.value_;
    return *this;
  }
  constexpr Unit& operator-=(Unit other) noexcept {
    value_ -= other.value_;
    return *this;
  }

 private:
  double value_ = 0.0;
};

// Mixed-unit operations are deleted outright.  Without these, both sides
// would decay to double and the typo eps < delta would compile.
#define PRC_UNITS_DELETE_MIXED(op)                          \
  template <class T1, class T2>                             \
    requires(!std::is_same_v<T1, T2>)                       \
  void operator op(Unit<T1>, Unit<T2>) = delete
PRC_UNITS_DELETE_MIXED(+);
PRC_UNITS_DELETE_MIXED(-);
PRC_UNITS_DELETE_MIXED(*);
PRC_UNITS_DELETE_MIXED(/);
PRC_UNITS_DELETE_MIXED(<);
PRC_UNITS_DELETE_MIXED(>);
PRC_UNITS_DELETE_MIXED(<=);
PRC_UNITS_DELETE_MIXED(>=);
PRC_UNITS_DELETE_MIXED(==);
PRC_UNITS_DELETE_MIXED(!=);
#undef PRC_UNITS_DELETE_MIXED

/// Laplace budget before amplification (calibrates sensitivity / epsilon).
using Epsilon = Unit<struct EpsilonTag>;
/// Amplified budget eps' = ln(1 + p(e^eps - 1)) — Lemma 3.4.  The unit the
/// ledger composes, the broker caps, and Theorem 4.2's audit trail sees.
using EffectiveEpsilon = Unit<struct EffectiveEpsilonTag>;
/// Contract confidence delta (and the optimizer's intermediate delta').
using Delta = Unit<struct DeltaTag>;
/// Contract relative error alpha (and the intermediate alpha').
using Alpha = Unit<struct AlphaTag>;
/// Sampling / inclusion probability in (0, 1] (Theorem 3.3's p).
using Probability = Unit<struct ProbabilityTag>;

static_assert(sizeof(Epsilon) == sizeof(double) &&
                  std::is_trivially_copyable_v<Epsilon>,
              "units must stay zero-cost wrappers");

/// An unperturbed, privacy-sensitive value (e.g. the pre-noise
/// RankCounting estimate).  No implicit conversions in or out: every read
/// is a visible `.get()`, which the `no-raw-to-sink` lint rule tracks
/// through assignments into telemetry / ledger / serialization sinks.
template <class T>
class Raw {
 public:
  constexpr Raw() noexcept = default;
  constexpr explicit Raw(T value) noexcept(
      std::is_nothrow_move_constructible_v<T>)
      : value_(static_cast<T&&>(value)) {}

  /// The only way out.  Callers take responsibility for where it flows.
  constexpr const T& get() const noexcept { return value_; }

 private:
  T value_{};
};

/// A value that has passed through a differentially private mechanism.
/// Freely readable (implicit conversion to T), but constructible from a
/// value only by the DP mechanisms below — the single Raw -> Released
/// boundary the type system enforces.  tests/compile_fail/ guards the
/// boundary itself: widening this friend list (or making the constructor
/// public) flips a compile-fail case to compiling and fails the harness.
template <class T>
class Released {
 public:
  /// A default Released carries the zero value; aggregates holding one
  /// (PrivateAnswer, WorkloadAnswer) stay default-constructible.
  constexpr Released() noexcept = default;

  constexpr const T& value() const noexcept { return value_; }
  constexpr operator T() const noexcept { return value_; }

 private:
  constexpr explicit Released(T value) noexcept(
      std::is_nothrow_move_constructible_v<T>)
      : value_(static_cast<T&&>(value)) {}

  friend class ::prc::dp::LaplaceMechanism;
  friend class ::prc::dp::PrivateRangeCounter;
  friend class ::prc::dp::WorkloadAnswerer;
  friend class ::prc::dp::HierarchicalMechanism;

  T value_{};
};

}  // namespace prc::units

namespace prc {
using units::Alpha;
using units::Delta;
using units::EffectiveEpsilon;
using units::Epsilon;
using units::Probability;
using units::Raw;
using units::Released;
}  // namespace prc
