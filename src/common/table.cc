#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace prc {

TextTable::TextTable(std::vector<std::string> header, int precision)
    : header_(std::move(header)), precision_(precision) {
  if (header_.empty()) throw std::invalid_argument("table needs >= 1 column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_numeric_row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(format(v));
  add_row(std::move(formatted));
}

std::string TextTable::format(double value) const {
  std::ostringstream out;
  out << std::setprecision(precision_) << std::fixed << value;
  return out.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << '\n';
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c ? 2 : 0);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  const auto emit_cell = [&](const std::string& cell) {
    // Contract labels like "(alpha=0.05, delta=0.9)" contain commas; quote
    // any cell that would break the CSV structure.
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      out << cell;
      return;
    }
    out << '"';
    for (char ch : cell) {
      if (ch == '"') out << '"';
      out << ch;
    }
    out << '"';
  };
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      emit_cell(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

}  // namespace prc
