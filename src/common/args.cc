#include "common/args.h"

#include <iostream>
#include <sstream>
#include <stdexcept>

namespace prc {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::option(const std::string& key, const std::string& help) {
  specs_.emplace_back(key, Spec{help, false});
  return *this;
}

ArgParser& ArgParser::flag(const std::string& key, const std::string& help) {
  specs_.emplace_back(key, Spec{help, true});
  return *this;
}

bool ArgParser::parse(int argc, char** argv) {
  const auto find_spec = [this](const std::string& key) -> const Spec* {
    for (const auto& [name, spec] : specs_) {
      if (name == key) return &spec;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --option, got '" + arg + "'");
    }
    const std::string key = arg.substr(2);
    const Spec* spec = find_spec(key);
    if (spec == nullptr) {
      throw std::invalid_argument("unknown option --" + key);
    }
    if (spec->is_flag) {
      values_[key] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      throw std::invalid_argument("missing value for --" + key);
    }
    values_[key] = argv[++i];
  }
  return true;
}

bool ArgParser::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> ArgParser::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_or(const std::string& key,
                              const std::string& fallback) const {
  const auto value = get(key);
  return value ? *value : fallback;
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects a number, got '" +
                                *value + "'");
  }
}

std::uint64_t ArgParser::get_uint(const std::string& key,
                                  std::uint64_t fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const auto parsed = std::stoull(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key +
                                " expects a non-negative integer, got '" +
                                *value + "'");
  }
}

std::string ArgParser::help() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    out << "  --" << name << (spec.is_flag ? "" : " <value>") << "\n      "
        << spec.help << "\n";
  }
  return out.str();
}

}  // namespace prc
