// Prometheus text exposition (format 0.0.4) for the telemetry registry —
// the export plane a stock Prometheus scrapes via metrics_http.h and the
// on-disk `.prom` artifacts benches and prc_query write next to their JSON
// snapshots.
//
// Rendering rules:
//  - dotted registry names are sanitized to the Prometheus charset and
//    prefixed "prc_": "iot.round_duration_us" -> "prc_iot_round_duration_us";
//  - counters get the conventional "_total" suffix (unless already present);
//  - histograms emit CUMULATIVE `le` buckets (the registry stores per-bucket
//    counts) ending in le="+Inf", plus `_sum` and `_count` series;
//  - every family carries `# HELP` and `# TYPE` lines sourced from the
//    metadata registry (src/common/metrics_metadata.inc); a metric without
//    metadata still renders (with a placeholder HELP) so the exposition is
//    never silently partial — the CI schema gate is what fails the build.
//
// parse_exposition() is a promtool-style validating parser used by the
// endpoint smoke tests and scripts; it rejects the mistakes this layer
// could plausibly make (missing HELP/TYPE, bad names, non-cumulative or
// unsorted buckets, `+Inf` != `_count`).
//
// Exposition output obeys the telemetry.h privacy-safety rule by
// construction: it renders only what the registry already holds.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/telemetry.h"

namespace prc::telemetry::prometheus {

/// Content-Type for exposition responses and files.
inline const char* content_type() {
  return "text/plain; version=0.0.4; charset=utf-8";
}

/// Maps a dotted registry name into the Prometheus charset: every character
/// outside [a-zA-Z0-9_:] becomes '_', and the result is prefixed "prc_".
std::string sanitize_metric_name(const std::string& name);

/// Renders the snapshot in exposition format 0.0.4.  Deterministic: families
/// appear in snapshot order (counters, then gauges, then histograms, each
/// sorted by name), so output is golden-testable.
std::string render(const TelemetrySnapshot& snapshot);

/// One sample line, labels in appearance order.
struct ParsedSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;

  /// Value of label `key`, or "" when absent.
  std::string label(const std::string& key) const;
};

/// One metric family: a TYPE declaration plus its samples.
struct ParsedFamily {
  std::string name;
  std::string help;
  std::string type;  ///< "counter", "gauge", "histogram", ...
  std::vector<ParsedSample> samples;
};

struct ParsedExposition {
  std::vector<ParsedFamily> families;

  const ParsedFamily* find(const std::string& name) const;
};

/// Validating parser for the exposition format (promtool-style strictness).
/// Throws std::invalid_argument, citing the offending line, when:
///  - a sample has no preceding `# TYPE` family or an invalid name/value;
///  - a family lacks a `# HELP` line or is declared twice;
///  - a histogram's `le` buckets are unsorted or non-cumulative, the
///    `+Inf` bucket is missing or disagrees with `_count`, or `_sum` /
///    `_count` are absent.
ParsedExposition parse_exposition(const std::string& text);

}  // namespace prc::telemetry::prometheus
