#include "common/rng.h"

namespace prc {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro256++ requires a nonzero state; splitmix64 output is zero for at
  // most one of the four words, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ull;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() noexcept {
  // Derive the child seed from fresh output so parent and child streams
  // decorrelate; mixing through splitmix64 breaks the linear structure.
  std::uint64_t s = (*this)();
  return Rng(splitmix64(s));
}

}  // namespace prc
