#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace prc::contracts {
namespace {

constexpr FailureMode default_mode() noexcept {
#ifdef PRC_CONTRACT_ABORT
  return FailureMode::kAbort;
#else
  return FailureMode::kThrow;
#endif
}

std::atomic<FailureMode>& mode_storage() noexcept {
  static std::atomic<FailureMode> mode{default_mode()};
  return mode;
}

}  // namespace

FailureMode failure_mode() noexcept {
  return mode_storage().load(std::memory_order_relaxed);
}

void set_failure_mode(FailureMode mode) noexcept {
  mode_storage().store(mode, std::memory_order_relaxed);
}

void raise_violation(const char* file, int line, const char* expression,
                     const std::string& detail) {
  std::string message = std::string("contract violated at ") + file + ':' +
                        std::to_string(line) + ": " + expression;
  if (!detail.empty()) {
    message += " — ";
    message += detail;
  }
  if (failure_mode() == FailureMode::kAbort) {
    std::fputs(message.c_str(), stderr);
    std::fputc('\n', stderr);
    std::fflush(stderr);
    std::abort();
  }
  throw ContractViolation(message);
}

}  // namespace prc::contracts
