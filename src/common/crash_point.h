// Named crash-point injection for durability testing.
//
// A crash point marks a place where the process could die with state half
// persisted (mirroring src/iot/faults.h, which does the same for lossy
// collection).  Sprinkle PRC_CRASH_POINT("layer.moment") along a persistence
// path; a disarmed point costs one relaxed atomic load, an armed one fires a
// deterministic simulated crash the first time it is reached:
//
//   - kThrow: throws SimulatedCrash, unwinding the stack like a fatal signal
//     would abandon it (for in-process chaos tests that then run recovery);
//   - kExit: std::_Exit(kExitStatus) — no destructors, no stream flushes —
//     for process-level tests that re-launch and recover (scripts/chaos_sweep.sh).
//
// Points self-register on first reach, so a chaos harness can enumerate
// every point the code under test actually passed and sweep them all.
// Arming is programmatic (Registry::arm) or via the environment:
//
//   PRC_CRASH_POINT="wal.post_intent"        # throw mode
//   PRC_CRASH_POINT="wal.post_intent:exit"   # exit mode
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"

namespace prc::crashpoints {

/// The deterministic simulated crash thrown by an armed point in kThrow
/// mode.  Deliberately NOT derived from any domain error (CoverageError,
/// ContractViolation, ...) so no recovery-unaware catch block can swallow
/// it by accident.
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(const std::string& point)
      : std::runtime_error("simulated crash at '" + point + "'"),
        point_(point) {}

  const std::string& point() const noexcept { return point_; }

 private:
  std::string point_;
};

enum class CrashMode : int {
  kDisarmed = 0,
  kThrow = 1,
  kExit = 2,
};

/// One named point.  References handed out by the registry stay valid for
/// the process lifetime (same stability contract as telemetry metrics).
class Point {
 public:
  explicit Point(std::string name) : name_(std::move(name)) {}

  /// Counts the reach and fires when armed.  An armed point disarms itself
  /// as it fires so recovery code re-entering the same path (e.g. a WAL
  /// append during replay) does not crash a second time.
  void hit() {
    hits_.fetch_add(1, std::memory_order_relaxed);
    const int mode = mode_.load(std::memory_order_relaxed);
    if (mode != static_cast<int>(CrashMode::kDisarmed)) fire(mode);
  }

  const std::string& name() const noexcept { return name_; }
  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  [[noreturn]] void fire(int mode);

  std::string name_;
  // Monitoring counter plus an arm/disarm latch: independent seq_cst
  // cells, no ordering between them is relied on (a hit that races a
  // disarm may fire or not — both are legal sweep outcomes).
  std::atomic<std::uint64_t> hits_{0};  // lint:allow atomic
  std::atomic<int> mode_{              // lint:allow atomic
      static_cast<int>(CrashMode::kDisarmed)};
};

class Registry {
 public:
  /// Exit status kExit crashes die with, distinguishable from any normal
  /// failure path (PRC_CHECK aborts, uncaught exceptions) in sweep scripts.
  static constexpr int kExitStatus = 42;

  static Registry& instance();

  /// Finds or creates `name`; the returned reference is process-stable.
  Point& require(const std::string& name);

  /// Arms `name` (registering it when unseen — env arming runs before any
  /// code reaches the point).
  void arm(const std::string& name, CrashMode mode = CrashMode::kThrow);
  void disarm(const std::string& name);
  void disarm_all();

  /// Every point registered so far, sorted (the chaos sweep's work list).
  std::vector<std::string> names() const;
  std::uint64_t hits(const std::string& name) const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry();  // arms from the PRC_CRASH_POINT environment variable

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Point>> points_
      PRC_GUARDED_BY(mutex_);
};

}  // namespace prc::crashpoints

/// Marks a named crash point.  The static-local lookup makes the disarmed
/// cost one atomic increment + one atomic load after the first pass.
#define PRC_CRASH_POINT(name_literal)                                     \
  do {                                                                    \
    static ::prc::crashpoints::Point& prc_crash_point_ =                  \
        ::prc::crashpoints::Registry::instance().require(name_literal);   \
    prc_crash_point_.hit();                                               \
  } while (0)
