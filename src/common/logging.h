// Tiny leveled logger.
//
// The simulator and market components emit occasional diagnostics; keeping a
// single sink with a level switch lets tests silence them and examples show
// them, with no dependency on an external logging library.
#pragma once

#include <sstream>
#include <string>

namespace prc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.  Defaults to kWarn
/// so library users aren't spammed; examples raise it to kInfo explicitly.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr as "[LEVEL] message" when `level` passes the
/// global filter.
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Stream-style one-shot builder: LogLine(kInfo) << "x=" << x; logs at
/// destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

#define PRC_LOG_DEBUG ::prc::detail::LogLine(::prc::LogLevel::kDebug)
#define PRC_LOG_INFO ::prc::detail::LogLine(::prc::LogLevel::kInfo)
#define PRC_LOG_WARN ::prc::detail::LogLine(::prc::LogLevel::kWarn)
#define PRC_LOG_ERROR ::prc::detail::LogLine(::prc::LogLevel::kError)

}  // namespace prc
