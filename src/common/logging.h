// Tiny leveled logger.
//
// The simulator and market components emit occasional diagnostics; keeping a
// single sink with a level switch lets tests silence them and examples show
// them, with no dependency on an external logging library.
#pragma once

#include <sstream>
#include <string>

namespace prc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.  Defaults to kWarn
/// so library users aren't spammed; examples raise it to kInfo explicitly.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr as "[LEVEL] message" when `level` passes the
/// global filter.
void log_message(LogLevel level, const std::string& message);

/// True when a message at `level` would pass the global filter.  The
/// PRC_LOG_* macros consult this BEFORE constructing the LogLine, so
/// streamed operands are never formatted (or even evaluated) for a level
/// that is filtered out — logging below the threshold costs one atomic
/// load, nothing else.
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

namespace detail {

/// Stream-style one-shot builder: LogLine(kInfo) << "x=" << x; logs at
/// destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Lower-precedence-than-<< sink giving the short-circuit macros void type.
struct LogVoidify {
  void operator&(const LogLine&) const noexcept {}
};

}  // namespace detail

/// Short-circuiting leveled log statement: the whole `<<` chain is skipped
/// (operands unevaluated) when `level` is below the global threshold.
#define PRC_LOG_AT(level)                      \
  !::prc::log_enabled(level)                   \
      ? (void)0                                \
      : ::prc::detail::LogVoidify() &          \
            ::prc::detail::LogLine(level)

#define PRC_LOG_DEBUG PRC_LOG_AT(::prc::LogLevel::kDebug)
#define PRC_LOG_INFO PRC_LOG_AT(::prc::LogLevel::kInfo)
#define PRC_LOG_WARN PRC_LOG_AT(::prc::LogLevel::kWarn)
#define PRC_LOG_ERROR PRC_LOG_AT(::prc::LogLevel::kError)

}  // namespace prc
