// Fixed-width histogram over a closed interval.
//
// Used by tests (empirical-distribution checks on the Laplace mechanism and
// the samplers) and by the dataset generator's self-diagnostics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace prc {

class Histogram {
 public:
  /// Buckets the interval [lo, hi] into `bins` equal-width bins.
  /// Requires bins >= 1 and lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds an observation; values outside [lo, hi] land in saturating edge
  /// bins and are also tallied in underflow()/overflow().
  void add(double x) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }

  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;
  double bin_center(std::size_t bin) const;

  /// Empirical probability mass of a bin.
  double density(std::size_t bin) const;

  /// Total-variation distance to another histogram with identical binning.
  /// Requires matching lo/hi/bins.
  double total_variation_distance(const Histogram& other) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace prc
