// Streaming and batch summary statistics.
//
// Experiments in this library repeat randomized trials and report means,
// variances, maxima and quantiles; RunningStats (Welford) keeps those
// numerically stable without storing every observation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace prc {

/// Numerically stable streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel-friendly Chan et al. update).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance (divides by n).  0 when count() < 1.
  double variance() const noexcept;
  /// Sample variance (divides by n-1).  0 when count() < 2.
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a copied-and-sorted sample using linear interpolation
/// (the "R-7" rule).  Requires non-empty input and q in [0, 1].
double quantile(std::span<const double> values, double q);

/// Mean of a batch.  Requires non-empty input.
double mean(std::span<const double> values);

/// Population variance of a batch.  Requires non-empty input.
double variance(std::span<const double> values);

/// Maximum absolute value in a batch.  Requires non-empty input.
double max_abs(std::span<const double> values);

/// Chebyshev bound: for any random variable X with variance v,
/// Pr[|X - E[X]| > t] <= v / t^2.  Returns the *lower* bound this gives on
/// Pr[|X - E[X]| <= t], clamped to [0, 1].
double chebyshev_confidence(double variance, double t);

/// Inverse use of Chebyshev: the deviation t such that
/// Pr[|X - E[X]| <= t] >= confidence, i.e. t = sqrt(v / (1 - confidence)).
/// Requires confidence in [0, 1).
double chebyshev_deviation(double variance, double confidence);

}  // namespace prc
