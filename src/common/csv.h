// Minimal dependency-free CSV reader/writer.
//
// Handles the subset of RFC 4180 that real sensor exports (CityPulse
// included) use: a header row, comma separation, optional double-quote
// quoting with "" escapes, and CRLF or LF line endings.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace prc {

/// A parsed CSV document: one header row plus zero or more data rows, all
/// fields kept as strings.  Typed access goes through column() / field_as.
class CsvTable {
 public:
  CsvTable() = default;

  /// Creates a table with the given header; rows are appended afterwards.
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const noexcept { return header_; }
  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t column_count() const noexcept { return header_.size(); }

  /// Index of a named column, if present.
  std::optional<std::size_t> column_index(std::string_view name) const;

  const std::vector<std::string>& row(std::size_t r) const {
    return rows_.at(r);
  }

  const std::string& field(std::size_t r, std::size_t c) const {
    return rows_.at(r).at(c);
  }

  /// Parses field (r, c) as double.  Throws std::invalid_argument with the
  /// row/column context on malformed input.
  double field_as_double(std::size_t r, std::size_t c) const;

  /// Appends a row.  Throws if the width differs from the header.
  void add_row(std::vector<std::string> row);

  /// Extracts a whole column parsed as double.
  std::vector<double> column_as_doubles(std::string_view name) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses a CSV document from text.  The first record is the header.
/// Throws std::invalid_argument on structural errors (ragged rows,
/// unterminated quotes).
CsvTable parse_csv(std::string_view text);

/// Reads and parses a CSV file.  Throws std::runtime_error if the file can't
/// be opened.
CsvTable read_csv_file(const std::string& path);

/// Serializes with minimal quoting (only fields containing , " or newline are
/// quoted).
std::string to_csv(const CsvTable& table);

/// Writes a CSV file; throws std::runtime_error on I/O failure.
void write_csv_file(const CsvTable& table, const std::string& path);

}  // namespace prc
