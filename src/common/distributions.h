// Analytic distributions used across the library.
//
// The Laplace distribution gets a full treatment (sampling, pdf/cdf, tail
// quantiles) because the DP optimizer needs its closed-form tail probability
// Pr[|Lap(b)| <= t] = 1 - exp(-t/b), not just noise draws.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace prc {

/// Laplace(location = 0, scale = b) distribution.
///
/// In the paper's shorthand Lap(epsilon) denotes Laplace noise with scale
/// sensitivity/epsilon; here the scale is always explicit to avoid that
/// ambiguity.
class Laplace {
 public:
  /// Requires scale > 0.
  explicit Laplace(double scale);

  double scale() const noexcept { return scale_; }

  /// One noise draw via inverse-CDF sampling.
  double sample(Rng& rng) const noexcept;

  /// Density at x.
  double pdf(double x) const noexcept;

  /// Pr[X <= x].
  double cdf(double x) const noexcept;

  /// Pr[|X| <= t] = 1 - exp(-t/b) for t >= 0 (0 for t < 0).
  double central_probability(double t) const noexcept;

  /// Smallest t with Pr[|X| <= t] >= q, for q in [0, 1).
  double central_quantile(double q) const;

 private:
  double scale_;
};

/// Geometric distribution on {1, 2, ...} with success probability p:
/// Pr[X = j] = p (1-p)^{j-1}.  This is the law of the gap between a range
/// endpoint and its sampled predecessor/successor in the RankCounting
/// analysis (paper Thm 3.1).
class Geometric {
 public:
  /// Requires p in (0, 1].
  explicit Geometric(double p);

  double success_probability() const noexcept { return p_; }

  /// One draw (>= 1) via inversion.
  std::int64_t sample(Rng& rng) const noexcept;

  /// Pr[X = j] for j >= 1.
  double pmf(std::int64_t j) const noexcept;

  /// E[X] = 1/p.
  double mean() const noexcept { return 1.0 / p_; }

  /// Var[X] = (1-p)/p^2.
  double variance() const noexcept { return (1.0 - p_) / (p_ * p_); }

 private:
  double p_;
};

/// Draws from Exponential(rate) — used by the synthetic workload generators.
double sample_exponential(Rng& rng, double rate);

/// Draws a standard normal via Box-Muller — used by the dataset generator.
double sample_normal(Rng& rng, double mean = 0.0, double stddev = 1.0);

/// Draws from a (bounded) Zipf distribution over {0, ..., n-1} with exponent
/// `s`; used to create skewed data-to-node assignments.
std::int64_t sample_zipf(Rng& rng, std::int64_t n, double s);

}  // namespace prc
