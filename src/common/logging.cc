#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace prc {
namespace {

// Level is an independent latch (a racing set_log_level may drop or admit
// one in-flight message, both fine); the mutex guards no data — it only
// serializes whole lines into the shared stderr sink.
std::atomic<LogLevel> g_level{LogLevel::kWarn};  // lint:allow atomic
std::mutex g_sink_mutex;                         // lint:allow atomic

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace prc
