// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms, exportable as a structured TelemetrySnapshot (JSON + CSV).
//
// Every layer of the pipeline (collection -> DP -> pricing -> market)
// records what it DOES — rounds run, frames dropped, optimizer grid points
// evaluated, menus validated, sales refused — so a production operator can
// account per-query budget spend and revenue without ad-hoc prints.
//
// PRIVACY SAFETY RULE (lint-enforced: no-raw-samples-in-telemetry): metric
// samples may only be counts of events, sizes, durations, prices, and
// already-released (perturbed or amplified) quantities.  Raw sensor values
// (`Record::value`), cached sample contents, and unperturbed estimates
// (`sampled_estimate`, `*_estimate(...)` results) must NEVER be passed to
// Counter/Gauge/Histogram record paths: telemetry is exported outside the
// trust boundary and is not covered by the DP budget accounting.
//
// Thread-safety: Counter and Gauge are lock-free atomics; Histogram and the
// registry map are mutex-protected (PRC_GUARDED_BY-annotated).  References
// returned by the registry stay valid for the process lifetime — reset()
// zeroes metrics in place, it never destroys them — so hot paths may cache
// them in function-local statics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace prc::telemetry {

/// Monotonic event counter.
class Counter {
 public:
  void increment(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  // Relaxed monotonic monitoring cell: dashboards tolerate torn-epoch
  // reads; nothing synchronizes on a counter value.
  std::atomic<std::uint64_t> value_{0};  // lint:allow atomic
};

/// Last-value gauge with an additive form for accumulating released doubles
/// (e.g. total epsilon' spent across a session).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  // Relaxed last-value/additive monitoring cell; see Counter::value_.
  std::atomic<double> value_{0.0};  // lint:allow atomic
};

/// Point-in-time view of one histogram, with interpolated quantiles.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Finite upper bounds; bucket_counts has one extra overflow slot.
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;

  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Fixed-bucket latency/size histogram.  Bucket upper bounds are immutable
/// after construction; quantiles are estimated by linear interpolation
/// inside the bucket holding the requested rank (clamped to the exact
/// observed [min, max]).
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty; an implicit
  /// overflow bucket covers (bounds.back(), +inf).
  explicit Histogram(std::vector<double> bounds);

  void record(double value);

  HistogramSnapshot snapshot() const;
  void reset();

 private:
  double quantile_locked(double q) const PRC_REQUIRES(mutex_);

  const std::vector<double> bounds_;  // immutable after construction
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_ PRC_GUARDED_BY(mutex_);
  std::uint64_t count_ PRC_GUARDED_BY(mutex_) = 0;
  double sum_ PRC_GUARDED_BY(mutex_) = 0.0;
  double min_ PRC_GUARDED_BY(mutex_) = 0.0;
  double max_ PRC_GUARDED_BY(mutex_) = 0.0;
};

/// Whole-registry export: every metric by kind, names sorted, diffable by
/// benches and CI.
struct TelemetrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Distinct metric names across all kinds.
  std::size_t metric_count() const noexcept;

  /// True when some metric name starts with `prefix` (layer coverage
  /// checks: "iot.", "dp.", "pricing.", "market.").
  bool has_prefix(const std::string& prefix) const;

  /// Structured JSON: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, p50, p95, p99,
  /// bounds, bucket_counts}}}.  Doubles keep round-trip precision.
  std::string to_json() const;

  /// Flat CSV: kind,name,field,value — one row per scalar.
  std::string to_csv() const;

  /// Parses the exact dialect to_json() emits (snapshot round-trips are a
  /// tested invariant; this is not a general JSON parser).  Throws
  /// std::invalid_argument on malformed input.
  static TelemetrySnapshot from_json(const std::string& json);
};

/// The default 1-2-5 log-spaced bucket bounds (1e-6 .. 1e9), wide enough
/// for microsecond latencies, byte sizes, prices and budgets alike.
const std::vector<double>& default_bounds();

/// Named-metric registry.  The process-wide instance is
/// Telemetry::registry(); lookups are by full metric name
/// ("layer.subject[_unit]", e.g. "iot.round_duration_us").
class Telemetry {
 public:
  /// The process-wide registry.
  static Telemetry& registry();

  /// Finds or creates; the returned reference lives as long as the process.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is consulted only on first creation (empty = default_bounds).
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  TelemetrySnapshot snapshot() const;

  /// Zeroes every registered metric IN PLACE (references stay valid).
  void reset();

  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

 private:
  mutable std::mutex mutex_;
  // Values live behind unique_ptr so the references handed out stay stable
  // across rehashes.
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_
      PRC_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_
      PRC_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_
      PRC_GUARDED_BY(mutex_);
};

/// Convenience accessors against the process-wide registry.
inline Counter& counter(const std::string& name) {
  return Telemetry::registry().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return Telemetry::registry().gauge(name);
}
inline Histogram& histogram(const std::string& name) {
  return Telemetry::registry().histogram(name);
}

/// RAII wall-clock timer recording elapsed microseconds into a histogram at
/// scope exit (steady clock).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

 private:
  Histogram& sink_;
  std::int64_t start_ns_;
};

}  // namespace prc::telemetry
