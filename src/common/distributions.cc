#include "common/distributions.h"

#include <cmath>
#include <stdexcept>

namespace prc {

Laplace::Laplace(double scale) : scale_(scale) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument("Laplace scale must be positive");
  }
}

double Laplace::sample(Rng& rng) const noexcept {
  // Inverse CDF: u ~ U(-1/2, 1/2), x = -b * sgn(u) * ln(1 - 2|u|).
  const double u = rng.uniform() - 0.5;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale_ * sign * std::log(1.0 - 2.0 * std::abs(u));
}

double Laplace::pdf(double x) const noexcept {
  return std::exp(-std::abs(x) / scale_) / (2.0 * scale_);
}

double Laplace::cdf(double x) const noexcept {
  if (x < 0.0) return 0.5 * std::exp(x / scale_);
  return 1.0 - 0.5 * std::exp(-x / scale_);
}

double Laplace::central_probability(double t) const noexcept {
  if (t <= 0.0) return 0.0;
  return 1.0 - std::exp(-t / scale_);
}

double Laplace::central_quantile(double q) const {
  if (q < 0.0 || q >= 1.0) {
    throw std::invalid_argument("central_quantile requires q in [0, 1)");
  }
  return -scale_ * std::log(1.0 - q);
}

Geometric::Geometric(double p) : p_(p) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("Geometric p must be in (0, 1]");
  }
}

std::int64_t Geometric::sample(Rng& rng) const noexcept {
  if (p_ >= 1.0) return 1;
  // Inversion: ceil(ln(1-u) / ln(1-p)).
  const double u = rng.uniform();
  const double draw = std::ceil(std::log1p(-u) / std::log1p(-p_));
  return draw < 1.0 ? 1 : static_cast<std::int64_t>(draw);
}

double Geometric::pmf(std::int64_t j) const noexcept {
  if (j < 1) return 0.0;
  return p_ * std::pow(1.0 - p_, static_cast<double>(j - 1));
}

double sample_exponential(Rng& rng, double rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("exponential rate must be positive");
  }
  return -std::log1p(-rng.uniform()) / rate;
}

double sample_normal(Rng& rng, double mean, double stddev) {
  // Box-Muller; one of the pair is discarded for simplicity (the generators
  // here are nowhere near the hot path).
  double u1 = rng.uniform();
  while (u1 <= 0.0) u1 = rng.uniform();
  const double u2 = rng.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

std::int64_t sample_zipf(Rng& rng, std::int64_t n, double s) {
  if (n <= 0) throw std::invalid_argument("zipf support size must be positive");
  // Direct inversion over the (small) support; n here is a node count, not a
  // data count, so O(n) per draw is fine.
  double norm = 0.0;
  for (std::int64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(i, s);
  double u = rng.uniform() * norm;
  for (std::int64_t i = 1; i <= n; ++i) {
    u -= 1.0 / std::pow(i, s);
    if (u <= 0.0) return i - 1;
  }
  return n - 1;
}

}  // namespace prc
