#include "common/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "common/metrics_metadata.h"

namespace prc::telemetry::prometheus {

namespace {

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

void append_double(std::ostringstream& out, double value) {
  if (std::isnan(value)) {
    out << "NaN";
    return;
  }
  if (std::isinf(value)) {
    out << (value > 0 ? "+Inf" : "-Inf");
    return;
  }
  // max_digits10 keeps render -> scrape -> float lossless, matching the
  // JSON snapshot precision.
  const auto previous = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  out.precision(previous);
}

std::string format_double(double value) {
  std::ostringstream out;
  append_double(out, value);
  return out.str();
}

// HELP text escaping per exposition format 0.0.4: backslash and newline.
std::string escape_help(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Emits the # HELP / # TYPE preamble for one family.  `dotted` is the
// registry name (metadata key), `family` the sanitized exposition name,
// `kind` the TYPE token derived from the snapshot section — the registry is
// the source of truth for the kind; the metadata gate in CI flags any
// disagreement with the .inc table.
void emit_family_header(std::ostringstream& out, const std::string& dotted,
                        const std::string& family, const char* kind) {
  const MetricMetadata* meta = find_metric_metadata(dotted);
  std::string help;
  if (meta != nullptr) {
    help = meta->help;
  } else {
    help = "(no registered metadata for " + dotted +
           "; add it to src/common/metrics_metadata.inc)";
  }
  out << "# HELP " << family << " " << escape_help(help) << "\n";
  out << "# TYPE " << family << " " << kind << "\n";
  if (meta != nullptr && meta->unit[0] != '\0') {
    // Plain comment (ignored by 0.0.4 parsers, OpenMetrics-shaped) so the
    // unit survives into scraped artifacts without a name change.
    out << "# UNIT " << family << " " << meta->unit << "\n";
  }
}

bool is_valid_name_char(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

bool is_valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (!is_valid_name_char(name[i], i == 0)) return false;
  }
  return true;
}

[[noreturn]] void fail(std::size_t lineno, const std::string& message) {
  throw std::invalid_argument("prometheus exposition line " +
                              std::to_string(lineno) + ": " + message);
}

double parse_value(const std::string& token, std::size_t lineno) {
  if (token == "+Inf" || token == "Inf") {
    return std::numeric_limits<double>::infinity();
  }
  if (token == "-Inf") return -std::numeric_limits<double>::infinity();
  if (token == "NaN") return std::numeric_limits<double>::quiet_NaN();
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size()) {
    fail(lineno, "unparseable sample value `" + token + "`");
  }
  return value;
}

std::string strip(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  std::size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

// Parses `name{key="value",...} value [timestamp]`.
ParsedSample parse_sample_line(const std::string& line, std::size_t lineno) {
  ParsedSample sample;
  std::size_t pos = 0;
  while (pos < line.size() && is_valid_name_char(line[pos], pos == 0)) {
    ++pos;
  }
  sample.name = line.substr(0, pos);
  if (!is_valid_metric_name(sample.name)) {
    fail(lineno, "invalid metric name in sample line `" + line + "`");
  }
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      std::size_t key_begin = pos;
      while (pos < line.size() && line[pos] != '=') ++pos;
      if (pos >= line.size()) fail(lineno, "unterminated label block");
      std::string key = strip(line.substr(key_begin, pos - key_begin));
      if (!is_valid_metric_name(key) || key.find(':') != std::string::npos) {
        fail(lineno, "invalid label name `" + key + "`");
      }
      ++pos;  // '='
      if (pos >= line.size() || line[pos] != '"') {
        fail(lineno, "label value must be double-quoted");
      }
      ++pos;
      std::string value;
      while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\' && pos + 1 < line.size()) {
          ++pos;
          if (line[pos] == 'n') {
            value += '\n';
          } else {
            value += line[pos];
          }
        } else {
          value += line[pos];
        }
        ++pos;
      }
      if (pos >= line.size()) fail(lineno, "unterminated label value");
      ++pos;  // closing '"'
      sample.labels.emplace_back(std::move(key), std::move(value));
      if (pos < line.size() && line[pos] == ',') ++pos;
      while (pos < line.size() && line[pos] == ' ') ++pos;
    }
    if (pos >= line.size()) fail(lineno, "unterminated label block");
    ++pos;  // '}'
  }
  std::istringstream rest(line.substr(pos));
  std::string value_token;
  if (!(rest >> value_token)) {
    fail(lineno, "sample line has no value: `" + line + "`");
  }
  sample.value = parse_value(value_token, lineno);
  std::string timestamp_token;
  if (rest >> timestamp_token) {
    char* end = nullptr;
    std::strtoll(timestamp_token.c_str(), &end, 10);
    if (end != timestamp_token.c_str() + timestamp_token.size()) {
      fail(lineno, "trailing garbage after sample value: `" +
                       timestamp_token + "`");
    }
    std::string extra;
    if (rest >> extra) fail(lineno, "trailing garbage after timestamp");
  }
  return sample;
}

bool sample_belongs_to(const ParsedFamily& family,
                       const std::string& sample_name) {
  if (sample_name == family.name) return true;
  if (family.type == "histogram" || family.type == "summary") {
    if (sample_name == family.name + "_sum") return true;
    if (sample_name == family.name + "_count") return true;
  }
  if (family.type == "histogram") {
    if (sample_name == family.name + "_bucket") return true;
  }
  return false;
}

void validate_histogram(const ParsedFamily& family) {
  double previous_le = -std::numeric_limits<double>::infinity();
  double previous_cumulative = -1.0;
  bool saw_inf = false;
  bool saw_sum = false;
  bool saw_count = false;
  double inf_bucket = 0.0;
  double count_value = 0.0;
  for (const auto& sample : family.samples) {
    if (sample.name == family.name + "_sum") {
      saw_sum = true;
      continue;
    }
    if (sample.name == family.name + "_count") {
      saw_count = true;
      count_value = sample.value;
      continue;
    }
    const std::string le = sample.label("le");
    if (le.empty()) {
      throw std::invalid_argument("histogram " + family.name +
                                  ": bucket sample without an le label");
    }
    const double le_value = parse_value(le, 0);
    if (!(le_value > previous_le)) {
      throw std::invalid_argument("histogram " + family.name +
                                  ": le buckets are not sorted ascending");
    }
    if (sample.value < previous_cumulative) {
      throw std::invalid_argument(
          "histogram " + family.name +
          ": bucket counts are not cumulative (le=\"" + le + "\" has " +
          format_double(sample.value) + " < previous bucket)");
    }
    previous_le = le_value;
    previous_cumulative = sample.value;
    if (std::isinf(le_value) && le_value > 0) {
      saw_inf = true;
      inf_bucket = sample.value;
    }
  }
  if (!saw_inf) {
    throw std::invalid_argument("histogram " + family.name +
                                ": missing le=\"+Inf\" bucket");
  }
  if (!saw_sum || !saw_count) {
    throw std::invalid_argument("histogram " + family.name +
                                ": missing _sum or _count series");
  }
  if (std::abs(inf_bucket - count_value) > 0.0) {
    throw std::invalid_argument(
        "histogram " + family.name + ": le=\"+Inf\" bucket (" +
        format_double(inf_bucket) + ") disagrees with _count (" +
        format_double(count_value) + ")");
  }
}

}  // namespace

std::string ParsedSample::label(const std::string& key) const {
  for (const auto& [name, value] : labels) {
    if (name == key) return value;
  }
  return "";
}

const ParsedFamily* ParsedExposition::find(const std::string& name) const {
  for (const auto& family : families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out = "prc_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == ':') {
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

std::string render(const TelemetrySnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [dotted, value] : snapshot.counters) {
    std::string family = sanitize_metric_name(dotted);
    if (!ends_with(family, "_total")) family += "_total";
    emit_family_header(out, dotted, family, "counter");
    out << family << " " << value << "\n";
  }
  for (const auto& [dotted, value] : snapshot.gauges) {
    const std::string family = sanitize_metric_name(dotted);
    emit_family_header(out, dotted, family, "gauge");
    out << family << " " << format_double(value) << "\n";
  }
  for (const auto& histogram : snapshot.histograms) {
    const std::string family = sanitize_metric_name(histogram.name);
    emit_family_header(out, histogram.name, family, "histogram");
    std::uint64_t cumulative = 0;
    const std::size_t finite_buckets =
        histogram.bounds.size() < histogram.bucket_counts.size()
            ? histogram.bounds.size()
            : histogram.bucket_counts.size();
    for (std::size_t i = 0; i < finite_buckets; ++i) {
      cumulative += histogram.bucket_counts[i];
      out << family << "_bucket{le=\"" << format_double(histogram.bounds[i])
          << "\"} " << cumulative << "\n";
    }
    // The registry's overflow slot closes the gap to the total count.
    out << family << "_bucket{le=\"+Inf\"} " << histogram.count << "\n";
    out << family << "_sum " << format_double(histogram.sum) << "\n";
    out << family << "_count " << histogram.count << "\n";
  }
  return out.str();
}

ParsedExposition parse_exposition(const std::string& text) {
  ParsedExposition parsed;
  std::unordered_map<std::string, std::string> pending_help;
  std::unordered_map<std::string, std::size_t> family_index;
  ParsedFamily* current = nullptr;
  std::istringstream stream(text);
  std::string raw_line;
  std::size_t lineno = 0;
  while (std::getline(stream, raw_line)) {
    ++lineno;
    const std::string line = strip(raw_line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line.substr(1));
      std::string keyword;
      comment >> keyword;
      if (keyword == "HELP") {
        std::string name;
        if (!(comment >> name) || !is_valid_metric_name(name)) {
          fail(lineno, "malformed HELP line");
        }
        std::string help;
        std::getline(comment, help);
        help = strip(help);
        auto found = family_index.find(name);
        if (found != family_index.end()) {
          parsed.families[found->second].help = help;
        } else {
          pending_help[name] = help;
        }
      } else if (keyword == "TYPE") {
        std::string name;
        std::string type;
        if (!(comment >> name >> type) || !is_valid_metric_name(name)) {
          fail(lineno, "malformed TYPE line");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          fail(lineno, "unknown metric type `" + type + "`");
        }
        if (family_index.count(name) != 0) {
          fail(lineno, "duplicate TYPE declaration for " + name);
        }
        ParsedFamily family;
        family.name = name;
        family.type = type;
        auto pending = pending_help.find(name);
        if (pending != pending_help.end()) {
          family.help = pending->second;
          pending_help.erase(pending);
        }
        family_index[name] = parsed.families.size();
        parsed.families.push_back(std::move(family));
        current = &parsed.families.back();
      }
      // Other comments (e.g. # UNIT) are ignored per the format.
      continue;
    }
    ParsedSample sample = parse_sample_line(line, lineno);
    if (current == nullptr || !sample_belongs_to(*current, sample.name)) {
      fail(lineno, "sample `" + sample.name +
                       "` does not belong to the preceding TYPE family" +
                       (current == nullptr ? " (no TYPE seen yet)"
                                           : " " + current->name));
    }
    current->samples.push_back(std::move(sample));
  }
  for (const auto& family : parsed.families) {
    if (family.help.empty()) {
      throw std::invalid_argument("family " + family.name +
                                  " has no HELP line");
    }
    if (family.samples.empty()) {
      throw std::invalid_argument("family " + family.name +
                                  " declared but has no samples");
    }
    if (family.type == "histogram") validate_histogram(family);
  }
  return parsed;
}

}  // namespace prc::telemetry::prometheus
