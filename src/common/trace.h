// Lightweight span tracer: where does a query's wall-time go?
//
//   PRC_TRACE_SPAN("dp.optimize");
//
// opens an RAII span named after the operation; nested spans (same thread)
// record their parent's id and depth, so a full sale traces as
//   market.sell -> dp.answer -> { iot.round, dp.optimize }.
// Completed spans land in a bounded ring buffer (oldest dropped first);
// Tracer::flame_text() renders the buffer as an indented, flamegraph-style
// text dump and prc_query --trace prints it after a run.
//
// Clocks are std::chrono::steady_clock; span names must be string literals
// (or otherwise outlive the span).  Only operation NAMES and durations are
// recorded — never data values — so traces obey the same privacy-safety
// rule as the metrics registry.
//
// Thread-safety: the ring buffer is mutex-protected; the parent stack is
// thread-local (parent/child links never cross threads); ids come from one
// atomic counter.  TSan-clean by construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace prc::trace {

/// One completed span.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = no parent (root span)
  std::uint32_t depth = 0;      ///< nesting level on its thread (root = 0)
  std::uint32_t tid = 0;        ///< small per-process thread id (1-based)
  std::string name;
  std::int64_t start_ns = 0;  ///< steady-clock offset from the tracer epoch
  std::int64_t duration_ns = 0;
};

class Tracer {
 public:
  /// The process-wide tracer (enabled by default, capacity 4096 spans).
  static Tracer& instance();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Resizes the ring buffer (drops oldest spans if shrinking).
  void set_capacity(std::size_t capacity);

  /// Completed spans in completion order (children before their parents).
  std::vector<SpanRecord> snapshot() const;

  /// Spans evicted from the ring since the last clear().
  std::uint64_t dropped() const;

  /// Flamegraph-style text: one line per span in start order, indented two
  /// spaces per nesting level, with millisecond durations.  When spans were
  /// evicted, the header carries the count and an explicit warning line so
  /// truncated flamegraphs can never pass as complete.
  std::string flame_text() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}) loadable by Perfetto
  /// and chrome://tracing: one "X" (complete) event per span with
  /// microsecond ts/dur, the span's thread id, and id/parent_id/depth in
  /// args, so cross-thread nesting renders exactly as recorded.  Only
  /// operation names and durations are exported — the same privacy-safety
  /// rule as flame_text().
  std::string to_chrome_json() const;

  void clear();

  // Internal API used by ScopedSpan.
  std::uint64_t next_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void record(SpanRecord span);
  std::int64_t now_ns() const;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  // enabled_ is a sampling on/off latch (spans racing a toggle may or
  // may not record — both legal); next_id_ is a relaxed unique-id
  // fountain, uniqueness needs atomicity, not ordering.
  std::atomic<bool> enabled_{true};       // lint:allow atomic
  std::atomic<std::uint64_t> next_id_{0};  // lint:allow atomic
  std::int64_t epoch_ns_ = 0;
  mutable std::mutex mutex_;
  std::size_t capacity_ PRC_GUARDED_BY(mutex_) = 4096;
  std::deque<SpanRecord> ring_ PRC_GUARDED_BY(mutex_);
  std::uint64_t dropped_ PRC_GUARDED_BY(mutex_) = 0;
};

/// RAII span handle; see PRC_TRACE_SPAN.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  std::uint64_t id() const noexcept { return id_; }

 private:
  const char* name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::uint32_t depth_ = 0;
  std::int64_t start_ns_ = 0;
  bool active_ = false;
};

/// Publishes tracer-ring statistics into the metrics registry: sets the
/// `trace.spans_dropped` gauge from Tracer::dropped().  Export paths
/// (prc_query, bench emit, the /metrics endpoint) call this right before
/// snapshotting so silent span eviction is always visible to operators.
/// A gauge (set, not incremented) keeps bench counter baselines untouched.
void publish_telemetry();

}  // namespace prc::trace

#define PRC_TRACE_CONCAT_INNER(a, b) a##b
#define PRC_TRACE_CONCAT(a, b) PRC_TRACE_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define PRC_TRACE_SPAN(name) \
  ::prc::trace::ScopedSpan PRC_TRACE_CONCAT(prc_trace_span_, __LINE__)(name)
