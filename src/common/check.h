// Runtime contract checking for the paper's guarantees.
//
// The privacy, accuracy and pricing theorems this repo reproduces are
// global properties that silent numeric bugs erode without failing a
// single unit test: a Horvitz–Thompson estimate fed a p outside (0, 1],
// a Laplace mechanism with non-positive scale, a ledger that loses track
// of released epsilon', or a pricing menu that drifts out of the
// Theorem 4.2 family.  Every layer therefore guards its invariants with
// the macros below instead of ad-hoc `throw` statements:
//
//   PRC_CHECK(cond) << "detail " << value;   always on
//   PRC_DCHECK(cond) << "detail";            debug / PRC_DCHECK_ALWAYS_ON
//   PRC_CHECK_PROB(p);                       p finite and in (0, 1]
//   PRC_CHECK_FINITE(x);                     x finite (no NaN/inf)
//
// On violation the default behaviour is to throw prc::ContractViolation.
// It derives from std::invalid_argument (hence std::logic_error), so
// callers and tests written against the standard hierarchy keep working.
// Fuzzers and sanitizer builds prefer a hard abort — the sanitizer then
// prints the stack at the exact violation instead of an unwound catch
// site — which is selectable at runtime (set_failure_mode) or at build
// time (-DPRC_CONTRACT_ABORT, wired to the CMake option of the same
// name).
//
// Notes:
//  - The value macros (PRC_CHECK_PROB / PRC_CHECK_FINITE) may evaluate
//    their argument twice; pass idempotent expressions.
//  - A PRC_CHECK that fires while another exception is unwinding
//    terminates, like any throwing cleanup; do not place checks in
//    destructors of stack objects that outlive a throw.
#pragma once

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

namespace prc {

/// Thrown (in the default failure mode) when a PRC_CHECK fails.  Derives
/// from std::invalid_argument so pre-contract call sites that threw the
/// standard exception remain drop-in compatible.
class ContractViolation : public std::invalid_argument {
 public:
  explicit ContractViolation(const std::string& what)
      : std::invalid_argument(what) {}
};

namespace contracts {

/// What a failed check does.
enum class FailureMode {
  kThrow,  ///< throw prc::ContractViolation (default)
  kAbort,  ///< write the message to stderr and std::abort()
};

/// Current process-wide failure mode.  Defaults to kAbort when the build
/// defines PRC_CONTRACT_ABORT, else kThrow.
FailureMode failure_mode() noexcept;

/// Overrides the failure mode (e.g. a fuzz harness selecting kAbort).
void set_failure_mode(FailureMode mode) noexcept;

/// Formats and raises one contract violation according to failure_mode().
[[noreturn]] void raise_violation(const char* file, int line,
                                  const char* expression,
                                  const std::string& detail);

/// Collects the streamed detail of a failing check; its destructor raises
/// the violation once the full message has been assembled.
class Failure {
 public:
  Failure(const char* file, int line, const char* expression)
      : file_(file), line_(line), expression_(expression) {}
  Failure(const Failure&) = delete;
  Failure& operator=(const Failure&) = delete;

  ~Failure() noexcept(false) {
    raise_violation(file_, line_, expression_, stream_.str());
  }

  template <typename T>
  Failure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expression_;
  std::ostringstream stream_;
};

/// Lower-precedence-than-<< sink that gives the check macros a void type.
struct Voidify {
  void operator&(const Failure&) const noexcept {}
};

/// Swallows the streamed detail of a compiled-out PRC_DCHECK.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) noexcept {
    return *this;
  }
};

inline bool is_probability(double value) noexcept {
  return std::isfinite(value) && value > 0.0 && value <= 1.0;
}

}  // namespace contracts
}  // namespace prc

/// Always-on invariant check with a stream-style message:
///   PRC_CHECK(p > 0.0) << "p=" << p;
#define PRC_CHECK(condition)                                         \
  (condition) ? (void)0                                              \
              : ::prc::contracts::Voidify() &                        \
                    ::prc::contracts::Failure(__FILE__, __LINE__, #condition)

// PRC_DCHECK guards invariants that are too hot to verify in release
// builds (per-byte codec bounds, per-record ledger audits).  It compiles
// to the full PRC_CHECK in debug builds and whenever PRC_DCHECK_ALWAYS_ON
// is defined (the sanitizer CI jobs build Debug, so they always check).
#if !defined(NDEBUG) || defined(PRC_DCHECK_ALWAYS_ON)
#define PRC_DCHECK_IS_ON() 1
#define PRC_DCHECK(condition) PRC_CHECK(condition)
#else
#define PRC_DCHECK_IS_ON() 0
#define PRC_DCHECK(condition)                      \
  while (false && static_cast<bool>(condition))    \
  ::prc::contracts::NullStream()
#endif

/// Sampling / inclusion probabilities must be finite and in (0, 1].
#define PRC_CHECK_PROB(value)                                  \
  PRC_CHECK(::prc::contracts::is_probability(value))           \
      << #value " must be a probability in (0, 1], got " << (value)

/// NaN and infinity poison every estimate and price downstream.
#define PRC_CHECK_FINITE(value)                     \
  PRC_CHECK(std::isfinite(value))                   \
      << #value " must be finite, got " << (value)
