#include "common/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace prc {
namespace {

/// Splits `text` into records of fields, honoring quotes.
std::vector<std::vector<std::string>> tokenize(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current_record;
  std::string current_field;
  bool in_quotes = false;
  bool field_started = false;  // true once any char (or quote) seen in field
  bool record_started = false;

  auto end_field = [&] {
    current_record.push_back(std::move(current_field));
    current_field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(current_record));
    current_record.clear();
    record_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current_field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current_field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started) {
          in_quotes = true;
          field_started = true;
          record_started = true;
        } else {
          current_field.push_back(c);  // lenient: quote mid-field is literal
        }
        break;
      case ',':
        end_field();
        record_started = true;
        break;
      case '\r':
        // swallow; the '\n' (if any) terminates the record
        break;
      case '\n':
        if (record_started || field_started || !current_record.empty() ||
            !current_field.empty()) {
          end_record();
        }
        break;
      default:
        current_field.push_back(c);
        field_started = true;
        record_started = true;
        break;
    }
  }
  if (in_quotes) throw std::invalid_argument("csv: unterminated quote");
  if (record_started || !current_field.empty() || !current_record.empty()) {
    end_record();
  }
  return records;
}

std::string escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

std::optional<std::size_t> CsvTable::column_index(
    std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return std::nullopt;
}

double CsvTable::field_as_double(std::size_t r, std::size_t c) const {
  const std::string& s = field(r, c);
  double value = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    std::ostringstream msg;
    msg << "csv: field (" << r << ", " << c << ") = '" << s
        << "' is not a number";
    throw std::invalid_argument(msg.str());
  }
  return value;
}

void CsvTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    std::ostringstream msg;
    msg << "csv: row width " << row.size() << " != header width "
        << header_.size();
    throw std::invalid_argument(msg.str());
  }
  rows_.push_back(std::move(row));
}

std::vector<double> CsvTable::column_as_doubles(std::string_view name) const {
  const auto idx = column_index(name);
  if (!idx) {
    throw std::invalid_argument("csv: no column named '" + std::string(name) +
                                "'");
  }
  std::vector<double> out;
  out.reserve(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out.push_back(field_as_double(r, *idx));
  }
  return out;
}

CsvTable parse_csv(std::string_view text) {
  auto records = tokenize(text);
  if (records.empty()) throw std::invalid_argument("csv: empty document");
  CsvTable table(std::move(records.front()));
  for (std::size_t i = 1; i < records.size(); ++i) {
    table.add_row(std::move(records[i]));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csv: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

std::string to_csv(const CsvTable& table) {
  std::ostringstream out;
  const auto emit_row = [&out](const std::vector<std::string>& row) {
    // A single empty field would serialize to an empty line, which parsers
    // (including ours) skip; quote it so the row survives the round trip.
    if (row.size() == 1 && row[0].empty()) {
      out << "\"\"\n";
      return;
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << escape(row[i]);
    }
    out << '\n';
  };
  emit_row(table.header());
  for (std::size_t r = 0; r < table.row_count(); ++r) emit_row(table.row(r));
  return out.str();
}

void write_csv_file(const CsvTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("csv: cannot open '" + path + "'");
  out << to_csv(table);
  if (!out) throw std::runtime_error("csv: write failed for '" + path + "'");
}

}  // namespace prc
