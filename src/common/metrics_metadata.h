// Metadata (kind, unit, help text) for every metric the process registers.
//
// The table lives in src/common/metrics_metadata.inc — a pure-literal
// PRC_METRIC list shared verbatim with scripts/check_telemetry_schema.py —
// and feeds the Prometheus exposition layer (HELP/TYPE lines) plus the CI
// schema gate (a runtime metric without an entry fails the build's
// telemetry-export step).
#pragma once

#include <string>
#include <vector>

namespace prc::telemetry {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// "counter" / "gauge" / "histogram" (the Prometheus TYPE token).
const char* metric_kind_name(MetricKind kind);

struct MetricMetadata {
  const char* name;  ///< dotted registry name, e.g. "iot.round_duration_us"
  MetricKind kind;
  const char* unit;  ///< short unit token ("us", "bytes", ...; "1" = none)
  const char* help;  ///< one-sentence HELP text
};

/// The full table, in .inc order (sorted by name within each layer block).
const std::vector<MetricMetadata>& all_metric_metadata();

/// Lookup by dotted name; nullptr when the metric has no registered
/// metadata (the schema gate treats that as an error).
const MetricMetadata* find_metric_metadata(const std::string& name);

}  // namespace prc::telemetry
