#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prc {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ < 1 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile of empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("q must be in [0, 1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("mean of empty sample");
  RunningStats stats;
  for (double v : values) stats.add(v);
  return stats.mean();
}

double variance(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("variance of empty sample");
  RunningStats stats;
  for (double v : values) stats.add(v);
  return stats.variance();
}

double max_abs(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("max_abs of empty sample");
  double best = 0.0;
  for (double v : values) best = std::max(best, std::abs(v));
  return best;
}

double chebyshev_confidence(double variance, double t) {
  if (!(t > 0.0)) return 0.0;
  return std::clamp(1.0 - variance / (t * t), 0.0, 1.0);
}

double chebyshev_deviation(double variance, double confidence) {
  if (confidence < 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("confidence must be in [0, 1)");
  }
  if (variance < 0.0) throw std::invalid_argument("variance must be >= 0");
  return std::sqrt(variance / (1.0 - confidence));
}

}  // namespace prc
