// Clang thread-safety annotation macros (compile away elsewhere).
//
// Groundwork for the parallel collection/market PRs: the mutable state
// those PRs will contend on — the base station's sample cache and the
// broker's ledger — is annotated now, so that the moment a clang build
// enables -Wthread-safety (CMake option PRC_THREAD_SAFETY_ANALYSIS) the
// compiler enforces the locking discipline instead of reviewers.  Under
// GCC (the default toolchain here) every macro expands to nothing.
//
// Spelling follows the clang attribute names; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define PRC_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PRC_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

/// Declares a class to be a lockable capability (e.g. a mutex wrapper).
#define PRC_CAPABILITY(x) PRC_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Member data protected by the given capability expression.
#define PRC_GUARDED_BY(x) PRC_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define PRC_PT_GUARDED_BY(x) PRC_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and keeps it held).
#define PRC_REQUIRES(...) \
  PRC_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define PRC_ACQUIRE(...) \
  PRC_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define PRC_RELEASE(...) \
  PRC_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define PRC_EXCLUDES(...) \
  PRC_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Escape hatch for functions checked by other means.
#define PRC_NO_THREAD_SAFETY_ANALYSIS \
  PRC_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
