// Minimal --key value command-line parsing shared by the experiment
// binaries and the prc_query CLI.
//
// Grammar: every option is `--key value` except declared boolean switches
// (`--flag`).  Unknown keys are an error (catches typos in experiment
// sweeps), `--help` prints the registered options.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace prc {

class ArgParser {
 public:
  /// `program` and `description` feed the --help text.
  ArgParser(std::string program, std::string description);

  /// Declares a valued option (shown in --help).  Returns *this for
  /// chaining.
  ArgParser& option(const std::string& key, const std::string& help);

  /// Declares a boolean switch (no value).
  ArgParser& flag(const std::string& key, const std::string& help);

  /// Parses argv.  On --help prints usage and returns false (caller should
  /// exit 0).  Throws std::invalid_argument on unknown keys or a missing
  /// value.
  bool parse(int argc, char** argv);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key,
                     const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::uint64_t get_uint(const std::string& key,
                         std::uint64_t fallback) const;

  std::string help() const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
  };
  std::string program_;
  std::string description_;
  std::vector<std::pair<std::string, Spec>> specs_;  // declaration order
  std::map<std::string, std::string> values_;
};

}  // namespace prc
