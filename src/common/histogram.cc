#include "common/histogram.h"

#include <cmath>
#include <stdexcept>

namespace prc {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins < 1) throw std::invalid_argument("histogram needs >= 1 bin");
  if (!(lo < hi)) throw std::invalid_argument("histogram needs lo < hi");
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x) noexcept {
  ++total_;
  std::size_t bin;
  if (x < lo_) {
    ++underflow_;
    bin = 0;
  } else if (x >= hi_) {
    if (x > hi_) ++overflow_;
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge case
  }
  ++counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("bin index");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin) + width_;
}

double Histogram::bin_center(std::size_t bin) const {
  return bin_low(bin) + width_ / 2.0;
}

double Histogram::density(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("bin index");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double Histogram::total_variation_distance(const Histogram& other) const {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    throw std::invalid_argument("histograms have different binning");
  }
  double tv = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    tv += std::abs(density(i) - other.density(i));
  }
  return tv / 2.0;
}

}  // namespace prc
