// Minimal blocking HTTP exporter for the telemetry registry — the live
// scrape surface behind `prc_query session --metrics-port` and
// `bench/market_session --metrics-port`, and the stepping stone to
// prc_serve.
//
// One background thread accepts connections and serves:
//   GET /metrics  -> Prometheus exposition 0.0.4 of a fresh registry
//                    snapshot (Content-Type: text/plain; version=0.0.4)
//   GET /healthz  -> 200 "ok"
//   anything else -> 404
//
// Deliberately tiny: HTTP/1.0-style one-request-per-connection with
// Connection: close, no TLS, no keep-alive, bounded request reads with a
// receive timeout — enough for a stock Prometheus scraper and curl, nothing
// more.  Exposes ONLY registry contents, which already obey the telemetry.h
// privacy-safety rule; no query parameters ever reach a data path.
//
// Thread-safety: start() spawns the accept thread; stop() (idempotent, also
// run by the destructor) shuts the listening socket down and joins.  The
// registry snapshot taken per scrape is internally synchronized.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace prc::telemetry {

class MetricsHttpServer {
 public:
  /// Binds 0.0.0.0:`port` (0 = kernel-assigned ephemeral port, see port())
  /// and starts the accept thread.  Throws std::runtime_error when the
  /// socket cannot be created or bound.
  explicit MetricsHttpServer(std::uint16_t port);
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;
  ~MetricsHttpServer();

  /// The bound port (resolves the ephemeral-port case).
  std::uint16_t port() const noexcept { return port_; }

  /// Requests answered so far (any status).
  std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Stops accepting, joins the thread.  Safe to call repeatedly.
  void stop();

 private:
  void serve_loop();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  // stopping_ is a one-way shutdown latch polled by serve_loop between
  // accepts; requests_ is a monitoring counter read relaxed — neither
  // orders any other memory.
  std::atomic<bool> stopping_{false};       // lint:allow atomic
  std::atomic<std::uint64_t> requests_{0};  // lint:allow atomic
  std::thread thread_;
};

}  // namespace prc::telemetry
