#include "common/metrics_http.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/prometheus.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace prc::telemetry {

namespace {

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; scrape failures are the scraper's problem
    }
    sent += static_cast<std::size_t>(n);
  }
}

// Reads until the end of the request headers (or a small cap / timeout);
// only the request line matters to this server.
std::string read_request(int fd) {
  std::string request;
  char buffer[1024];
  while (request.size() < 8192) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buffer, static_cast<std::size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      break;
    }
  }
  return request;
}

std::string request_path(const std::string& request) {
  // "GET /metrics HTTP/1.1" -> "/metrics"
  const std::size_t method_end = request.find(' ');
  if (method_end == std::string::npos) return "";
  if (request.compare(0, method_end, "GET") != 0) return "";
  const std::size_t path_end = request.find(' ', method_end + 1);
  if (path_end == std::string::npos) return "";
  return request.substr(method_end + 1, path_end - method_end - 1);
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("metrics_http: socket(): ") +
                             std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_ANY);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("metrics_http: cannot listen on port " +
                             std::to_string(port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::stop() {
  if (!stopping_.exchange(true)) {
    // Unblock accept(); closing alone is not reliable on all platforms.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listening socket is gone; nothing left to serve
    }
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    const std::string path = request_path(read_request(client));
    if (path == "/metrics") {
      // Fold tracer-ring statistics in so every scrape carries
      // trace.spans_dropped alongside the registry metrics.
      trace::publish_telemetry();
      const std::string body =
          prometheus::render(Telemetry::registry().snapshot());
      write_all(client, http_response("200 OK", prometheus::content_type(),
                                      body));
    } else if (path == "/healthz") {
      write_all(client,
                http_response("200 OK", "text/plain; charset=utf-8", "ok\n"));
    } else if (path.empty()) {
      write_all(client, http_response("400 Bad Request",
                                      "text/plain; charset=utf-8",
                                      "only GET is supported\n"));
    } else {
      write_all(client,
                http_response("404 Not Found", "text/plain; charset=utf-8",
                              "try /metrics or /healthz\n"));
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    ::close(client);
  }
}

}  // namespace prc::telemetry
