#!/usr/bin/env bash
# lint_changed.sh — report prc_lint findings for the files you touched.
#
# The whole tree is still ANALYZED (the interprocedural rules need the
# full call graph: your edit can break an invariant in a file you never
# opened), but findings are REPORTED only for changed files, which keeps
# the signal tight during review.  The summary cache makes the full-tree
# analysis cheap (<1s warm).
#
# Usage:
#   scripts/lint_changed.sh              # diff against origin/main or HEAD
#   scripts/lint_changed.sh <base-ref>   # diff against an explicit ref
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

base="${1:-}"
if [[ -z "$base" ]]; then
  if git rev-parse --verify --quiet origin/main >/dev/null; then
    base="origin/main"
  else
    base="HEAD"
  fi
fi

mapfile -t changed < <(
  { git diff --name-only "$base" --; git diff --name-only --cached --;
    git ls-files --others --exclude-standard; } |
  sort -u | grep -E '\.(cc|h|cpp|hpp)$' | grep -v '^tools/lint_fixtures/' |
  while IFS= read -r f; do [[ -f "$f" ]] && printf '%s\n' "$f"; done
)

if [[ ${#changed[@]} -eq 0 ]]; then
  echo "lint_changed: no changed C++ sources vs $base"
  exit 0
fi

echo "lint_changed: ${#changed[@]} changed file(s) vs $base"
exec python3 tools/prc_lint --no-clang-tidy --changed "${changed[@]}"
