#!/usr/bin/env python3
"""lock-order gate: the canonical lock order is deterministic and acyclic.

Runs `prc_lint --lock-order-out` twice over src/ — once against the warm
summary cache, once cold (--no-cache) — and fails unless the two
artifacts are byte-identical (the derived order is a function of the
tree, not of cache state or iteration order) and contain zero cycles.
The surviving artifact lands at build/lock_order.txt, which CI archives
and CONTRIBUTING.md points new mutex authors at.

Exit status: 0 on a deterministic, cycle-free order; 1 on any cycle or
divergence; 2 on usage error.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT = os.path.join("build", "lock_order.txt")


def run(out_path, *extra):
    cmd = [sys.executable, os.path.join(REPO_ROOT, "tools", "prc_lint"),
           "--no-clang-tidy", "--lock-order-out", out_path, *extra, "src/"]
    proc = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        print(f"check_lock_order: prc_lint failed (exit {proc.returncode})",
              file=sys.stderr)
        return None
    with open(os.path.join(REPO_ROOT, out_path), encoding="utf-8") as f:
        return f.read()


def main():
    os.makedirs(os.path.join(REPO_ROOT, "build"), exist_ok=True)
    warm = run(ARTIFACT)
    if warm is None:
        return 2
    cold = run(ARTIFACT + ".cold", "--no-cache")
    if cold is None:
        return 2
    os.unlink(os.path.join(REPO_ROOT, ARTIFACT + ".cold"))
    if warm != cold:
        print("check_lock_order: warm-cache and cold artifacts diverge — "
              "the derived order is not a pure function of the tree")
        return 1
    if "cycles: none" not in warm:
        sys.stdout.write(warm)
        print("check_lock_order: lock-acquisition graph contains a cycle")
        return 1
    edges = sum(1 for line in warm.splitlines()
                if line.startswith("  ") and " -> " in line)
    print(f"check_lock_order: deterministic, {edges} edge(s), zero cycles "
          f"({ARTIFACT})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
