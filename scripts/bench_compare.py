#!/usr/bin/env python3
"""Benchmark-regression gate over bench telemetry snapshots.

Every experiment binary writes a TelemetrySnapshot JSON on exit (see
bench_common.h); since the parallel layer landed, the snapshot carries
`bench.wall_clock_us` and `bench.threads` gauges next to the pipeline
counters.  This script turns a set of those snapshots into a committed
baseline (BENCH_<pr>.json) and gates future runs against it:

  collect  — build a baseline from snapshot files:
               bench_compare.py collect --out BENCH_4.json \\
                   build/bench/*.telemetry.json
  compare  — gate snapshots against a baseline:
               bench_compare.py compare --baseline BENCH_4.json \\
                   build/bench/*.telemetry.json

Two kinds of checks, deliberately different in strictness:

* Counters are the EXACT contract.  Runs are deterministic in the seed
  for every thread count, so any counter drift against the baseline is a
  behavior change (or a determinism regression), not noise.  Compared
  bit-for-bit; any mismatch fails.
* Wall clock is the PERFORMANCE contract.  `compare` fails when a
  benchmark runs more than --max-regression (default 0.15 = 15%) slower
  than its baseline.  Because absolute times only mean something on the
  machine that recorded the baseline, pass --time-informational when
  comparing against a baseline recorded elsewhere (e.g. the committed
  BENCH_4.json on a CI runner): timing is then reported but not gated,
  while the counter gate stays hard.  CI gets a real timing gate by
  collecting a fresh same-machine baseline at the start of the job and
  comparing a second run against it.

Exit status: 0 when every gate passes, 1 otherwise.
"""

import argparse
import json
import os
import sys

SCHEMA = "prc-bench-baseline-v1"

# Sub-15ms runs are dominated by process startup and allocator warmup;
# gating a percentage on them is pure noise, so the timing gate skips them
# (the counter gate still applies).
MIN_GATED_WALL_US = 15000.0


def load_snapshot(path):
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    for section in ("counters", "gauges"):
        if not isinstance(snapshot.get(section), dict):
            raise ValueError(f"{path}: missing section '{section}' — not a "
                             "TelemetrySnapshot export?")
    return snapshot


def bench_name(path):
    """streaming_collection.telemetry.json -> streaming_collection."""
    name = os.path.basename(path)
    for suffix in (".telemetry.json", ".json"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def json_snapshots(paths):
    """Filters shell-glob input down to JSON snapshots.

    Bench binaries write a Prometheus-exposition twin (*.telemetry.prom)
    next to every *.telemetry.json; a loose glob like bench_out/* picks
    both up.  The .prom files are a human/scrape surface, not a comparison
    format — skip them rather than failing the JSON parse.
    """
    kept = []
    for path in paths:
        if path.endswith(".prom"):
            print(f"bench_compare: skipping {path} (Prometheus exposition, "
                  "not a snapshot)")
            continue
        kept.append(path)
    return kept


def entry_from_snapshot(snapshot):
    gauges = snapshot["gauges"]
    return {
        "wall_clock_us": float(gauges.get("bench.wall_clock_us", 0.0)),
        "threads": int(gauges.get("bench.threads", 1)),
        "counters": dict(sorted(snapshot["counters"].items())),
    }


def cmd_collect(args):
    benchmarks = {}
    for path in json_snapshots(args.snapshots):
        name = bench_name(path)
        benchmarks[name] = entry_from_snapshot(load_snapshot(path))
        print(f"bench_compare: collected {name} "
              f"({len(benchmarks[name]['counters'])} counters, "
              f"{benchmarks[name]['wall_clock_us'] / 1e3:.1f} ms)")
    baseline = {"schema": SCHEMA, "benchmarks": benchmarks}
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"bench_compare: wrote {args.out} ({len(benchmarks)} benchmarks)")
    return 0


def compare_counters(name, base, current):
    failures = []
    for counter, expected in base.items():
        actual = current.get(counter)
        if actual != expected:
            failures.append(f"{name}: counter {counter} = {actual} "
                            f"(baseline {expected})")
    for counter in current:
        if counter not in base:
            failures.append(f"{name}: new counter {counter} not in baseline "
                            "(re-collect the baseline if intentional)")
    return failures


def cmd_compare(args):
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != SCHEMA:
        print(f"bench_compare: FAIL: {args.baseline} is not a {SCHEMA} file")
        return 1
    benchmarks = baseline["benchmarks"]

    failures = []
    snapshots = json_snapshots(args.snapshots)
    for path in snapshots:
        name = bench_name(path)
        base = benchmarks.get(name)
        if base is None:
            failures.append(f"{name}: not in baseline {args.baseline}")
            continue
        current = entry_from_snapshot(load_snapshot(path))

        failures.extend(compare_counters(name, base["counters"],
                                         current["counters"]))

        base_us = base["wall_clock_us"]
        cur_us = current["wall_clock_us"]
        if base_us <= 0 or cur_us <= 0:
            verdict = "no timing data"
        elif base_us < MIN_GATED_WALL_US:
            verdict = "below timing-gate floor"
        else:
            ratio = cur_us / base_us
            verdict = f"{ratio - 1.0:+.1%} wall clock"
            if ratio > 1.0 + args.max_regression:
                message = (f"{name}: wall clock {cur_us / 1e3:.1f} ms vs "
                           f"baseline {base_us / 1e3:.1f} ms "
                           f"(+{(ratio - 1.0):.0%} > "
                           f"{args.max_regression:.0%} budget)")
                if args.time_informational:
                    verdict += " [informational]"
                    print(f"bench_compare: note: {message}")
                else:
                    failures.append(message)
        print(f"bench_compare: {name}: counters "
              f"{len(current['counters'])} checked, {verdict} "
              f"(threads {current['threads']})")

    for failure in failures:
        print(f"bench_compare: FAIL: {failure}")
    if failures:
        print(f"bench_compare: {len(failures)} gate failure(s)")
        return 1
    print(f"bench_compare: OK ({len(snapshots)} benchmarks within "
          f"{args.max_regression:.0%} of {args.baseline})")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(prog="bench_compare")
    sub = parser.add_subparsers(dest="command", required=True)

    collect = sub.add_parser("collect", help="build a baseline")
    collect.add_argument("--out", required=True, help="baseline path to write")
    collect.add_argument("snapshots", nargs="+",
                         help="*.telemetry.json files")
    collect.set_defaults(func=cmd_collect)

    compare = sub.add_parser("compare", help="gate against a baseline")
    compare.add_argument("--baseline", required=True)
    compare.add_argument("--max-regression", type=float, default=0.15,
                         help="allowed wall-clock slowdown (default 0.15)")
    compare.add_argument("--time-informational", action="store_true",
                         help="report timing but never fail on it (use when "
                              "the baseline came from a different machine)")
    compare.add_argument("snapshots", nargs="+",
                         help="*.telemetry.json files")
    compare.set_defaults(func=cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
