#!/usr/bin/env python3
"""concurrency-adoption gate: every mutex and atomic in src/ is documented.

A `std::mutex` nobody annotates and a `std::atomic` with no stated
ordering contract are where the next data race hides: the lock-order
graph, the blocking-under-lock rule and clang's thread-safety analysis
can only reason about primitives the code DECLARES a discipline for.
This script imports prc_lint's summary engine from tools/prc_lint_lib
(one tokenizer in the repo) and fails if any mutex field under src/ is
referenced by no PRC_GUARDED_BY / PRC_REQUIRES / PRC_ACQUIRE annotation,
or any atomic field neither carries PRC_GUARDED_BY nor a
`// lint:allow atomic` hatch stating the memory-order contract.

This is the same check as prc_lint's `atomic-discipline` rule, exposed
as a standalone, dependency-free gate (mirroring check_units_adoption)
so CI and pre-commit hooks can run it without the clang-tidy layer, and
so its scope — all of src/ — is pinned even if lint default paths
change.

Exit status: 0 when fully adopted, 1 when an undocumented primitive
exists, 2 on usage error.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GATED_DIR = "src"

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from prc_lint_lib.model import FileModel, SOURCE_EXTENSIONS, stem  # noqa: E402
from prc_lint_lib.summaries import summarize_file  # noqa: E402
from prc_lint_lib.interproc import check_atomic_discipline  # noqa: E402


def main():
    root = os.path.join(REPO_ROOT, GATED_DIR)
    if not os.path.isdir(root):
        print(f"check_concurrency_adoption: missing directory {GATED_DIR}",
              file=sys.stderr)
        return 2
    summaries = []
    fields_by_stem = {}
    concurrency_by_path = {}
    allows_by_path = {}
    scanned = 0
    primitives = 0
    hatched = 0
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTENSIONS):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, REPO_ROOT)
            with open(path, encoding="utf-8", errors="replace") as f:
                model = FileModel(rel, f.read())
            scanned += 1
            file_summaries, fields, concurrency, _ = summarize_file(model)
            summaries.extend(file_summaries)
            fields_by_stem.setdefault(stem(rel), {}).update(fields)
            if concurrency["decls"] or concurrency["guards"]:
                concurrency_by_path[rel] = concurrency
            primitives += len(concurrency["decls"])
            hatched += len(model.allows.get("atomic", ()))
            if model.allows:
                allows_by_path[rel] = model.allows
    findings = []
    for f in check_atomic_discipline(summaries, concurrency_by_path,
                                     fields_by_stem):
        allowed = allows_by_path.get(f.path, {}).get("atomic", set())
        if f.lineno not in allowed:
            findings.append(f)
    for finding in findings:
        print(finding)
    verdict = "fully documented" if not findings else \
        f"{len(findings)} undocumented primitive(s)"
    print(f"check_concurrency_adoption: {scanned} files under {GATED_DIR}, "
          f"{primitives} mutex/atomic field(s), {hatched} justified "
          f"hatch(es): {verdict}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
