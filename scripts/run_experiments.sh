#!/usr/bin/env bash
# Runs every experiment binary and saves outputs under results/.
#
# usage: scripts/run_experiments.sh [build-dir] [-- extra bench args]
#   scripts/run_experiments.sh
#   scripts/run_experiments.sh build -- --csv my_citypulse_export.csv
set -euo pipefail

BUILD_DIR="${1:-build}"
shift || true
EXTRA_ARGS=()
if [ "${1:-}" = "--" ]; then
  shift
  EXTRA_ARGS=("$@")
fi

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

RESULTS_DIR="results/$(date +%Y%m%d-%H%M%S)"
mkdir -p "$RESULTS_DIR"
echo "writing results to $RESULTS_DIR"

for bench in "$BUILD_DIR"/bench/*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "== $name"
  if [ "$name" = micro_benchmarks ]; then
    "$bench" | tee "$RESULTS_DIR/$name.txt"
  else
    "$bench" --output-csv "${EXTRA_ARGS[@]}" | tee "$RESULTS_DIR/$name.txt"
  fi
done

echo
echo "done: $(ls "$RESULTS_DIR" | wc -l) result files in $RESULTS_DIR"
