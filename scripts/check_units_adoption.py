#!/usr/bin/env python3
"""units-adoption gate: no NEW bare-double privacy parameters in the DP and
pricing layers.

The phantom unit types in src/common/units.h (Epsilon, EffectiveEpsilon,
Delta, Alpha, Probability) only pay off if the public surfaces keep using
them: one bare `double epsilon` parameter reopens every swap the types
closed.  This script imports prc_lint's token engine from
tools/prc_lint_lib (so comments, strings and preprocessor lines can't fool
it — and there is exactly ONE tokenizer in the repo) and fails if any
parameter or class field under src/dp or src/pricing spells a privacy
quantity as a bare double.

This is the same check as prc_lint's `unit-suffix-consistency` rule,
exposed as a standalone, dependency-free gate so CI (and pre-commit hooks)
can run it without the clang-tidy layer, and so its scope — the DP and
pricing public surfaces — is pinned even if the lint default paths change.

Exit status: 0 when fully adopted, 1 when a bare-double privacy parameter
or field exists, 2 on usage error.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GATED_DIRS = (os.path.join("src", "dp"), os.path.join("src", "pricing"))

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from prc_lint_lib.model import FileModel, SOURCE_EXTENSIONS  # noqa: E402
from prc_lint_lib.rules import check_unit_suffix_consistency  # noqa: E402


def main():
    findings = []
    scanned = 0
    for gated in GATED_DIRS:
        root = os.path.join(REPO_ROOT, gated)
        if not os.path.isdir(root):
            print(f"check_units_adoption: missing directory {gated}",
                  file=sys.stderr)
            return 2
        for dirpath, _, filenames in os.walk(root):
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8", errors="replace") as f:
                    model = FileModel(os.path.relpath(path, REPO_ROOT),
                                      f.read())
                scanned += 1
                allowed = model.allows.get("unit-suffix", set())
                findings.extend(
                    f for f in check_unit_suffix_consistency(model)
                    if f.lineno not in allowed)
    for finding in findings:
        print(finding)
    verdict = "fully unit-typed" if not findings else \
        f"{len(findings)} bare-double privacy declaration(s)"
    print(f"check_units_adoption: {scanned} files under "
          f"{' and '.join(GATED_DIRS)}: {verdict}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
