#!/usr/bin/env python3
"""units-adoption gate: no NEW bare-double privacy parameters in the DP and
pricing layers.

The phantom unit types in src/common/units.h (Epsilon, EffectiveEpsilon,
Delta, Alpha, Probability) only pay off if the public surfaces keep using
them: one bare `double epsilon` parameter reopens every swap the types
closed.  This script reuses prc_lint's token engine (so comments, strings
and preprocessor lines can't fool it) and fails if any parameter or class
field under src/dp or src/pricing spells a privacy quantity as a bare
double.

This is the same check as prc_lint's `unit-suffix-consistency` rule,
exposed as a standalone, dependency-free gate so CI (and pre-commit hooks)
can run it without the clang-tidy layer, and so its scope — the DP and
pricing public surfaces — is pinned even if the lint default paths change.

Exit status: 0 when fully adopted, 1 when a bare-double privacy parameter
or field exists, 2 on usage error.
"""

import importlib.machinery
import importlib.util
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GATED_DIRS = (os.path.join("src", "dp"), os.path.join("src", "pricing"))


def load_lint_module():
    path = os.path.join(REPO_ROOT, "tools", "prc_lint")
    spec = importlib.util.spec_from_loader(
        "prc_lint", importlib.machinery.SourceFileLoader("prc_lint", path))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main():
    lint = load_lint_module()
    findings = []
    scanned = 0
    for gated in GATED_DIRS:
        root = os.path.join(REPO_ROOT, gated)
        if not os.path.isdir(root):
            print(f"check_units_adoption: missing directory {gated}",
                  file=sys.stderr)
            return 2
        for dirpath, _, filenames in os.walk(root):
            for name in sorted(filenames):
                if not name.endswith(lint.SOURCE_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8", errors="replace") as f:
                    model = lint.FileModel(os.path.relpath(path, REPO_ROOT),
                                           f.read())
                scanned += 1
                findings.extend(lint.check_unit_suffix_consistency(model))
    for finding in findings:
        print(finding)
    verdict = "fully unit-typed" if not findings else \
        f"{len(findings)} bare-double privacy declaration(s)"
    print(f"check_units_adoption: {scanned} files under "
          f"{' and '.join(GATED_DIRS)}: {verdict}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
