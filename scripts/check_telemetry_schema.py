#!/usr/bin/env python3
"""Schema gate for prc_query telemetry exports.

Three coupled checks, sharing src/common/metrics_metadata.inc as the
single source of truth:

1. Snapshot JSON (positional argument): the TelemetrySnapshot has the
   documented shape (counters/gauges/histograms with the right field
   types) and — because CI runs it on a full `prc_query session` — meets
   the observability floor: at least MIN_METRICS distinct metrics covering
   all four pipeline layers.  Every exported metric must also have a
   PRC_METRIC entry whose kind matches the section it appeared in.

2. Metadata table (always): the .inc parses, entry names are unique
   (both as written and after Prometheus sanitization), kinds are known,
   units and help text are non-empty.

3. Prometheus exposition (--prom PATH): promtool-style validation of a
   rendered /metrics payload or .prom artifact — family preambles, sample
   membership, histogram cumulativity (le ascending, +Inf == _count,
   _sum/_count present), and that every family maps back to a registered
   metadata entry with the matching TYPE.

Usage:
  check_telemetry_schema.py snapshot.json [--min-metrics N]
  check_telemetry_schema.py --prom scrape.prom
  check_telemetry_schema.py snapshot.json --prom scrape.prom
Exit status: 0 when valid, 1 on any schema, metadata or coverage
violation.
"""

import argparse
import json
import math
import os
import re
import sys

REQUIRED_LAYERS = ("iot.", "dp.", "pricing.", "market.")
HISTOGRAM_NUMBER_FIELDS = ("sum", "min", "max", "p50", "p95", "p99")

DEFAULT_METADATA = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src", "common",
                                "metrics_metadata.inc")

KIND_TO_SECTION = {"kCounter": "counters", "kGauge": "gauges",
                   "kHistogram": "histograms"}
KIND_TO_PROM_TYPE = {"kCounter": "counter", "kGauge": "gauge",
                     "kHistogram": "histogram"}

# One C++ string literal; PRC_METRIC arguments may be several, adjacent.
_STRING = r'"(?:[^"\\]|\\.)*"'
_STRINGS = rf'(?:{_STRING}\s*)+'
ENTRY_RE = re.compile(
    rf'PRC_METRIC\(\s*({_STRINGS})\s*,\s*(k\w+)\s*,\s*({_STRINGS})\s*,'
    rf'\s*({_STRINGS})\)', re.DOTALL)
STRING_RE = re.compile(_STRING)

METRIC_NAME_RE = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*$')
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"((?:[^"\\]|\\.)*)"')
SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)(?:\s+(\S+))?\s*$')
PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def fail(message):
    print(f"check_telemetry_schema: FAIL: {message}")
    return 1


def _join_literals(chunk):
    """Adjacent C++ string literals -> one Python string."""
    text = "".join(part[1:-1] for part in STRING_RE.findall(chunk))
    return re.sub(r'\\(.)',
                  lambda m: {"n": "\n", "t": "\t"}.get(m.group(1),
                                                       m.group(1)),
                  text)


def sanitize_metric_name(name):
    """Mirrors prometheus::sanitize_metric_name (prc_ prefix, charset)."""
    return "prc_" + "".join(
        c if (c.isascii() and c.isalnum()) or c in "_:" else "_"
        for c in name)


def load_metadata(path):
    """Parses PRC_METRIC entries; returns ({name: entry}, error_or_None)."""
    try:
        with open(path, encoding="utf-8") as handle:
            raw = handle.read()
    except OSError as error:
        return None, f"cannot read metadata table {path}: {error}"
    # Strip // comment lines first: the header documents the macro shape
    # with a literal PRC_METRIC example that must not be parsed.
    text = "\n".join(line for line in raw.splitlines()
                     if not line.lstrip().startswith("//"))
    entries = {}
    matched = 0
    for match in ENTRY_RE.finditer(text):
        matched += 1
        name = _join_literals(match.group(1))
        kind = match.group(2)
        unit = _join_literals(match.group(3))
        help_text = _join_literals(match.group(4))
        if kind not in KIND_TO_SECTION:
            return None, f"metadata {name}: unknown kind token {kind}"
        if not name or not METRIC_NAME_RE.match(sanitize_metric_name(name)):
            return None, f"metadata entry with unusable name {name!r}"
        if not unit:
            return None, f"metadata {name}: empty unit"
        if not help_text.strip():
            return None, f"metadata {name}: empty help text"
        if name in entries:
            return None, f"metadata {name}: duplicate entry"
        entries[name] = {"kind": kind, "unit": unit, "help": help_text}
    declared = text.count("PRC_METRIC(")
    if matched != declared:
        return None, (f"metadata table {path}: {declared} PRC_METRIC( "
                      f"occurrences but only {matched} parse — malformed "
                      "entry (arguments must be pure string literals)")
    if not entries:
        return None, f"metadata table {path}: no PRC_METRIC entries"
    sanitized = {}
    for name in entries:
        flat = sanitize_metric_name(name)
        if flat in sanitized:
            return None, (f"metadata {name}: sanitized name {flat} collides "
                          f"with {sanitized[flat]}")
        sanitized[flat] = name
    return entries, None


def check_snapshot_metadata(snapshot, metadata):
    """Every exported metric has an entry of the matching kind."""
    problems = []
    for kind, section in KIND_TO_SECTION.items():
        for name in snapshot[section]:
            entry = metadata.get(name)
            if entry is None:
                problems.append(
                    f"{section[:-1]} {name} has no PRC_METRIC entry in "
                    "src/common/metrics_metadata.inc")
            elif entry["kind"] != kind:
                problems.append(
                    f"{section[:-1]} {name} is registered as "
                    f"{entry['kind']} in metrics_metadata.inc but exported "
                    f"in section '{section}'")
    return problems


def check(path, min_metrics, metadata):
    try:
        with open(path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail(f"cannot parse {path}: {error}")

    if not isinstance(snapshot, dict):
        return fail("top level must be an object")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            return fail(f"missing or non-object section '{section}'")

    names = []
    for name, value in snapshot["counters"].items():
        if not isinstance(value, int) or value < 0:
            return fail(f"counter {name} must be a non-negative integer, "
                        f"got {value!r}")
        names.append(name)
    for name, value in snapshot["gauges"].items():
        if not isinstance(value, (int, float)):
            return fail(f"gauge {name} must be a number, got {value!r}")
        names.append(name)
    for name, hist in snapshot["histograms"].items():
        if not isinstance(hist, dict):
            return fail(f"histogram {name} must be an object")
        if not isinstance(hist.get("count"), int) or hist["count"] < 0:
            return fail(f"histogram {name}.count must be a non-negative "
                        "integer")
        for field in HISTOGRAM_NUMBER_FIELDS:
            if not isinstance(hist.get(field), (int, float)):
                return fail(f"histogram {name}.{field} must be a number")
        bounds = hist.get("bounds")
        buckets = hist.get("bucket_counts")
        if not isinstance(bounds, list) or not bounds:
            return fail(f"histogram {name}.bounds must be a non-empty list")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            return fail(f"histogram {name}.bounds must be strictly "
                        "increasing")
        if not isinstance(buckets, list) \
                or len(buckets) != len(bounds) + 1:
            return fail(f"histogram {name}.bucket_counts must have "
                        "len(bounds)+1 entries (incl. the overflow bucket)")
        if sum(buckets) != hist["count"]:
            return fail(f"histogram {name}: bucket_counts sum "
                        f"{sum(buckets)} != count {hist['count']}")
        names.append(name)

    if len(names) != len(set(names)):
        return fail("metric names must be unique across sections")
    if len(names) < min_metrics:
        return fail(f"only {len(names)} metrics; expected >= {min_metrics}")
    missing = [layer for layer in REQUIRED_LAYERS
               if not any(name.startswith(layer) for name in names)]
    if missing:
        return fail(f"no metrics from layer(s): {', '.join(missing)}")

    problems = check_snapshot_metadata(snapshot, metadata)
    if problems:
        for problem in problems:
            print(f"check_telemetry_schema: FAIL: {problem}")
        return 1

    print(f"check_telemetry_schema: OK ({len(names)} metrics, "
          f"all of {', '.join(layer.rstrip('.') for layer in REQUIRED_LAYERS)}"
          " covered, all with registered metadata)")
    return 0


def _parse_prom_value(token, lineno):
    if token in ("+Inf", "Inf"):
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise ValueError(f"line {lineno}: unparseable sample value "
                         f"`{token}`") from None


def parse_prom(text):
    """Promtool-style parse; returns [family dicts] or raises ValueError.

    Mirrors the invariants prometheus::parse_exposition enforces in C++:
    the two parsers are independent implementations of the same contract,
    so CI catches either side drifting.
    """
    families = []
    index = {}
    pending_help = {}
    current = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split(None, 2)
            keyword = parts[0] if parts else ""
            if keyword == "HELP":
                if len(parts) < 2 or not METRIC_NAME_RE.match(parts[1]):
                    raise ValueError(f"line {lineno}: malformed HELP line")
                name = parts[1]
                help_text = parts[2] if len(parts) == 3 else ""
                if name in index:
                    families[index[name]]["help"] = help_text
                else:
                    pending_help[name] = help_text
            elif keyword == "TYPE":
                if len(parts) != 3 or not METRIC_NAME_RE.match(parts[1]):
                    raise ValueError(f"line {lineno}: malformed TYPE line")
                name, prom_type = parts[1], parts[2]
                if prom_type not in PROM_TYPES:
                    raise ValueError(f"line {lineno}: unknown metric type "
                                     f"`{prom_type}`")
                if name in index:
                    raise ValueError(f"line {lineno}: duplicate TYPE "
                                     f"declaration for {name}")
                family = {"name": name, "type": prom_type,
                          "help": pending_help.pop(name, None),
                          "samples": []}
                index[name] = len(families)
                families.append(family)
                current = family
            # Other comments (# UNIT, prose) are ignored per format 0.0.4.
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparseable sample line "
                             f"`{line}`")
        name, label_block, value_token, timestamp = match.groups()
        labels = dict(LABEL_RE.findall(label_block or ""))
        value = _parse_prom_value(value_token, lineno)
        if timestamp is not None:
            try:
                int(timestamp)
            except ValueError:
                raise ValueError(f"line {lineno}: trailing garbage after "
                                 f"sample value: `{timestamp}`") from None
        if current is None:
            raise ValueError(f"line {lineno}: sample `{name}` before any "
                             "TYPE declaration")
        allowed = {current["name"]}
        if current["type"] in ("histogram", "summary"):
            allowed |= {current["name"] + "_sum", current["name"] + "_count"}
        if current["type"] == "histogram":
            allowed.add(current["name"] + "_bucket")
        if name not in allowed:
            raise ValueError(f"line {lineno}: sample `{name}` does not "
                             f"belong to the preceding TYPE family "
                             f"{current['name']}")
        current["samples"].append({"name": name, "labels": labels,
                                   "value": value})
    for family in families:
        if family["help"] is None:
            raise ValueError(f"family {family['name']} has no HELP line")
        if not family["samples"]:
            raise ValueError(f"family {family['name']} declared but has no "
                             "samples")
        if family["type"] == "histogram":
            _validate_prom_histogram(family)
    return families


def _validate_prom_histogram(family):
    name = family["name"]
    previous_le = -math.inf
    previous_cumulative = -1.0
    inf_bucket = None
    count_value = None
    saw_sum = False
    for sample in family["samples"]:
        if sample["name"] == name + "_sum":
            saw_sum = True
            continue
        if sample["name"] == name + "_count":
            count_value = sample["value"]
            continue
        le = sample["labels"].get("le")
        if le is None:
            raise ValueError(f"histogram {name}: bucket sample without an "
                             "le label")
        le_value = _parse_prom_value(le, 0)
        if not le_value > previous_le:
            raise ValueError(f"histogram {name}: le buckets are not sorted "
                             "ascending")
        if sample["value"] < previous_cumulative:
            raise ValueError(f"histogram {name}: bucket counts are not "
                             f"cumulative at le=\"{le}\"")
        previous_le = le_value
        previous_cumulative = sample["value"]
        if le_value == math.inf:
            inf_bucket = sample["value"]
    if inf_bucket is None:
        raise ValueError(f"histogram {name}: missing le=\"+Inf\" bucket")
    if not saw_sum or count_value is None:
        raise ValueError(f"histogram {name}: missing _sum or _count series")
    if inf_bucket != count_value:
        raise ValueError(f"histogram {name}: le=\"+Inf\" bucket "
                         f"({inf_bucket}) disagrees with _count "
                         f"({count_value})")


def check_prom(path, metadata):
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        return fail(f"cannot read {path}: {error}")
    try:
        families = parse_prom(text)
    except ValueError as error:
        return fail(f"{path}: {error}")
    if not families:
        return fail(f"{path}: exposition contains no metric families")

    # Map exposition family names back to registry metadata: counters get a
    # _total suffix at render time, everything else keeps the sanitized
    # dotted name verbatim.
    expected = {}
    for dotted, entry in metadata.items():
        family = sanitize_metric_name(dotted)
        if entry["kind"] == "kCounter" and not family.endswith("_total"):
            family += "_total"
        expected[family] = (dotted, KIND_TO_PROM_TYPE[entry["kind"]])
    problems = []
    for family in families:
        known = expected.get(family["name"])
        if known is None:
            problems.append(
                f"family {family['name']} has no PRC_METRIC entry in "
                "src/common/metrics_metadata.inc")
            continue
        dotted, prom_type = known
        if family["type"] != prom_type:
            problems.append(
                f"family {family['name']} has TYPE {family['type']} but "
                f"{dotted} is registered as {prom_type}")
    if problems:
        for problem in problems:
            print(f"check_telemetry_schema: FAIL: {path}: {problem}")
        return 1
    samples = sum(len(f["samples"]) for f in families)
    print(f"check_telemetry_schema: OK ({path}: {len(families)} families, "
          f"{samples} samples, exposition 0.0.4 valid, all families "
          "registered)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(prog="check_telemetry_schema")
    parser.add_argument("snapshot", nargs="?",
                        help="TelemetrySnapshot JSON file")
    parser.add_argument("--min-metrics", type=int, default=20,
                        help="minimum distinct metric count (default 20)")
    parser.add_argument("--prom", action="append", default=[],
                        metavar="PATH",
                        help="also validate a Prometheus exposition file "
                             "(.prom artifact or live /metrics scrape); "
                             "repeatable")
    parser.add_argument("--metadata", default=DEFAULT_METADATA,
                        help="metric metadata table "
                             "(default src/common/metrics_metadata.inc "
                             "next to this script)")
    args = parser.parse_args(argv)
    if args.snapshot is None and not args.prom:
        parser.error("nothing to check: give a snapshot and/or --prom")

    metadata, error = load_metadata(args.metadata)
    if error is not None:
        return fail(error)

    status = 0
    if args.snapshot is not None:
        status |= check(args.snapshot, args.min_metrics, metadata)
    for prom_path in args.prom:
        status |= check_prom(prom_path, metadata)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
