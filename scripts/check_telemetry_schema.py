#!/usr/bin/env python3
"""Schema gate for prc_query --telemetry exports.

Validates that a TelemetrySnapshot JSON file has the documented shape
(counters/gauges/histograms with the right field types) and — because CI
runs it on a full `prc_query session` — that the export meets the
observability floor: at least MIN_METRICS distinct metrics covering all
four pipeline layers.

Usage: check_telemetry_schema.py snapshot.json [--min-metrics N]
Exit status: 0 when valid, 1 on any schema or coverage violation.
"""

import argparse
import json
import sys

REQUIRED_LAYERS = ("iot.", "dp.", "pricing.", "market.")
HISTOGRAM_NUMBER_FIELDS = ("sum", "min", "max", "p50", "p95", "p99")


def fail(message):
    print(f"check_telemetry_schema: FAIL: {message}")
    return 1


def check(path, min_metrics):
    try:
        with open(path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail(f"cannot parse {path}: {error}")

    if not isinstance(snapshot, dict):
        return fail("top level must be an object")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            return fail(f"missing or non-object section '{section}'")

    names = []
    for name, value in snapshot["counters"].items():
        if not isinstance(value, int) or value < 0:
            return fail(f"counter {name} must be a non-negative integer, "
                        f"got {value!r}")
        names.append(name)
    for name, value in snapshot["gauges"].items():
        if not isinstance(value, (int, float)):
            return fail(f"gauge {name} must be a number, got {value!r}")
        names.append(name)
    for name, hist in snapshot["histograms"].items():
        if not isinstance(hist, dict):
            return fail(f"histogram {name} must be an object")
        if not isinstance(hist.get("count"), int) or hist["count"] < 0:
            return fail(f"histogram {name}.count must be a non-negative "
                        "integer")
        for field in HISTOGRAM_NUMBER_FIELDS:
            if not isinstance(hist.get(field), (int, float)):
                return fail(f"histogram {name}.{field} must be a number")
        bounds = hist.get("bounds")
        buckets = hist.get("bucket_counts")
        if not isinstance(bounds, list) or not bounds:
            return fail(f"histogram {name}.bounds must be a non-empty list")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            return fail(f"histogram {name}.bounds must be strictly "
                        "increasing")
        if not isinstance(buckets, list) \
                or len(buckets) != len(bounds) + 1:
            return fail(f"histogram {name}.bucket_counts must have "
                        "len(bounds)+1 entries (incl. the overflow bucket)")
        if sum(buckets) != hist["count"]:
            return fail(f"histogram {name}: bucket_counts sum "
                        f"{sum(buckets)} != count {hist['count']}")
        names.append(name)

    if len(names) != len(set(names)):
        return fail("metric names must be unique across sections")
    if len(names) < min_metrics:
        return fail(f"only {len(names)} metrics; expected >= {min_metrics}")
    missing = [layer for layer in REQUIRED_LAYERS
               if not any(name.startswith(layer) for name in names)]
    if missing:
        return fail(f"no metrics from layer(s): {', '.join(missing)}")

    print(f"check_telemetry_schema: OK ({len(names)} metrics, "
          f"all of {', '.join(layer.rstrip('.') for layer in REQUIRED_LAYERS)}"
          " covered)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(prog="check_telemetry_schema")
    parser.add_argument("snapshot", help="TelemetrySnapshot JSON file")
    parser.add_argument("--min-metrics", type=int, default=20,
                        help="minimum distinct metric count (default 20)")
    args = parser.parse_args(argv)
    return check(args.snapshot, args.min_metrics)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
