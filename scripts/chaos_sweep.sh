#!/usr/bin/env bash
# Process-level crash/recovery sweep over the broker's write-ahead log.
#
# For every registered crash point on the sell path, this script:
#   1. runs a real `prc_query session --wal` with the point armed in EXIT
#      mode (PRC_CRASH_POINT=<point>:exit) and requires the process to die
#      with the simulated-crash status (42);
#   2. audits the survivor log with `prc_query recover` (conservation +
#      Theorem 4.2 menu re-validation must pass);
#   3. resumes the session against the same log and requires it to finish.
#
# This is the out-of-process complement to tests/chaos_recovery_test.cc:
# the gtest sweep proves the invariants with in-process (throw-mode)
# crashes; this script proves them when the process actually dies with
# buffered state, which is the failure the WAL exists for.
#
# usage: scripts/chaos_sweep.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
PRC_QUERY="$BUILD_DIR/tools/prc_query"
CRASH_EXIT=42  # crashpoints::Registry::kExitStatus

if [ ! -x "$PRC_QUERY" ]; then
  echo "error: $PRC_QUERY not found; build first" >&2
  exit 1
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT
CSV="$WORK_DIR/chaos.csv"
RECORDS=400
NODES=8

"$PRC_QUERY" generate --out "$CSV" --records "$RECORDS" --seed 7 \
  > /dev/null

SESSION_ARGS=(session --csv "$CSV" --index ozone --lower 60 --upper 110
              --sales 3 --budget 50 --nodes "$NODES"
              --checkpoint-interval 1)

# Every sell-path crash point, in execution order (see DESIGN.md,
# "Durability & recovery").  wal.pre_compact_rename fires during recovery
# itself and is covered by the in-process sweep.
POINTS=(
  broker.begin_sale
  wal.pre_intent
  wal.post_intent
  dp.post_mint
  broker.pre_record
  broker.post_record
  wal.post_commit
  wal.pre_checkpoint
  wal.post_checkpoint
)

failures=0
for point in "${POINTS[@]}"; do
  wal="$WORK_DIR/$point.wal"
  rm -f "$wal"

  # 1. Crash mid-session: the armed point must kill the process.
  status=0
  PRC_CRASH_POINT="$point:exit" \
    "$PRC_QUERY" "${SESSION_ARGS[@]}" --wal "$wal" \
    > "$WORK_DIR/$point.crash.log" 2>&1 || status=$?
  if [ "$status" -ne "$CRASH_EXIT" ]; then
    echo "FAIL $point: expected simulated-crash exit $CRASH_EXIT," \
         "got $status" >&2
    failures=$((failures + 1))
    continue
  fi

  # 2. The survivor log must audit clean: budget conservation and the
  #    arbitrage-free menu are preconditions for reopening the market.
  if ! "$PRC_QUERY" recover --wal "$wal" --records "$RECORDS" \
       --nodes "$NODES" \
       > "$WORK_DIR/$point.recover.log" 2>&1; then
    echo "FAIL $point: recovery audit failed" >&2
    sed 's/^/  /' "$WORK_DIR/$point.recover.log" >&2
    failures=$((failures + 1))
    continue
  fi

  # 3. A resumed session over the recovered log must complete (recovery
  #    charges orphans against the same --budget cap, so refused sales are
  #    acceptable; dying again is not).
  if ! "$PRC_QUERY" "${SESSION_ARGS[@]}" --wal "$wal" \
       > "$WORK_DIR/$point.resume.log" 2>&1; then
    echo "FAIL $point: resumed session did not complete" >&2
    sed 's/^/  /' "$WORK_DIR/$point.resume.log" >&2
    failures=$((failures + 1))
    continue
  fi

  orphans="$(grep -o 'orphaned_intents [0-9]*' \
             "$WORK_DIR/$point.recover.log" | cut -d' ' -f2)"
  echo "OK $point (orphaned_intents ${orphans:-0})"
done

if [ "$failures" -ne 0 ]; then
  echo "chaos_sweep: $failures crash point(s) FAILED" >&2
  exit 1
fi
echo "chaos_sweep: all ${#POINTS[@]} crash points recovered clean"
