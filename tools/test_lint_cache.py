#!/usr/bin/env python3
"""Unit test for the prc_lint summary cache (ctest: prc_lint_cache).

Proves the three properties the whole-program pass depends on:
  1. a warm run serves unchanged files from the cache (hit, no re-parse),
  2. editing a file's CONTENT invalidates exactly that entry and the new
     analysis reflects the edit (stale results are never served),
  3. a changed engine fingerprint (any prc_lint_lib module edited) drops
     the whole cache, so rule changes always re-analyze everything.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from prc_lint_lib.cache import SummaryCache  # noqa: E402
from prc_lint_lib.engine import analyze_paths  # noqa: E402

FIRES = "void cache_probe() { assert(1 == 1); }\n"   # no-bare-assert
CLEAN = "void cache_probe() { int checked = 0; }\n"

# ABBA through one call hop: exercises the CONCURRENCY summary fields
# (lock_events + calls) across a cache round-trip — if lock events did
# not survive serialization, the warm run would go silent.
DEADLOCK = """#include <mutex>
class OrderProbe {
 public:
  void forward() {
    std::lock_guard<std::mutex> lock(a_mutex_);
    take_b();
  }
  void backward() {
    std::lock_guard<std::mutex> lock(b_mutex_);
    take_a();
  }
 private:
  void take_a() { std::lock_guard<std::mutex> lock(a_mutex_); }
  void take_b() { std::lock_guard<std::mutex> lock(b_mutex_); }
  std::mutex a_mutex_;
  std::mutex b_mutex_;
};
"""
# Same shape, both paths a-then-b: the cycle (and the finding) is gone.
ORDERED = DEADLOCK.replace(
    "std::lock_guard<std::mutex> lock(b_mutex_);\n    take_a();",
    "std::lock_guard<std::mutex> lock(a_mutex_);\n    take_b();")


def fail(message):
    print(f"lint_cache_test: FAIL — {message}")
    return 1


def main():
    with tempfile.TemporaryDirectory() as tmp:
        src = os.path.join(tmp, "probe.cc")
        cache_path = os.path.join(tmp, "cache.json")

        with open(src, "w", encoding="utf-8") as handle:
            handle.write(FIRES)
        cold = analyze_paths([src], cache_path=cache_path)
        if cold.cache_misses != 1 or cold.cache_hits != 0:
            return fail(f"cold run expected 1 miss, got "
                        f"{cold.cache_hits} hit/{cold.cache_misses} miss")
        cold_rules = sorted(f.rule for f in cold.visible)
        if "no-bare-assert" not in cold_rules:
            return fail(f"probe finding missing on cold run: {cold_rules}")

        warm = analyze_paths([src], cache_path=cache_path)
        if warm.cache_hits != 1 or warm.cache_misses != 0:
            return fail(f"warm run expected 1 hit, got "
                        f"{warm.cache_hits} hit/{warm.cache_misses} miss")
        warm_rules = sorted(f.rule for f in warm.visible)
        if warm_rules != cold_rules:
            return fail(f"cached findings differ: {cold_rules} vs "
                        f"{warm_rules}")

        with open(src, "w", encoding="utf-8") as handle:
            handle.write(CLEAN)
        edited = analyze_paths([src], cache_path=cache_path)
        if edited.cache_misses != 1:
            return fail("content edit did not invalidate the cache entry")
        if edited.visible:
            return fail("stale findings served after content edit: "
                        + "; ".join(str(f) for f in edited.visible))

        probe = os.path.join(tmp, "order_probe.cc")
        with open(probe, "w", encoding="utf-8") as handle:
            handle.write(DEADLOCK)
        cold = analyze_paths([probe], cache_path=cache_path)
        if sorted(f.rule for f in cold.visible) != ["lock-order"]:
            return fail("cold run missed the ABBA deadlock: "
                        + "; ".join(str(f) for f in cold.visible))
        warm = analyze_paths([probe], cache_path=cache_path)
        if warm.cache_hits != 1 or warm.cache_misses != 0:
            return fail("deadlock probe was not served from the cache")
        if sorted(f.rule for f in warm.visible) != ["lock-order"]:
            return fail("lock events did not survive the cache round-trip: "
                        + "; ".join(str(f) for f in warm.visible))
        with open(probe, "w", encoding="utf-8") as handle:
            handle.write(ORDERED)
        fixed = analyze_paths([probe], cache_path=cache_path)
        if fixed.cache_misses != 1:
            return fail("lock-order edit did not invalidate the cache entry")
        if fixed.visible:
            return fail("stale lock-order finding after consistent-order "
                        "edit: " + "; ".join(str(f) for f in fixed.visible))

        reopened = SummaryCache(cache_path, "some-other-engine-fingerprint")
        if reopened.entries:
            return fail("engine fingerprint change did not drop the cache")

    print("lint_cache_test: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
