// prc_query: command-line front end to the library.
//
//   prc_query generate --out data.csv [--records N] [--seed S]
//       Write a synthetic CityPulse-like dataset to CSV.
//
//   prc_query count --csv data.csv --index ozone --lower 60 --upper 110
//             [--alpha 0.05] [--delta 0.8] [--nodes 8] [--seed S] [--exact]
//             [--frame-loss 0.3] [--max-attempts 3]
//       Answer a range-counting query privately (default) or exactly
//       (--exact, for ground truth) over a CSV dataset.  --frame-loss and
//       --max-attempts simulate a lossy channel with a bounded retry
//       budget; the output then reports the achieved coverage.
//
//   prc_query quote --alpha 0.05 --delta 0.8 [--records N] [--nodes K]
//             [--base-price 100] [--exponent 1]
//       Print the Theorem 4.2 price and contract variance without touching
//       any data.
//
//   prc_query quantile --csv data.csv --index ozone --q 0.5
//             [--p 0.1] [--nodes 8] [--seed S]
//             [--frame-loss 0.3] [--max-attempts 3]
//       Estimate a quantile from one round of rank samples (and print the
//       exact value for comparison).  Warns when the bounded retry budget
//       left the round partial.
//
//   prc_query session --csv data.csv --index ozone --lower 60 --upper 110
//             [--sales 3] [--alpha 0.05] [--delta 0.8] [--nodes 8]
//             [--budget 5] [--base-price 100] [--seed S]
//             [--frame-loss 0.3] [--max-attempts 3]
//             [--wal ledger.wal] [--checkpoint-interval 64] [--wal-fsync]
//       Run a full market session — collection rounds, private answers,
//       Theorem 4.2 pricing, and ledgered sales — so one invocation
//       exercises every layer of the pipeline.  With --wal, every sale is
//       write-ahead logged; pointing --wal at a log left by a crashed
//       session recovers it (replay + re-audit) before selling.
//
//   prc_query recover --wal ledger.wal [--records N] [--nodes K]
//             [--base-price 100] [--compact]
//       Audit-and-report recovery of a write-ahead log without selling
//       anything: replay the log into a fresh ledger, print the recovered
//       totals and the orphan charge, re-check budget conservation, and
//       (when --records/--nodes describe the original deployment)
//       re-validate the Theorem 4.2 menu.  --compact additionally folds
//       the log into a single checkpoint.  Exits 1 if any audit fails.
//
// Every data-touching subcommand accepts:
//   --telemetry path.json     write a TelemetrySnapshot (JSON) on exit
//   --telemetry-csv path.csv  write the same snapshot as CSV
//   --telemetry-prom path     write the snapshot in Prometheus exposition
//                             format 0.0.4 (scrape-file style)
//   --trace                   print a flamegraph-style span dump to stderr
//   --trace-json path.json    write the span buffer as Chrome trace_event
//                             JSON (loadable in Perfetto / chrome://tracing)
//   --threads N               worker threads for the parallel sections
//                             (default: PRC_THREADS env or 1; answers are
//                             bit-identical for every value)
//
// `session` additionally accepts the live-observability options:
//   --metrics-port P          serve GET /metrics (Prometheus exposition)
//                             and /healthz from a background thread; 0
//                             binds an ephemeral port, printed as
//                             "metrics_port N"
//   --metrics-linger-ms MS    keep the process (and the /metrics endpoint)
//                             alive MS milliseconds after the session so
//                             an external scraper can collect the final
//                             state
//   --audit-log path.jsonl    write the broker's privacy-budget audit
//                             timeline (quote/reserve/intent/mint/commit/
//                             refusal/recovery/checkpoint events) as JSONL
//                             and verify Sigma(mint epsilon') +
//                             Sigma(recovery epsilon') == ledger total
// and `recover` accepts:
//   --audit-json path.jsonl   export the replayed WAL as an audit timeline
//                             and reconcile it against the recovered ledger
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "common/args.h"
#include "common/metrics_http.h"
#include "common/parallel.h"
#include "common/prometheus.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "data/citypulse.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "dp/private_counting.h"
#include "estimator/quantile.h"
#include "iot/network.h"
#include "market/audit_log.h"
#include "market/broker.h"
#include "market/wal.h"
#include "pricing/arbitrage.h"
#include "pricing/pricing.h"
#include "pricing/variance_model.h"
#include "query/range_query.h"

namespace {

using namespace prc;

[[noreturn]] void die(const std::string& message, const ArgParser& parser) {
  std::cerr << "error: " << message << "\n\n" << parser.help();
  std::exit(2);
}

std::string require(const ArgParser& parser, const std::string& key) {
  const auto value = parser.get(key);
  if (!value) die("missing required --" + key, parser);
  return *value;
}

double required_double(const ArgParser& parser, const std::string& key) {
  const std::string text = require(parser, key);
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    die("--" + key + " expects a number, got '" + text + "'", parser);
  }
}

std::optional<data::AirQualityIndex> index_by_name(const std::string& name) {
  for (auto index : data::kAllAirQualityIndexes) {
    if (data::index_name(index) == name) return index;
  }
  return std::nullopt;
}

ArgParser& add_telemetry_options(ArgParser& parser) {
  return parser
      .option("telemetry", "write a telemetry snapshot (JSON) to this path")
      .option("telemetry-csv", "write a telemetry snapshot (CSV) to this path")
      .option("telemetry-prom",
              "write a telemetry snapshot (Prometheus exposition 0.0.4) to "
              "this path")
      .flag("trace", "print a flamegraph-style span dump to stderr")
      .option("trace-json",
              "write the span buffer as Chrome trace_event JSON "
              "(Perfetto-loadable) to this path")
      .option("threads",
              "worker threads for parallel sections (default: PRC_THREADS "
              "env or 1)");
}

/// Applies --threads to the process-wide pool (no-op when absent, so the
/// PRC_THREADS default stands).
void apply_thread_option(const ArgParser& parser) {
  if (const auto threads = parser.get_uint("threads", 0); threads > 0) {
    parallel::set_thread_count(static_cast<std::size_t>(threads));
  }
}

/// Writes the process-wide metrics snapshot / span dump as requested by
/// --telemetry / --telemetry-csv / --trace.  Returns false (and reports on
/// stderr) when an output file cannot be written.
bool export_telemetry(const ArgParser& parser) {
  bool ok = true;
  // Fold tracer-ring statistics in first so every export format carries
  // trace.spans_dropped and silent span eviction is visible.
  trace::publish_telemetry();
  const auto snapshot = telemetry::Telemetry::registry().snapshot();
  if (const auto path = parser.get("telemetry")) {
    std::ofstream out(*path);
    out << snapshot.to_json() << "\n";
    if (!out) {
      std::cerr << "error: cannot write telemetry JSON to " << *path << "\n";
      ok = false;
    }
  }
  if (const auto path = parser.get("telemetry-csv")) {
    std::ofstream out(*path);
    out << snapshot.to_csv();
    if (!out) {
      std::cerr << "error: cannot write telemetry CSV to " << *path << "\n";
      ok = false;
    }
  }
  if (const auto path = parser.get("telemetry-prom")) {
    std::ofstream out(*path);
    out << telemetry::prometheus::render(snapshot);
    if (!out) {
      std::cerr << "error: cannot write telemetry exposition to " << *path
                << "\n";
      ok = false;
    }
  }
  if (parser.has("trace")) {
    std::cerr << trace::Tracer::instance().flame_text();
  }
  if (const auto path = parser.get("trace-json")) {
    std::ofstream out(*path);
    out << trace::Tracer::instance().to_chrome_json();
    if (!out) {
      std::cerr << "error: cannot write Chrome trace JSON to " << *path
                << "\n";
      ok = false;
    }
  }
  return ok;
}

data::AirQualityIndex require_index(const ArgParser& parser) {
  const std::string name = require(parser, "index");
  const auto index = index_by_name(name);
  if (!index) {
    std::string known;
    for (auto i : data::kAllAirQualityIndexes) {
      known += std::string(data::index_name(i)) + " ";
    }
    die("unknown index '" + name + "' (known: " + known + ")", parser);
  }
  return *index;
}

int cmd_generate(int argc, char** argv) {
  ArgParser parser("prc_query generate", "write a synthetic dataset to CSV");
  parser.option("out", "output CSV path (required)")
      .option("records", "record count (default 17568)")
      .option("seed", "generator seed (default 20140801)");
  if (!parser.parse(argc, argv)) return 0;
  data::CityPulseConfig config;
  config.record_count =
      static_cast<std::size_t>(parser.get_uint("records", 17568));
  config.seed = parser.get_uint("seed", 20140801);
  const auto records = data::CityPulseGenerator(config).generate();
  data::write_records_csv(records, require(parser, "out"));
  std::cout << "wrote " << records.size() << " records to "
            << require(parser, "out") << "\n";
  return 0;
}

int cmd_count(int argc, char** argv) {
  ArgParser parser("prc_query count",
                   "answer a range count over a CSV dataset");
  parser.option("csv", "dataset CSV (required)")
      .option("index", "air-quality index name (required)")
      .option("lower", "range lower bound (required)")
      .option("upper", "range upper bound (required)")
      .option("alpha", "contract error bound (default 0.05)")
      .option("delta", "contract confidence (default 0.8)")
      .option("nodes", "simulated node count (default 8)")
      .option("seed", "simulation seed (default 1)")
      .option("frame-loss", "i.i.d. frame loss probability (default 0)")
      .option("max-attempts",
              "per-frame transmission budget, 0 = retry forever (default 0)")
      .flag("exact", "print the exact count instead (ground truth)");
  add_telemetry_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  apply_thread_option(parser);

  const query::RangeQuery range{required_double(parser, "lower"),
                                required_double(parser, "upper")};
  range.validate();
  const auto records = data::read_records_csv(require(parser, "csv"));
  const data::Dataset dataset(records);
  const auto& column = dataset.column(require_index(parser));

  if (parser.has("exact")) {
    std::cout << column.exact_range_count(range.lower, range.upper) << "\n";
    return 0;
  }
  const query::AccuracySpec spec{parser.get_double("alpha", 0.05),
                                 parser.get_double("delta", 0.8)};
  spec.validate();
  const auto nodes =
      static_cast<std::size_t>(parser.get_uint("nodes", 8));
  const auto seed = parser.get_uint("seed", 1);

  Rng rng(seed);
  auto node_data = data::partition_values(
      column.values(), nodes, data::PartitionStrategy::kRoundRobin, rng);
  iot::NetworkConfig net_config;
  net_config.seed = seed + 1;
  net_config.frame_loss_probability = parser.get_double("frame-loss", 0.0);
  net_config.max_attempts =
      static_cast<std::size_t>(parser.get_uint("max-attempts", 0));
  iot::FlatNetwork network(std::move(node_data), net_config);
  dp::PrivateRangeCounter counter(network, {}, seed + 2);
  dp::PrivateAnswer answer;
  try {
    // One-shot CLI estimate: there is no ledger or WAL in `count` mode to
    // protect, so the broker barrier does not apply.  `session` mode (the
    // market path) routes every answer through the broker.
    answer = counter.answer(range, spec);  // lint:allow barrier
  } catch (const dp::CoverageError& e) {
    std::cerr << "refused: " << e.what() << "\n"
              << "the lossy channel (coverage " << e.coverage().coverage
              << ", min p_i " << e.coverage().min_probability
              << ") cannot support this contract; widen --alpha or raise "
                 "--max-attempts\n";
    export_telemetry(parser);
    return 1;
  }

  std::cout << "private_count " << answer.value << "\n"
            << "contract " << spec.to_string() << " (error bound "
            << spec.alpha * static_cast<double>(column.size())
            << " with prob >= " << spec.delta << ")\n"
            << "plan " << answer.plan.to_string() << "\n"
            << "uplink_bytes " << network.stats().uplink_bytes << "\n";
  if (net_config.max_attempts != 0 ||
      net_config.frame_loss_probability > 0.0) {
    std::cout << "coverage " << answer.coverage.coverage << " (min p_i "
              << answer.coverage.min_probability << ", dropped_frames "
              << network.stats().dropped_frames << ")\n";
  }
  return export_telemetry(parser) ? 0 : 1;
}

int cmd_quote(int argc, char** argv) {
  ArgParser parser("prc_query quote",
                   "price a contract under Theorem 4.2 pricing");
  parser.option("alpha", "contract error bound (required)")
      .option("delta", "contract confidence (required)")
      .option("records", "dataset size n (default 17568)")
      .option("nodes", "node count k (default 8)")
      .option("base-price", "price of the (0.1, 0.5) reference (default 100)")
      .option("exponent", "power-family exponent q (default 1)");
  add_telemetry_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  apply_thread_option(parser);
  const query::AccuracySpec spec{required_double(parser, "alpha"),
                                 required_double(parser, "delta")};
  spec.validate();
  const auto n = static_cast<std::size_t>(parser.get_uint("records", 17568));
  const auto k = static_cast<std::size_t>(parser.get_uint("nodes", 8));
  const double base = parser.get_double("base-price", 100.0);
  const double exponent = parser.get_double("exponent", 1.0);

  const pricing::VarianceModel model(n, k);
  const pricing::InverseVariancePricing pricing(
      model, query::AccuracySpec{0.1, 0.5}, base, exponent);
  std::cout << "contract " << spec.to_string() << "\n"
            << "contract_variance " << model.contract_variance(spec) << "\n"
            << "price " << pricing.price(spec) << "  (" << pricing.name()
            << ", reference (alpha=0.1, delta=0.5) -> " << base << ")\n";
  if (exponent != 1.0) {
    std::cout << "warning: exponent != 1 is NOT arbitrage-avoiding "
                 "(Theorem 4.2)\n";
  }
  return export_telemetry(parser) ? 0 : 1;
}

int cmd_quantile(int argc, char** argv) {
  ArgParser parser("prc_query quantile",
                   "estimate a quantile from rank samples");
  parser.option("csv", "dataset CSV (required)")
      .option("index", "air-quality index name (required)")
      .option("q", "quantile in [0, 1] (required)")
      .option("p", "sampling probability (default 0.1)")
      .option("nodes", "simulated node count (default 8)")
      .option("seed", "simulation seed (default 1)")
      .option("frame-loss", "i.i.d. frame loss probability (default 0)")
      .option("max-attempts",
              "per-frame transmission budget, 0 = retry forever (default 0)");
  add_telemetry_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  apply_thread_option(parser);
  const double q = required_double(parser, "q");
  const double p = parser.get_double("p", 0.1);
  const auto nodes = static_cast<std::size_t>(parser.get_uint("nodes", 8));
  const auto seed = parser.get_uint("seed", 1);

  const auto records = data::read_records_csv(require(parser, "csv"));
  const data::Dataset dataset(records);
  const auto& column = dataset.column(require_index(parser));

  Rng rng(seed);
  auto node_data = data::partition_values(
      column.values(), nodes, data::PartitionStrategy::kRoundRobin, rng);
  iot::NetworkConfig net_config;
  net_config.seed = seed + 1;
  net_config.frame_loss_probability = parser.get_double("frame-loss", 0.0);
  net_config.max_attempts =
      static_cast<std::size_t>(parser.get_uint("max-attempts", 0));
  iot::FlatNetwork network(std::move(node_data), net_config);
  const auto report = network.ensure_sampling_probability(p);
  const auto views = network.base_station().node_views();
  std::cout << "quantile_estimate "
            << estimator::quantile_estimate(views, p, q, column.size())
            << "\n"
            << "exact_quantile " << column.quantile(q) << "\n"
            << "samples_used "
            << network.base_station().cached_sample_count() << " (p = " << p
            << ")\n";
  if (!report.complete()) {
    std::cout << "warning: partial round (delivered "
              << report.delivered_nodes() << "/" << report.outcomes.size()
              << " nodes, dropped_frames " << report.dropped_frames
              << "); the estimate only covers delivered nodes\n";
  }
  return export_telemetry(parser) ? 0 : 1;
}

int cmd_session(int argc, char** argv) {
  ArgParser parser("prc_query session",
                   "run a full collection -> DP -> pricing -> market session");
  parser.option("csv", "dataset CSV (required)")
      .option("index", "air-quality index name (required)")
      .option("lower", "range lower bound (required)")
      .option("upper", "range upper bound (required)")
      .option("sales", "number of purchases to attempt (default 3)")
      .option("alpha", "contract error bound (default 0.05)")
      .option("delta", "contract confidence (default 0.8)")
      .option("nodes", "simulated node count (default 8)")
      .option("budget", "per-consumer epsilon cap (default 5)")
      .option("base-price", "price of the (0.1, 0.5) reference (default 100)")
      .option("seed", "simulation seed (default 1)")
      .option("frame-loss", "i.i.d. frame loss probability (default 0)")
      .option("max-attempts",
              "per-frame transmission budget, 0 = retry forever (default 0)")
      .option("wal",
              "write-ahead log path; an existing non-empty log is "
              "recovered (replayed + re-audited) before selling")
      .option("checkpoint-interval",
              "commits between WAL checkpoints (default 64)")
      .flag("wal-fsync",
            "fsync every WAL append (survives power loss, one disk "
            "barrier per record; default survives process death only)")
      .option("metrics-port",
              "serve GET /metrics (Prometheus exposition) and /healthz on "
              "this port from a background thread (0 = ephemeral)")
      .option("metrics-linger-ms",
              "keep the /metrics endpoint up this many milliseconds after "
              "the session finishes (default 0)")
      .option("audit-log",
              "write the broker's privacy-budget audit timeline (JSONL) to "
              "this path and reconcile it against the ledger");
  add_telemetry_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  apply_thread_option(parser);

  // Up before the first collection round so a scraper watching the port
  // sees the session's whole life, not just its final state.
  std::unique_ptr<telemetry::MetricsHttpServer> metrics_server;
  if (parser.has("metrics-port")) {
    metrics_server = std::make_unique<telemetry::MetricsHttpServer>(
        static_cast<std::uint16_t>(parser.get_uint("metrics-port", 0)));
    std::cout << "metrics_port " << metrics_server->port() << "\n";
  }

  const query::RangeQuery range{required_double(parser, "lower"),
                                required_double(parser, "upper")};
  range.validate();
  const query::AccuracySpec spec{parser.get_double("alpha", 0.05),
                                 parser.get_double("delta", 0.8)};
  spec.validate();
  const auto nodes = static_cast<std::size_t>(parser.get_uint("nodes", 8));
  const auto sales = static_cast<std::size_t>(parser.get_uint("sales", 3));
  const auto seed = parser.get_uint("seed", 1);

  const auto records = data::read_records_csv(require(parser, "csv"));
  const data::Dataset dataset(records);
  const auto& column = dataset.column(require_index(parser));

  Rng rng(seed);
  auto node_data = data::partition_values(
      column.values(), nodes, data::PartitionStrategy::kRoundRobin, rng);
  iot::NetworkConfig net_config;
  net_config.seed = seed + 1;
  net_config.frame_loss_probability = parser.get_double("frame-loss", 0.0);
  net_config.max_attempts =
      static_cast<std::size_t>(parser.get_uint("max-attempts", 0));
  iot::FlatNetwork network(std::move(node_data), net_config);
  dp::PrivateRangeCounter counter(network, {}, seed + 2);

  const pricing::VarianceModel model(column.size(), nodes);
  auto pricing_fn = std::make_unique<pricing::InverseVariancePricing>(
      model, query::AccuracySpec{0.1, 0.5},
      parser.get_double("base-price", 100.0), 1.0);
  market::BrokerConfig broker_config;
  broker_config.per_consumer_epsilon_cap = parser.get_double("budget", 5.0);
  broker_config.wal_checkpoint_interval =
      static_cast<std::size_t>(parser.get_uint("checkpoint-interval", 64));
  broker_config.wal_fsync = parser.has("wal-fsync");
  market::DataBroker broker(counter, std::move(pricing_fn), broker_config);

  if (parser.has("wal")) {
    const std::string wal_path = require(parser, "wal");
    std::ifstream probe(wal_path, std::ios::binary | std::ios::ate);
    const bool has_history = probe.good() && probe.tellg() > 0;
    if (has_history) {
      const auto stats = broker.recover_and_attach_wal(wal_path, model);
      std::cout << "recovered " << stats.committed_sales
                << " committed sale(s), " << stats.orphaned_intents
                << " orphaned intent(s) charging "
                << stats.orphaned_epsilon << " epsilon";
      if (stats.truncated_bytes > 0) {
        std::cout << " (truncated " << stats.truncated_bytes
                  << " corrupt byte(s))";
      }
      std::cout << "\n";
    } else {
      broker.attach_wal(wal_path);
    }
  }

  std::cout << "quote " << broker.quote(spec) << " for " << spec.to_string()
            << "\n";
  std::size_t completed = 0;
  for (std::size_t i = 0; i < sales; ++i) {
    const std::string consumer = "consumer-" + std::to_string(i);
    try {
      const auto receipt = broker.sell(consumer, range, spec);
      ++completed;
      std::cout << "sale " << receipt.transaction_id << " " << consumer
                << " value " << receipt.value << " price " << receipt.price
                << (receipt.degraded ? " (degraded)" : "") << "\n";
    } catch (const market::BudgetExceededError& e) {
      std::cout << "sale refused (" << consumer << "): " << e.what() << "\n";
    } catch (const market::InsufficientCoverageError& e) {
      std::cout << "sale refused (" << consumer << "): " << e.what() << "\n";
    }
  }
  std::cout << "completed_sales " << completed << "/" << sales << "\n"
            << "revenue " << broker.ledger().total_revenue() << "\n"
            << "epsilon_released " << broker.ledger().total_epsilon() << "\n"
            << "uplink_bytes " << network.stats().uplink_bytes << "\n";
  if (broker.write_ahead_log() != nullptr) {
    std::cout << "wal_records " << broker.write_ahead_log()->records_appended()
              << "\n"
              << "wal_bytes " << broker.write_ahead_log()->bytes_appended()
              << "\n";
  }

  bool audit_ok = true;
  const auto reconciliation =
      broker.audit_log().reconcile(broker.ledger());
  if (parser.has("audit-log")) {
    const std::string audit_path = require(parser, "audit-log");
    std::ofstream out(audit_path);
    out << broker.audit_log().to_jsonl();
    if (!out) {
      std::cerr << "error: cannot write audit log to " << audit_path << "\n";
      audit_ok = false;
    } else {
      std::cout << "audit_events " << broker.audit_log().size() << " -> "
                << audit_path << "\n";
    }
    std::cout << reconciliation.to_string() << "\n";
    audit_ok = audit_ok && reconciliation.consistent;
  } else if (!reconciliation.consistent) {
    // Even without an export the session refuses to end with unbalanced
    // books: a mint the ledger never saw is the bug this timeline exists
    // to catch.
    std::cerr << reconciliation.to_string() << "\n";
    audit_ok = false;
  }

  const bool telemetry_ok = export_telemetry(parser);
  if (const auto linger = parser.get_uint("metrics-linger-ms", 0);
      metrics_server != nullptr && linger > 0) {
    std::cout << "metrics_linger_ms " << linger << std::endl;
    std::this_thread::sleep_for(std::chrono::milliseconds(linger));
  }
  return (telemetry_ok && audit_ok) ? 0 : 1;
}

int cmd_recover(int argc, char** argv) {
  ArgParser parser("prc_query recover",
                   "replay and audit a broker write-ahead log");
  parser.option("wal", "write-ahead log path (required)")
      .option("records",
              "dataset size of the original deployment; with --nodes, "
              "enables the Theorem 4.2 menu re-validation")
      .option("nodes", "node count of the original deployment")
      .option("base-price", "price of the (0.1, 0.5) reference (default 100)")
      .option("audit-json",
              "export the replayed WAL as a privacy-budget audit timeline "
              "(JSONL) and reconcile it against the recovered ledger")
      .flag("compact",
            "fold the recovered state into a single-checkpoint log");
  add_telemetry_options(parser);
  if (!parser.parse(argc, argv)) return 0;

  const std::string path = require(parser, "wal");
  const auto recovery = market::wal::read_wal(path);
  market::Ledger ledger;
  market::wal::apply_recovery(ledger, recovery);

  std::cout << "records_read " << recovery.stats.records_read << "\n"
            << "checkpoints_seen " << recovery.stats.checkpoints_seen << "\n"
            << "committed_sales " << recovery.stats.committed_sales << "\n"
            << "orphaned_intents " << recovery.stats.orphaned_intents << "\n"
            << "orphaned_epsilon " << recovery.stats.orphaned_epsilon << "\n"
            << "valid_bytes " << recovery.stats.valid_bytes << "\n"
            << "truncated_bytes " << recovery.stats.truncated_bytes << "\n"
            << "recovered_revenue " << ledger.total_revenue() << "\n"
            << "recovered_epsilon " << ledger.total_epsilon() << "\n"
            << "next_sequence " << ledger.snapshot().next_sequence << "\n";

  bool audits_pass = true;
  const double discrepancy = ledger.conservation_discrepancy();
  const bool conserved =
      discrepancy <=
      1e-9 * (1.0 + ledger.total_epsilon() + ledger.total_revenue());
  std::cout << "conservation " << (conserved ? "OK" : "VIOLATED")
            << " (discrepancy " << discrepancy << ")\n";
  audits_pass = audits_pass && conserved;

  if (parser.has("audit-json")) {
    const std::string audit_path = require(parser, "audit-json");
    market::AuditLog audit;
    market::append_recovery_events(audit, recovery);
    std::ofstream out(audit_path);
    out << audit.to_jsonl();
    if (!out) {
      std::cerr << "error: cannot write audit timeline to " << audit_path
                << "\n";
      audits_pass = false;
    } else {
      std::cout << "audit_events " << audit.size() << " -> " << audit_path
                << "\n";
    }
    // The timeline must balance against the ledger apply_recovery() just
    // rebuilt: the WAL's story and the ledger's books are two views of the
    // same epsilon.
    const auto reconciliation = audit.reconcile(ledger);
    std::cout << reconciliation.to_string() << "\n";
    audits_pass = audits_pass && reconciliation.consistent;
  }

  if (parser.has("records") && parser.has("nodes")) {
    const pricing::VarianceModel model(
        static_cast<std::size_t>(parser.get_uint("records", 0)),
        static_cast<std::size_t>(parser.get_uint("nodes", 0)));
    const pricing::InverseVariancePricing menu(
        model, query::AccuracySpec{0.1, 0.5},
        parser.get_double("base-price", 100.0), 1.0);
    const auto report = pricing::ArbitrageChecker(model).check(menu);
    std::cout << "arbitrage_menu "
              << (report.arbitrage_avoiding ? "OK" : "VIOLATED") << " ("
              << report.checks_performed << " checks, "
              << report.violations.size() << " violations)\n";
    audits_pass = audits_pass && report.arbitrage_avoiding;
  }

  if (parser.has("compact") && audits_pass) {
    market::wal::WriteAheadLog::compact(path, ledger.snapshot(),
                                        recovery.next_wal_sequence);
    std::cout << "compacted " << path << "\n";
  }
  if (!export_telemetry(parser)) return 1;
  return audits_pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: prc_query "
                 "{generate|count|quote|quantile|session|recover} "
                 "[options]\n       prc_query <command> --help\n";
    return 2;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand parser sees its own options.
  try {
    if (command == "generate") return cmd_generate(argc - 1, argv + 1);
    if (command == "count") return cmd_count(argc - 1, argv + 1);
    if (command == "quote") return cmd_quote(argc - 1, argv + 1);
    if (command == "quantile") return cmd_quantile(argc - 1, argv + 1);
    if (command == "session") return cmd_session(argc - 1, argv + 1);
    if (command == "recover") return cmd_recover(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command '" << command << "'\n";
  return 2;
}
