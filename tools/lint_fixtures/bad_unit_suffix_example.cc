// Deliberately broken unit-suffix fixture for `prc_lint --self-test`.
//
// The basename contains "unit_suffix", so unit-suffix-consistency applies
// (as it does under src/dp/ and src/pricing/): privacy quantities declared
// as bare double parameters or fields must fire.  NOT compiled.

namespace prc_lint_fixture {

// unit-suffix-consistency: both parameters name privacy quantities.
double amplify(double epsilon, double sampling_alpha);

struct BadPlanConfig {
  // unit-suffix-consistency: a field, not a parameter.
  double target_delta = 0.9;
  int grid_points = 512;
};

}  // namespace prc_lint_fixture
