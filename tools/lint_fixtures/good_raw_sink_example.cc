// Correct-usage twin of bad_raw_sink_example.cc: the same shapes, but only
// released/aggregate quantities reach the sinks.  Zero findings expected.
// NOT compiled.

#include "common/telemetry.h"
#include "common/units.h"

namespace prc_lint_fixture {

struct FakeMechanism {
  prc::units::Released<double> perturb(prc::units::Raw<double> v) const;
};

// The raw estimate is perturbed before export: the sink sees only the
// Released value, and the taint dies at the mechanism boundary.
void clean_release_then_export(const FakeMechanism& mechanism,
                               prc::units::Raw<double> sample) {
  const prc::units::Released<double> released = mechanism.perturb(sample);
  const double published = released.value();
  telemetry::histogram("query.released").record(published);
}

// Counts, durations and prices are always exportable.
void clean_aggregate_export(std::size_t query_count, double price) {
  telemetry::counter("market.sales").add(query_count);
  to_json(price);
}

}  // namespace prc_lint_fixture
