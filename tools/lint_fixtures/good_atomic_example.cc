// Correct-usage atomic-discipline fixtures: none of these may fire.
//
// GoodAnnotatedBox documents every primitive: the mutex is referenced by
// PRC_GUARDED_BY annotations, one atomic is itself guarded (belt and
// braces), and the monitoring counter carries an allow-list hatch that
// states its ordering contract.  Its own-module branch/increment on that
// counter is fine — the discipline half only fires OUTSIDE the owning
// module.  NOT compiled.

#include <atomic>
#include <mutex>

#include "common/thread_annotations.h"

namespace prc_lint_fixture {

class GoodAnnotatedBox {
 public:
  void clean_record(long value) {
    std::lock_guard<std::mutex> lock(box_mutex_);
    entries_ = entries_ + 1;
    last_value_ = value;
    // Own-module use of the relaxed counter: allowed, the contract is
    // documented at the declaration.
    samples_seen_++;
  }

  bool clean_is_warm() const {
    // Own-module control flow on the relaxed counter: allowed.
    if (samples_seen_ > 16) {
      return true;
    }
    return false;
  }

 private:
  mutable std::mutex box_mutex_;
  long entries_ PRC_GUARDED_BY(box_mutex_) = 0;
  // Belt and braces: atomic for lock-free readers, still written under
  // the mutex — the annotation documents the writer side.
  std::atomic<long> last_value_ PRC_GUARDED_BY(box_mutex_){0};
  // Monitoring only: monotonic, read for dashboards, never synchronizes.
  std::atomic<long> samples_seen_{0};  // lint:allow atomic
};

}  // namespace prc_lint_fixture
