// Deliberately broken fixture for `prc_lint --self-test`.
//
// Every project rule must fire at least once on this file, and the one
// clean_* function must stay finding-free.  This file is NOT compiled —
// it exists purely so the linter's regexes cannot rot silently.
//
// The filename ends in _codec-style naming via the comment below?  No:
// checked-byte-access keys on "codec" in the basename, so that rule is
// exercised by bad_codec_example.cc next door.

#include <cassert>
#include <cstdlib>
#include <random>

namespace prc_lint_fixture {

// no-raw-random: both the C and C++ flavors.
double unseeded_noise() {
  std::random_device device;
  std::mt19937 engine(device());
  return static_cast<double>(rand()) / static_cast<double>(RAND_MAX);
}

// no-bare-assert: vanishes under NDEBUG, which is the default build here.
double bare_assert_probability(double p) {
  assert(p > 0.0 && p <= 1.0);
  return 1.0 / p;
}

// no-float-eq-budget: accumulated doubles are never exactly equal.
bool budget_exhausted(double epsilon_spent, double epsilon_cap) {
  return epsilon_spent == epsilon_cap;
}

bool price_matches(double price, double quoted_price) {
  return price != quoted_price;
}

// Clean control: tolerance compare plus an explicitly allowed exact
// compare must NOT be flagged.
bool clean_budget_check(double epsilon_spent, double epsilon_cap) {
  if (epsilon_spent == epsilon_cap) return true;  // lint:allow float-eq
  return epsilon_cap - epsilon_spent < 1e-9;
}

}  // namespace prc_lint_fixture
