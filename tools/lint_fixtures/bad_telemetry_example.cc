// Deliberately broken telemetry fixture for `prc_lint --self-test`.
//
// no-raw-samples-in-telemetry must fire on every statement that pipes raw
// sensor data or an unperturbed estimate into the metrics registry, and
// must stay silent on the clean_* function that records only event counts
// and released values.  NOT compiled.

#include <cstddef>

#include "common/telemetry.h"

namespace prc_lint_fixture {

struct FakeAnswer {
  double sampled_estimate = 0.0;
  double value = 0.0;  // the released (perturbed) quantity
};

// no-raw-samples-in-telemetry: the pre-noise estimate leaks through a gauge.
void leak_unperturbed_estimate(const FakeAnswer& answer) {
  prc::telemetry::gauge("dp.last_estimate").set(answer.sampled_estimate);
}

// no-raw-samples-in-telemetry: a wrapped statement still leaks — the
// linter joins lines up to the semicolon before matching.
void leak_exact_count(double exact_count) {
  prc::telemetry::histogram("query.answer")
      .record(exact_count);
}

// Clean control: counts, sizes and the released value are fine.
void clean_telemetry_usage(const FakeAnswer& answer, std::size_t frames) {
  prc::telemetry::counter("iot.frames_delivered")
      .increment(frames);
  prc::telemetry::histogram("dp.released_value").record(answer.value);
}

}  // namespace prc_lint_fixture
