// Correct-usage twin of bad_barrier_bypass_example.cc: the same
// call-chain depth, but every path to the noise draw crosses the
// mint_answer_with_intent barrier, which CUTS dominance propagation.
// Zero findings expected.  NOT compiled.

namespace prc_lint_fixture {

struct BarrierFixtureBroker {
  int mint_answer_with_intent(int consumer, int range, int spec);
  int sell(int consumer, int range, int spec);
};

// Calling the barrier member directly is the sanctioned route: the
// barrier flushes a durable WAL intent before any noise is drawn, so the
// chain above it never "reaches" an unbarriered mint.
int barrier_route_helper(BarrierFixtureBroker& broker, int range, int spec) {
  return broker.mint_answer_with_intent(1, range, spec);
}

int clean_barrier_entry(BarrierFixtureBroker& broker, int range, int spec) {
  return barrier_route_helper(broker, range, spec);
}

// The broker's public sell() wraps the barrier itself.
int clean_market_entry(BarrierFixtureBroker& broker, int range, int spec) {
  return broker.sell(1, range, spec);
}

}  // namespace prc_lint_fixture
