// Deliberately broken WAL-pairing fixture for `prc_lint --self-test`.
//
// wal-intent-commit-pairing: a function that appends a WAL intent must
// have an append_commit/absorb_orphaned reachable from itself or a
// transitive caller.  This harness logs intents that nothing ever
// commits, so recovery would charge every sale as an orphan (permanent
// epsilon over-count).  NOT compiled.

#include <cstdint>

namespace prc_lint_fixture {

struct OrphanFixtureLog {
  void append_intent(std::uint64_t seq, double eps, double price);
  void append_commit(std::uint64_t seq);
};

class OrphanIntentHarness {
 public:
  // wal-intent-commit-pairing: the intent is durable, the commit is
  // nowhere in this call graph.
  void log_sale_intent(std::uint64_t seq) {
    wal_->append_intent(seq, 0.5, 1.0);
  }

  OrphanFixtureLog* wal_ = nullptr;
};

// A caller does not save it: still no commit anywhere above or below.
void bad_intent_without_commit(OrphanIntentHarness& harness) {
  harness.log_sale_intent(7);
}

}  // namespace prc_lint_fixture
