// Deliberately broken lock-discipline fixture for `prc_lint --self-test`.
//
// The field below is PRC_GUARDED_BY(mutex_); touching it in a method that
// neither ends in _locked, takes the lock, nor carries PRC_REQUIRES must
// fire.  NOT compiled.

#include <mutex>

#include "common/thread_annotations.h"

namespace prc_lint_fixture {

class BadCounterBox {
 public:
  // lock-discipline: reads the guarded field with no lock in sight.
  long unguarded_total() const { return total_; }

 private:
  mutable std::mutex mutex_;
  long total_ PRC_GUARDED_BY(mutex_) = 0;
};

class BadHelperCaller {
 public:
  // lock-discipline (interprocedural): the `_locked` suffix is a contract
  // that the caller holds mutex_ — this caller never acquires it.
  void unguarded_refresh() { rebuild_cache_locked(); }

 private:
  void rebuild_cache_locked() { cache_epoch_ = cache_epoch_ + 1; }

  mutable std::mutex mutex_;
  long cache_epoch_ PRC_GUARDED_BY(mutex_) = 0;
};

}  // namespace prc_lint_fixture
