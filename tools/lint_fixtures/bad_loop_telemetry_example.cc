// Deliberately broken hot-loop fixture for `prc_lint --self-test`.
//
// no-telemetry-lookup-in-loop must fire on name-keyed registry lookups
// inside for/while bodies (and on loop header lines), and must stay silent
// on the clean_* function that hoists the lookup into a local static
// reference.  NOT compiled.

#include <cstddef>

#include "common/telemetry.h"

namespace prc_lint_fixture {

// no-telemetry-lookup-in-loop: re-hashes "iot.frames_attempted" and locks
// the registry on every iteration.
void lookup_per_iteration(std::size_t frames) {
  for (std::size_t i = 0; i < frames; ++i) {
    prc::telemetry::counter("iot.frames_attempted").increment();
  }
}

// no-telemetry-lookup-in-loop: while loops and histogram lookups count too.
void lookup_in_while(std::size_t budget) {
  while (budget > 0) {
    prc::telemetry::histogram("iot.backoff_slots").record(1.0);
    --budget;
  }
}

// Clean control: the static reference resolves the name once per process;
// the loop body touches only the (atomic) counter itself.
void clean_hoisted_lookup(std::size_t frames) {
  static prc::telemetry::Counter& attempted =
      prc::telemetry::counter("iot.frames_attempted");
  for (std::size_t i = 0; i < frames; ++i) {
    attempted.increment();
  }
}

}  // namespace prc_lint_fixture
