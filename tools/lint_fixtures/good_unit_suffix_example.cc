// Correct-usage twin of bad_unit_suffix_example.cc: unit-typed parameters
// and fields, plus the ALLOWED bare-double shapes (locals inside function
// bodies, unrelated names).  Zero findings expected.  NOT compiled.

#include "common/units.h"

namespace prc_lint_fixture {

// Parameters carry the phantom unit types.
prc::units::EffectiveEpsilon clean_amplify(prc::units::Epsilon epsilon,
                                           prc::units::Probability p);

struct GoodPlanConfig {
  prc::units::Delta target_delta = 0.9;
  double sensitivity = 1.0;  // not a privacy unit; bare double is fine
};

// Formula locals may unpack to visible unitless doubles inside a body.
inline double clean_formula(prc::units::Alpha alpha_prime, double n) {
  const double alpha_value = alpha_prime.value();
  return alpha_value * n;
}

}  // namespace prc_lint_fixture
