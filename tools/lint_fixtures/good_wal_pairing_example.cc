// Correct-usage twin of bad_wal_pairing_example.cc: the intent-appending
// helper itself never commits (the real broker is shaped exactly like
// this — the barrier appends the intent, sell() commits after it
// returns), but a TRANSITIVE CALLER pairs it with append_commit, which
// satisfies the rule.  Zero findings expected.  NOT compiled.

#include <cstdint>

namespace prc_lint_fixture {

struct SettledFixtureLog {
  void append_intent(std::uint64_t seq, double eps, double price);
  void append_commit(std::uint64_t seq);
};

class SettledIntentHarness {
 public:
  // Appends the intent only — the commit lives in the caller, as in
  // DataBroker::mint_answer_with_intent.
  void record_sale_intent(std::uint64_t seq) {
    wal_->append_intent(seq, 0.5, 1.0);
  }

  // The caller settles: intent durable first, then the commit.
  void settle_sale(std::uint64_t seq) {
    record_sale_intent(seq);
    wal_->append_commit(seq);
  }

  SettledFixtureLog* wal_ = nullptr;
};

}  // namespace prc_lint_fixture
