// Correct-usage twin of bad_stale_suppression_example.cc: this hatch
// SUPPRESSES a real finding (no-float-eq-budget fires on the comparison
// and is silenced), so neither the rule nor the staleness audit may
// complain.  Zero findings expected.  NOT compiled.

namespace prc_lint_fixture {

inline bool suppression_in_use(double epsilon_lhs, double epsilon_rhs) {
  // Exact comparison is the fixture's point: the hatch is consumed.
  return epsilon_lhs == epsilon_rhs;  // lint:allow float-eq
}

}  // namespace prc_lint_fixture
