// Deliberately broken audit-sink fixture for `prc_lint --self-test`.
//
// The privacy-budget audit timeline (market/audit_log.h) is exported as
// JSONL, so AuditLog::append_event is a sink: a pre-noise estimate stored
// in an event field leaks exactly like a raw telemetry record would.
// NOT compiled.

#include "common/units.h"
#include "market/audit_log.h"

namespace prc_lint_fixture {

struct FakeNetwork {
  double rank_counting_estimate(int range) const;
};

prc::market::AuditEvent make_price_event(double price);

// no-raw-to-sink: the un-noised estimate flows through a renamed local
// straight into the audit sink's payload.
void leak_estimate_into_audit(const FakeNetwork& network,
                              prc::market::AuditLog& audit) {
  const double estimate = network.rank_counting_estimate(3);
  const double payload = estimate;
  audit.append_event(make_price_event(payload));
}

// no-raw-to-sink: a units::Raw<...> sample read out with .get() and handed
// to the audit sink directly.
void leak_raw_into_audit(const prc::units::Raw<double>& sample,
                         prc::market::AuditLog& audit) {
  prc::units::Raw<double> held(sample.get());
  const double leaked = held.get();
  audit.append_event(make_price_event(leaked));
}

}  // namespace prc_lint_fixture
