// Correct-usage twin of bad_lock_example.cc: every touch of the guarded
// field goes through one of the sanctioned shapes.  Zero findings
// expected.  NOT compiled.

#include <mutex>

#include "common/thread_annotations.h"

namespace prc_lint_fixture {

class GoodCounterBox {
 public:
  GoodCounterBox() { total_ = 0; }  // constructors run pre-sharing

  long clean_locked_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  void clean_add(long amount) {
    std::scoped_lock lock(mutex_);
    add_locked(amount);
  }

 private:
  // The _locked suffix is the contract: callers hold mutex_.
  void add_locked(long amount) { total_ += amount; }
  long audit() const PRC_REQUIRES(mutex_) { return total_; }

  mutable std::mutex mutex_;
  long total_ PRC_GUARDED_BY(mutex_) = 0;
};

}  // namespace prc_lint_fixture
