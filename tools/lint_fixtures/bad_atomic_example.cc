// Deliberately broken atomic-discipline fixtures for --self-test.
//
// BadUndocumentedBox declares a mutex no annotation ever references and an
// atomic with no documented ordering contract — the adoption half of the
// rule.  BadRelaxedFlags declares the atomic that bad_atomic_flow_example
// branches on and increments from OUTSIDE this module (the discipline
// half; the uses live in the other file on purpose, the rule must connect
// them through the declaration inventory).  NOT compiled.

#include <atomic>
#include <mutex>

#include "common/thread_annotations.h"

namespace prc_lint_fixture {

class BadUndocumentedBox {
 public:
  long total() const { return total_plain_; }

 private:
  // atomic-discipline: nothing says what this mutex protects.
  mutable std::mutex undocumented_mutex_;
  // atomic-discipline: no PRC_GUARDED_BY, no allow-list hatch, no
  // statement of the memory-order contract.
  std::atomic<long> undocumented_hits_{0};
  long total_plain_ = 0;
};

class BadRelaxedFlags {
 public:
  void request_stop() { stop_requested_.store(true); }
  void bump() { ticks_.fetch_add(1); }
  // Out-of-line cross-module uses live in bad_atomic_flow_example.cc.
  void spin_poll();
  void tally_unsafe();

  // atomic-discipline (coverage): intentionally unannotated so the flow
  // fixture's declarations resolve against a real inventory entry.
  std::atomic<bool> stop_requested_{false};
  std::atomic<long> ticks_{0};
};

}  // namespace prc_lint_fixture
