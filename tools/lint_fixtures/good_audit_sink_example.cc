// Correct-usage twin of bad_audit_sink_example.cc: the audit timeline only
// ever records budget arithmetic — epsilon amounts, prices, sequence
// numbers — never estimates.  Zero findings expected.  NOT compiled.

#include "common/units.h"
#include "market/audit_log.h"

namespace prc_lint_fixture {

// Epsilon amounts and prices are budget metadata, always auditable.
void clean_audit_mint(prc::market::AuditLog& audit,
                      prc::units::EffectiveEpsilon epsilon, double price) {
  prc::market::AuditEvent event;
  event.type = prc::market::AuditEventType::kMint;
  event.epsilon = epsilon;
  event.price = price;
  audit.append_event(event);
}

// A released (post-noise) value may inform the detail string's shape
// without its raw precursor ever reaching the sink.
void clean_audit_release(prc::market::AuditLog& audit,
                         prc::units::Released<double> released) {
  prc::market::AuditEvent event;
  event.type = prc::market::AuditEventType::kCommit;
  event.price = released.value();
  audit.append_event(event);
}

}  // namespace prc_lint_fixture
