// Deliberately broken codec fixture for `prc_lint --self-test`.
//
// The basename contains "codec", so checked-byte-access applies: raw
// subscripts must sit in a function that establishes bounds.  NOT compiled.

#include <cstdint>
#include <vector>

namespace prc_lint_fixture {

// checked-byte-access: indexes four bytes with no guard anywhere in the
// enclosing function.
std::uint32_t unchecked_read_u32(const std::vector<std::uint8_t>& in,
                                 std::size_t offset) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(in[offset + i]) << (8 * i);
  }
  return value;
}

// Clean control: the same read with a bounds guard must NOT be flagged.
std::uint32_t clean_read_u32(const std::vector<std::uint8_t>& in,
                             std::size_t offset) {
  if (offset + 4 > in.size()) return 0;
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(in[offset + i]) << (8 * i);
  }
  return value;
}

}  // namespace prc_lint_fixture
