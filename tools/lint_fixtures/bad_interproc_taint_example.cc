// Deliberately broken interprocedural-taint fixture for
// `prc_lint --self-test`.
//
// interproc-raw-taint must catch a pre-noise estimate that is laundered
// through TWO helper calls before reaching an export sink — each function
// is individually clean, so the per-function no-raw-to-sink rule cannot
// see the leak.  NOT compiled.

#include "common/telemetry.h"
#include "common/units.h"

namespace prc_lint_fixture {

struct TaintFixtureNetwork {
  double rank_counting_estimate(int range) const;
};

// Hop 1: the raw estimate leaves the Raw<> wrapper as a plain double.
double taint_leak_helper_inner(const TaintFixtureNetwork& network) {
  prc::units::Raw<double> estimate_buffer(
      network.rank_counting_estimate(10));
  return estimate_buffer.get();
}

// Hop 2: an identity wrapper — still no sink in sight.
double taint_leak_helper_outer(const TaintFixtureNetwork& network) {
  double staged = taint_leak_helper_inner(network);
  return staged;
}

// interproc-raw-taint: the sink statement only mentions a helper CALL, so
// only the whole-program raw-returns fixed point can flag it.
void bad_taint_export(const TaintFixtureNetwork& network) {
  double launder = taint_leak_helper_outer(network);
  telemetry::gauge("fixture.launder").set(launder);
}

// The reverse direction: the SINK is behind a parameter.  This helper
// forwards its argument into telemetry...
void taint_forwarding_sink(double reading) {
  telemetry::gauge("fixture.forwarded").set(reading);
}

// ...so handing it a raw-derived value is a leak at the CALL SITE.
void bad_taint_handoff(const TaintFixtureNetwork& network) {
  double sample = taint_leak_helper_outer(network);
  taint_forwarding_sink(sample);
}

}  // namespace prc_lint_fixture
