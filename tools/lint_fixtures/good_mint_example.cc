// Fixture: no-unbarriered-mint must stay silent on the sanctioned barrier
// helper, on comments/strings, and on non-member uses of the idents.

struct Counter {
  double answer(int range, double spec);
  double perturb(double value);
};

double mint_answer_with_intent(Counter& counter) {
  // The ONE place a mint is legal: the WAL intent barrier wraps the call.
  return counter.answer(3, 0.5);
}

double clean_mentions_only(double answer) {
  // counter.answer(...) in a comment must not fire, nor the string below.
  const char* label = "counter.perturb(x) is described, not called";
  (void)label;
  return answer;  // a local named `answer` is not a mint
}

double clean_free_function_call() {
  // `answer(` without a preceding `.`/`->` is a declaration or free call,
  // not a member mint.
  double (*answer)(int) = nullptr;
  return answer == nullptr ? 0.0 : 1.0;
}
