// Deliberately broken taint fixture for `prc_lint --self-test`.
//
// no-raw-to-sink must track a pre-noise estimate through an intermediate
// local into an export sink — across lines, which the old line-regex
// engine could not see.  NOT compiled.

#include "common/telemetry.h"
#include "common/units.h"

namespace prc_lint_fixture {

struct FakeNetwork {
  double rank_counting_estimate(int range) const;
};

// no-raw-to-sink: `estimate` is tainted by the pre-noise source, then a
// RENAMED copy flows into the telemetry sink two statements later.
void leak_via_intermediate(const FakeNetwork& network) {
  const double estimate = network.rank_counting_estimate(7);
  const double renamed = estimate * 2.0;
  telemetry::histogram("query.estimate").record(renamed);
}

// no-raw-to-sink: a units::Raw<...> local read out with .get() and handed
// to a serialization sink.
void leak_via_raw_get(const prc::units::Raw<double>& sample) {
  prc::units::Raw<double> held(sample.get());
  const double leaked = held.get();
  to_json(leaked);
}

}  // namespace prc_lint_fixture
