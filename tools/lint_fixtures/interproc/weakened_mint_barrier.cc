// Weakened-broker regression fixture (ctest: prc_lint_barrier_dominance).
//
// This file simulates the exact failure mode budget-barrier-dominance
// exists to catch: a broker whose public sell path routes the noise draw
// through a private helper instead of mint_answer_with_intent, so the
// `.answer()` mint sits TWO calls below the entry point with no WAL
// intent flushed first.  The gate runs
//   prc_lint --expect-rule budget-barrier-dominance <this file>
// and fails the build if the rule ever stops firing here.
//
// Lives in a subdirectory so the flat self-test fixture scan skips it
// (it is a single-rule gate, not a bad_*/good_* pair).  NOT compiled.

namespace prc_lint_fixture {

struct WeakenedFixtureCounter {
  int answer(int range, int spec);
};

class WeakenedBroker {
 public:
  // Public entry: looks like the real sell(), but the barrier is gone.
  int sell_without_barrier(int range, int spec) {
    return draw_noise_helper(range, spec);
  }

 private:
  // The mint, one helper deep: crash here and epsilon leaves the ledger
  // without a durable intent (under-count).
  int draw_noise_helper(int range, int spec) {
    return counter_.answer(range, spec);
  }

  WeakenedFixtureCounter counter_;
};

}  // namespace prc_lint_fixture
