// Interprocedural lock-order regression fixture (NOT compiled, NOT part
// of --self-test): the ABBA deadlock is invisible to any per-function
// view because each function acquires only ONE mutex directly — the
// second acquisition happens one call hop down.  The whole-program pass
// must build the acquisition closure through the call graph and report
// the cycle.  Gated by ctest `prc_lint_deadlock_gate`
// (--expect-rule lock-order on this file).

#include <mutex>

#include "common/thread_annotations.h"

namespace prc_lint_fixture {

class HiddenOrderPair {
 public:
  // Thread 1: holds ingest_mutex_, then settle_locked() takes
  // settle_mutex_ one hop down.
  void ingest(long amount) {
    std::lock_guard<std::mutex> lock(ingest_mutex_);
    pending_ += amount;
    settle_pending();
  }

  // Thread 2: holds settle_mutex_, then drain_pending() takes
  // ingest_mutex_ one hop down — the opposite order.  ABBA.
  void settle(long amount) {
    std::lock_guard<std::mutex> lock(settle_mutex_);
    settled_ += amount;
    drain_pending();
  }

 private:
  void settle_pending() {
    std::lock_guard<std::mutex> lock(settle_mutex_);
    settled_ += 1;
  }

  void drain_pending() {
    std::lock_guard<std::mutex> lock(ingest_mutex_);
    pending_ = 0;
  }

  std::mutex ingest_mutex_;
  std::mutex settle_mutex_;
  long pending_ PRC_GUARDED_BY(ingest_mutex_);
  long settled_ PRC_GUARDED_BY(settle_mutex_);
};

}  // namespace prc_lint_fixture
