// Correct-usage twin of bad_interproc_taint_example.cc: helpers return
// RELEASED (post-noise) values, so the same call-chain shapes must stay
// silent.  Zero findings expected.  NOT compiled.

#include "common/telemetry.h"
#include "common/units.h"

namespace prc_lint_fixture {

struct ReleasedFixtureAnswer {
  double released_value;
  double price;
};

// Same two-hop shape as the bad fixture, but the value is post-noise.
double released_mean_helper(const ReleasedFixtureAnswer& answer) {
  return answer.released_value;
}

double released_billing_helper(const ReleasedFixtureAnswer& answer) {
  double staged = released_mean_helper(answer);
  return staged;
}

void clean_released_export(const ReleasedFixtureAnswer& answer) {
  double released = released_billing_helper(answer);
  telemetry::gauge("fixture.released").set(released);
}

// Forwarding a RELEASED value through a param-sinking helper is fine too.
void released_forwarding_sink(double released_reading) {
  telemetry::gauge("fixture.released_fwd").set(released_reading);
}

void clean_released_handoff(const ReleasedFixtureAnswer& answer) {
  double priced = answer.price;
  released_forwarding_sink(priced);
}

}  // namespace prc_lint_fixture
