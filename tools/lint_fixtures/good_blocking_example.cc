// Correct-usage blocking fixtures: none of these may fire.
//
// GoodStagedWriter uses the stage-outside-lock / commit-under-lock shape:
// it snapshots the guarded table under the mutex, RELEASES it, and only
// then touches the disk.  GoodCvWaiter waits on its condition variable
// holding nothing but the cv's own mutex.  GoodSerializedLogger blocks
// under a mutex that guards NO data (pure serialization of an external
// resource) — there are no readers to stall, so the rule stays quiet.
// NOT compiled.

#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/thread_annotations.h"

namespace prc_lint_fixture {

void write_fully(int fd, const void* data, long size);

class GoodStagedWriter {
 public:
  void clean_persist_all(int fd) {
    std::vector<long> snapshot;
    {
      std::lock_guard<std::mutex> lock(table_mutex_);
      snapshot = table_;
    }
    // Lock released: readers proceed while the snapshot hits the disk.
    write_fully(fd, snapshot.data(), static_cast<long>(snapshot.size()));
    fsync(fd);
  }

 private:
  std::mutex table_mutex_;
  std::vector<long> table_ PRC_GUARDED_BY(table_mutex_);
};

class GoodCvWaiter {
 public:
  void clean_wait_for_drain() {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] { return drained_; });
  }

 private:
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  bool drained_ PRC_GUARDED_BY(drain_mutex_) = false;
};

class GoodSerializedLogger {
 public:
  // sink_mutex_ guards no fields — it only serializes writes to the fd —
  // so no reader of guarded data can queue behind the I/O.
  void clean_append_line(int fd, const void* line, long size) {
    std::lock_guard<std::mutex> lock(sink_mutex_);
    write_fully(fd, line, size);
  }

 private:
  std::mutex sink_mutex_;
};

}  // namespace prc_lint_fixture
