// Fixture: no-unbarriered-mint must fire on member .answer()/.perturb()
// calls outside mint_answer_with_intent in market/mint files.

struct Counter {
  double answer(int range, double spec);
  double perturb(double value);
};

double bad_direct_mint(Counter& counter) {
  // Minting with no durable intent: a crash right after this call would
  // under-count the released budget.
  return counter.answer(3, 0.5);
}

double bad_pointer_mint(Counter* counter) {
  return counter->perturb(41.0);
}

double clean_named_barrier_helper(Counter& counter) {
  // The allow hatch must silence the rule.
  return counter.answer(3, 0.5);  // lint:allow mint — fixture escape check
}
