// Deliberately broken barrier-dominance fixture for
// `prc_lint --self-test`.
//
// budget-barrier-dominance must prove every path to the noise draw
// crosses mint_answer_with_intent.  Here the draw is buried TWO helper
// calls deep, so no single function both calls `.answer()` and is a
// public entry point — only the whole-program reachability pass can see
// that `bad_bypass_entry` mints without the WAL intent barrier.
// NOT compiled.

namespace prc_lint_fixture {

struct BypassFixtureCounter {
  int answer(int range, int spec);
};

// Hop 2: the actual mint — a member .answer() call with no barrier.
int bypass_inner_helper(BypassFixtureCounter& counter, int range, int spec) {
  return counter.answer(range, spec);
}

// Hop 1: an innocent-looking wrapper.
int bypass_outer_helper(BypassFixtureCounter& counter, int range, int spec) {
  return bypass_inner_helper(counter, range, spec);
}

// budget-barrier-dominance: reaches perturb through the chain above.
int bad_bypass_entry(BypassFixtureCounter& counter, int range, int spec) {
  return bypass_outer_helper(counter, range, spec);
}

}  // namespace prc_lint_fixture
