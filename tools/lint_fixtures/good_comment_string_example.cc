// Comment/string false-positive regression fixture for `prc_lint
// --self-test`.  Every line below MENTIONS a rule trigger inside a comment
// or a string literal; the token engine must produce ZERO findings here.
// (The old regex engine special-cased `^\s*//` only, so trailing comments
// and string literals could still fire.)  NOT compiled.

namespace prc_lint_fixture {

// std::mt19937 engine(std::random_device{}()); -- only a comment.
// assert(total == 0); and rand() likewise.
/* block comment mentioning srand(7) and epsilon == 0.5 too */

const char* clean_doc_strings() {
  const char* a = "call assert(x) or rand() at your peril";
  const char* b = "epsilon == 0.5 && delta != 0.9";
  const char* c = "telemetry::counter(\"x\").add(sampled_estimate)";
  const char* d = "std::random_device inside a string";
  return a && b && c && d ? a : b;  // trailing: srand(1); assert(0);
}

double clean_trailing_comment(double revenue) {
  double total = revenue;  // if (total == revenue) assert(rand());
  return total;            /* price == budget in a trailing block */
}

}  // namespace prc_lint_fixture
