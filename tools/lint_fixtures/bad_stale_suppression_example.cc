// Deliberately broken suppression fixture for `prc_lint --self-test`.
//
// stale-suppression: an escape hatch that no longer suppresses anything
// is itself an error, so hatches cannot outlive the code they excused.
// NOT compiled.

namespace prc_lint_fixture {

inline int stale_hatch_example() {
  // stale-suppression: float-eq is a real tag, but nothing fires on this
  // line, so the hatch is dead weight.
  int widget_count = 3;  // lint:allow float-eq
  // stale-suppression: not a tag any rule has ever used.
  return widget_count;  // lint:allow not-a-real-tag
}

}  // namespace prc_lint_fixture
