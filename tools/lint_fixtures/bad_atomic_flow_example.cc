// Deliberately broken atomic-discipline (discipline half) fixtures.
//
// The atomics these methods touch are DECLARED in bad_atomic_example.cc —
// a different module.  Branching on a relaxed atomic, or ++'ing it,
// outside its owning module turns monitoring state into unsynchronized
// logic, which is exactly what the rule must connect interprocedurally
// through the declaration inventory.  NOT compiled.

#include "bad_atomic_example_decls.h"

namespace prc_lint_fixture {

// atomic-discipline: control-flow decision on another module's relaxed
// atomic (no happens-before edge justifies the branch here).
void BadRelaxedFlags::spin_poll() {
  while (!stop_requested_) {
    bump();
  }
}

// atomic-discipline: non-CAS read-modify-write on another module's
// atomic (the owner's fetch_add API is the documented path).
void BadRelaxedFlags::tally_unsafe() {
  ticks_++;
}

}  // namespace prc_lint_fixture
