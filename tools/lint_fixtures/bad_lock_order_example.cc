// Deliberately broken lock-order fixtures for `prc_lint --self-test`.
//
// BadOrderPair takes its two mutexes in OPPOSITE orders from two methods:
// thread 1 in transfer_in holds order_a_mutex_ and wants order_b_mutex_,
// thread 2 in transfer_out holds order_b_mutex_ and wants order_a_mutex_ —
// the classic ABBA deadlock.  BadReacquire re-locks a mutex whose guard
// scope is still open (std::mutex self-deadlocks on re-acquisition).
// NOT compiled.

#include <mutex>

#include "common/thread_annotations.h"

namespace prc_lint_fixture {

class BadOrderPair {
 public:
  // lock-order: acquires order_b_mutex_ while holding order_a_mutex_.
  void transfer_in(long amount) {
    std::lock_guard<std::mutex> lock_a(order_a_mutex_);
    std::lock_guard<std::mutex> lock_b(order_b_mutex_);
    inbox_ += amount;
    outbox_ -= amount;
  }

  // lock-order: the same pair in the opposite order — the cycle edge.
  void transfer_out(long amount) {
    std::lock_guard<std::mutex> lock_b(order_b_mutex_);
    std::lock_guard<std::mutex> lock_a(order_a_mutex_);
    outbox_ += amount;
    inbox_ -= amount;
  }

 private:
  std::mutex order_a_mutex_;
  std::mutex order_b_mutex_;
  long inbox_ PRC_GUARDED_BY(order_a_mutex_) = 0;
  long outbox_ PRC_GUARDED_BY(order_b_mutex_) = 0;
};

class BadReacquire {
 public:
  // lock-order (self-edge): the second guard re-locks reacquire_mutex_
  // while the first is still in scope.
  long double_count() {
    std::lock_guard<std::mutex> outer(reacquire_mutex_);
    std::lock_guard<std::mutex> inner(reacquire_mutex_);
    return hits_;
  }

 private:
  std::mutex reacquire_mutex_;
  long hits_ PRC_GUARDED_BY(reacquire_mutex_) = 0;
};

}  // namespace prc_lint_fixture
