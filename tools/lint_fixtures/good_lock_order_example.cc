// Correct-usage lock-order fixtures: none of these may fire.
//
// GoodOrderPair always nests its two mutexes in the same global order, so
// the lock graph has one edge and no cycle.  GoodScopedPair takes both at
// once with std::scoped_lock, which acquires deadlock-free (no internal
// ordering edge).  GoodSequential takes the same pair in OPPOSITE orders
// but in DISJOINT scopes — never holding both — which a scope-blind
// analysis would misreport as a cycle.  NOT compiled.

#include <mutex>

#include "common/thread_annotations.h"

namespace prc_lint_fixture {

class GoodOrderPair {
 public:
  void clean_transfer_in(long amount) {
    std::lock_guard<std::mutex> lock_a(first_mutex_);
    std::lock_guard<std::mutex> lock_b(second_mutex_);
    staged_ += amount;
    settled_ -= amount;
  }

  void clean_transfer_out(long amount) {
    std::lock_guard<std::mutex> lock_a(first_mutex_);
    std::lock_guard<std::mutex> lock_b(second_mutex_);
    settled_ += amount;
    staged_ -= amount;
  }

 private:
  std::mutex first_mutex_;
  std::mutex second_mutex_;
  long staged_ PRC_GUARDED_BY(first_mutex_) = 0;
  long settled_ PRC_GUARDED_BY(second_mutex_) = 0;
};

class GoodScopedPair {
 public:
  // Both sides of an adopt()-style merge, atomically: scoped_lock's
  // deadlock-avoidance algorithm makes the pair order-free.
  void clean_adopt(GoodScopedPair& other) {
    std::scoped_lock lock(merge_mutex_, other.merge_mutex_);
    merged_ += other.merged_;
    other.merged_ = 0;
  }

 private:
  std::mutex merge_mutex_;
  long merged_ PRC_GUARDED_BY(merge_mutex_) = 0;
};

class GoodSequential {
 public:
  // Opposite textual order, but the first guard's scope CLOSES before the
  // second opens — both mutexes are never held together, so there is no
  // ordering edge in either direction.
  void clean_copy_then_commit() {
    long snapshot = 0;
    {
      std::lock_guard<std::mutex> lock(source_mutex_);
      snapshot = source_;
    }
    {
      std::lock_guard<std::mutex> lock(target_mutex_);
      target_ = snapshot;
    }
  }

  void clean_reverse_copy() {
    long snapshot = 0;
    {
      std::lock_guard<std::mutex> lock(target_mutex_);
      snapshot = target_;
    }
    {
      std::lock_guard<std::mutex> lock(source_mutex_);
      source_ = snapshot;
    }
  }

 private:
  std::mutex source_mutex_;
  std::mutex target_mutex_;
  long source_ PRC_GUARDED_BY(source_mutex_) = 0;
  long target_ PRC_GUARDED_BY(target_mutex_) = 0;
};

}  // namespace prc_lint_fixture
