// Deliberately broken blocking-under-lock fixtures for --self-test.
//
// BadDurableCache fsyncs while holding the mutex that guards its table
// (every reader queues behind the disk), reaches write_fully through a
// helper one call deep (the interprocedural half), and waits on a
// condition variable while holding a SECOND guard mutex.  NOT compiled.

#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/thread_annotations.h"

namespace prc_lint_fixture {

void write_fully(int fd, const void* data, long size);

class BadDurableCache {
 public:
  // blocking-under-lock (direct): fsync with table_mutex_ held.
  void flush_entry(int fd, long value) {
    std::lock_guard<std::mutex> lock(table_mutex_);
    table_.push_back(value);
    fsync(fd);
  }

  // blocking-under-lock (interprocedural): persist_all -> spill_table ->
  // write_fully, entered with the guard mutex held.
  void persist_all(int fd) {
    std::lock_guard<std::mutex> lock(table_mutex_);
    spill_table(fd);
  }

  // blocking-under-lock (cv): waits on drain_cv_ with ITS lock (fine)
  // while ALSO holding table_mutex_ (every reader stalls until the
  // producer signals).
  void wait_for_drain() {
    std::lock_guard<std::mutex> table_lock(table_mutex_);
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] { return drained_; });
  }

 private:
  void spill_table(int fd) PRC_REQUIRES(table_mutex_) {
    write_fully(fd, table_.data(), static_cast<long>(table_.size()));
  }

  std::mutex table_mutex_;
  std::vector<long> table_ PRC_GUARDED_BY(table_mutex_);
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  bool drained_ PRC_GUARDED_BY(drain_mutex_) = false;
};

}  // namespace prc_lint_fixture
