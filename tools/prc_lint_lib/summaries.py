"""Per-function summaries: the unit of whole-program analysis.

A summary captures everything the interprocedural rules need to know
about one function WITHOUT re-reading its tokens: calls made (the call
graph edges), locks acquired/required, guarded-field uses, WAL
intent/commit appends, mint calls, and a symbolic taint dataflow.

The taint pass runs the same function-local propagation the old
`no-raw-to-sink` rule used, but where the old rule could only say
"tainted or not", the summary keeps SYMBOLIC dependencies: a local fed
from `helper()` depends on `call:helper`, a sink fed from a parameter
depends on `param:x`.  The interprocedural pass later resolves those
symbols against every other function's summary at fixed point — which is
exactly what catches the two-call laundering chain
(`helper() { return raw.get(); }` -> `telemetry::gauge(helper())`) that
a per-function view must miss.

Summaries are plain dicts of plain values, so the content-hash cache can
serialize them as JSON and a warm run never re-tokenizes an unchanged
file.
"""

from .findings import Finding
from .model import statement_ranges
from .rules import RAW_SAMPLE_IDENTS

SINK_IDENTS = {"to_json", "to_csv", "write_csv", "serialize",
               "export_telemetry", "write_row", "append_row",
               # Privacy-budget audit timeline (market/audit_log.h): events
               # are exported as JSONL, so a raw estimate reaching
               # append_event leaks exactly like a telemetry record would.
               "append_event"}

LOCK_ACQUIRE_IDENTS = {"lock_guard", "scoped_lock", "unique_lock",
                       "shared_lock"}
LOCK_SIG_ANNOTATIONS = {"PRC_REQUIRES", "PRC_ACQUIRE",
                        "PRC_NO_THREAD_SAFETY_ANALYSIS"}

#: Call results never recorded as taint dependencies: ubiquitous accessor
#: names whose cross-class collisions would drown the analysis in noise.
#: (`.get()` on a Raw local is special-cased to RAW separately.)
ACCESSOR_STOPLIST = {
    "value", "get", "size", "count", "length", "empty", "c_str", "data",
    "begin", "end", "cbegin", "cend", "front", "back", "at", "find",
    "insert", "erase", "push_back", "emplace_back", "reserve", "resize",
    "clear", "append", "substr", "str", "first", "second", "to_string",
    "min", "max", "abs", "clamp", "move", "swap", "isfinite", "isnan",
    "increment", "add", "set", "record", "observe", "string", "vector",
    "what", "name",
}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "throw", "new", "delete", "decltype", "noexcept", "typeid", "do",
    "else", "case", "default", "break", "continue", "operator",
}

#: The raw "RAW" dependency: a pre-noise estimate reached this value
#: directly (no symbol resolution needed).
RAW = "RAW"

WAL_INTENT_CALLS = {"append_intent"}
WAL_COMMIT_CALLS = {"append_commit", "absorb_orphaned"}


def _looks_like_macro(name):
    return name.isupper()


class FunctionSummary:
    __slots__ = ("name", "qualifier", "type_scope", "path", "line",
                 "params", "calls", "acquires", "requires", "sig_annotated",
                 "guarded_uses", "crash_points", "sink_flows", "arg_flows",
                 "returns_direct_raw", "return_dep_calls",
                 "return_dep_params", "raw_sink_findings")

    def __init__(self, **kw):
        for slot in self.__slots__:
            setattr(self, slot, kw.get(slot))

    @property
    def owner(self):
        return self.qualifier or self.type_scope

    def is_structor(self):
        owner = self.owner
        return owner is not None and self.name in (owner, "~" + owner)

    def is_locked_helper(self):
        return self.name.endswith("_locked")

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


def _parse_params(toks, func):
    """Parameter names from the signature segment (last ident of each
    comma-separated chunk inside the first paren group)."""
    i = func.sig_start
    while i < func.body_start and toks[i].text != "(":
        i += 1
    if i >= func.body_start:
        return []
    params = []
    depth = 0
    chunk = []
    for j in range(i, func.body_start):
        t = toks[j]
        if t.text == "(":
            depth += 1
            continue
        if t.text == ")":
            depth -= 1
            if depth == 0:
                if chunk:
                    params.append(chunk)
                break
            continue
        if t.text == "," and depth == 1:
            params.append(chunk)
            chunk = []
        elif depth >= 1:
            chunk.append(t)
    names = []
    for chunk in params:
        idents = [t.text for t in chunk if t.kind == "ident"]
        # `= default_value` trailers: the name precedes the first `=`.
        for k, t in enumerate(chunk):
            if t.text == "=":
                idents = [x.text for x in chunk[:k] if x.kind == "ident"]
                break
        if idents and idents[-1] not in ("void", "const"):
            names.append(idents[-1])
    return names


def _expr_sources(toks, start, end, raw_vars, tainted, params):
    """Symbolic source set of an expression range: RAW for direct pre-noise
    sources, call:<name> for unresolved call results, param:<name> for
    function parameters (resolved later against the caller's arguments)."""
    sources = set()
    for j in range(start, end):
        t = toks[j]
        if t.kind != "ident":
            continue
        nxt = toks[j + 1].text if j + 1 < len(toks) else ""
        prev = toks[j - 1].text if j > 0 else ""
        if t.text in RAW_SAMPLE_IDENTS and nxt in ("(", ".", ";", ")", ","):
            sources.add(RAW)
            continue
        if t.text.startswith(("raw_", "exact_")):
            sources.add(RAW)
            continue
        if t.text == "get" and nxt == "(" and j >= 2 \
                and toks[j - 1].text == "." \
                and toks[j - 2].text in raw_vars:
            sources.add(RAW)
            continue
        if t.text in tainted:
            sources.update(tainted[t.text])
            continue
        if nxt == "(" and t.text not in ACCESSOR_STOPLIST \
                and t.text not in CPP_KEYWORDS \
                and not _looks_like_macro(t.text) \
                and prev != "~":
            sources.add("call:" + t.text)
            continue
        if t.text in params and prev not in (".", "->"):
            sources.add("param:" + t.text)
    return sources


def _is_sink_statement(toks, start, end):
    for j in range(start, end):
        t = toks[j]
        if t.kind != "ident":
            continue
        if t.text in SINK_IDENTS:
            return True
        if t.text == "telemetry" and j + 1 < end and toks[j + 1].text == "::":
            return True
        if t.text == "record" and j >= 2 and toks[j - 1].text in (".", "->") \
                and "ledger" in toks[j - 2].text:
            return True
    return False


def _assignment_split(toks, start, end):
    """(lhs_name, rhs_start) for an assignment or direct-init statement,
    or (None, None)."""
    eq_at = None
    depth = 0
    for j in range(start, end):
        t = toks[j].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif depth == 0 and t in ("=", "+=", "-=", "*=", "/="):
            eq_at = j
            break
    if eq_at is not None:
        if toks[eq_at - 1].kind == "ident":
            return toks[eq_at - 1].text, eq_at + 1, toks[eq_at].text
        return None, None, None
    if end - start >= 3 and toks[end - 1].text == ")" \
            and toks[start].kind == "ident":
        # Direct-init declaration: `double x(expr)` — a TYPE ident must
        # precede the name, so bare call statements `helper(args)` are not
        # mistaken for declarations of a variable named `helper`.
        for j in range(start, end):
            if toks[j].text == "(":
                if j - 1 > start and toks[j - 1].kind == "ident" \
                        and toks[j - 2].kind == "ident":
                    return toks[j - 1].text, j + 1, None
                break
    return None, None, None


def _raw_var_declaration(toks, start, end):
    """Variable name declared as units::Raw<...> in this statement."""
    texts = [toks[j].text for j in range(start, end)]
    if "Raw" not in texts:
        return None
    raw_at = start + texts.index("Raw")
    depth = 0
    for j in range(raw_at + 1, end):
        t = toks[j]
        if t.text == "<":
            depth += 1
        elif t.text == ">":
            depth -= 1
            if depth == 0:
                if j + 1 < end and toks[j + 1].kind == "ident":
                    return toks[j + 1].text
                break
    return None


def _call_argument_range(toks, call_index, end):
    """(args_start, args_end) token range for the call at call_index."""
    if call_index + 1 >= end or toks[call_index + 1].text != "(":
        return None
    depth = 0
    for j in range(call_index + 1, end):
        if toks[j].text == "(":
            depth += 1
        elif toks[j].text == ")":
            depth -= 1
            if depth == 0:
                return (call_index + 2, j)
    return (call_index + 2, end)


def summarize_function(model, func):
    """Builds the FunctionSummary for one function, plus any function-local
    no-raw-to-sink findings (direct RAW reaching a sink)."""
    toks = model.tokens
    params = _parse_params(toks, func)
    param_set = set(params)

    sig = toks[func.sig_start:func.body_start]
    sig_annotated = any(t.kind == "ident" and t.text in LOCK_SIG_ANNOTATIONS
                        for t in sig)
    requires = []
    for k, t in enumerate(sig):
        if t.kind == "ident" and t.text in ("PRC_REQUIRES", "PRC_ACQUIRE"):
            for u in sig[k + 1:k + 6]:
                if u.kind == "ident":
                    requires.append(u.text)
                    break

    calls = []
    acquires = []
    guarded_uses = []
    crash_points = []
    for i in range(func.body_start + 1, func.body_end):
        t = toks[i]
        if t.kind != "ident":
            continue
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        prev = toks[i - 1].text if i > 0 else ""
        prev2 = toks[i - 2].text if i > 1 else ""
        if t.text == "PRC_CRASH_POINT" and nxt == "(" \
                and i + 2 < len(toks) and toks[i + 2].kind == "string":
            crash_points.append(toks[i + 2].text.strip('"'))
            continue
        if nxt == "(" and t.text not in CPP_KEYWORDS \
                and not _looks_like_macro(t.text) and prev != "~":
            member = prev in (".", "->")
            recv = prev2 if member and i > 1 and \
                toks[i - 2].kind == "ident" else None
            calls.append({"name": t.text, "line": t.line, "order": i,
                          "member": member, "recv": recv})
        if t.text in LOCK_ACQUIRE_IDENTS:
            window = [x.text for x in toks[i:i + 12] if x.kind == "ident"]
            acquires.append({"names": window, "order": i})
        elif nxt == "." and i + 2 < len(toks) \
                and toks[i + 2].text == "lock":
            acquires.append({"names": [t.text], "order": i})
        if t.text.endswith("_") and nxt != "(":
            if prev in (".", "->") and prev2 != "this":
                continue  # member of some other object
            guarded_uses.append({"name": t.text, "line": t.line, "order": i})

    # --- symbolic taint dataflow --------------------------------------
    raw_vars = set()
    tainted = {}        # local name -> set of source symbols
    sink_flows = []     # unresolved flows into sinks
    arg_flows = []      # tainted data passed as call arguments
    returns_direct_raw = False
    return_dep_calls = set()
    return_dep_params = set()
    raw_sink_findings = []

    for start, end in statement_ranges(toks, func):
        raw_var = _raw_var_declaration(toks, start, end)
        if raw_var:
            raw_vars.add(raw_var)

        if _is_sink_statement(toks, start, end):
            sources = _expr_sources(toks, start, end, raw_vars, tainted,
                                    param_set)
            if RAW in sources:
                raw_sink_findings.append(Finding(
                    "no-raw-to-sink", model.path, toks[start].line,
                    "a pre-noise (raw) estimate flows into an export "
                    "sink; only RELEASED (perturbed) values, counts and "
                    "prices may leave the process.  Perturb first, or "
                    "add `// lint:allow raw-sink` with a justification",
                    function=func.name))
            elif sources:
                sink_flows.append({"line": toks[start].line,
                                   "deps": sorted(sources)})
            continue

        if toks[start].text == "return":
            sources = _expr_sources(toks, start + 1, end, raw_vars, tainted,
                                    param_set)
            if RAW in sources:
                returns_direct_raw = True
            for dep in sources:
                if dep.startswith("call:"):
                    return_dep_calls.add(dep[5:])
                elif dep.startswith("param:"):
                    return_dep_params.add(dep[6:])
            continue

        # Tainted data handed to another function: the callee may sink it.
        for k in range(start, end):
            t = toks[k]
            if t.kind != "ident" or t.text in CPP_KEYWORDS \
                    or t.text in ACCESSOR_STOPLIST \
                    or _looks_like_macro(t.text):
                continue
            arg_range = _call_argument_range(toks, k, end)
            if arg_range is None:
                continue
            sources = _expr_sources(toks, arg_range[0], arg_range[1],
                                    raw_vars, tainted, param_set)
            if sources:
                arg_flows.append({"callee": t.text, "line": t.line,
                                  "deps": sorted(sources)})

        lhs, rhs_start, op = _assignment_split(toks, start, end)
        if lhs and rhs_start is not None:
            sources = _expr_sources(toks, rhs_start, end, raw_vars, tainted,
                                    param_set)
            if sources:
                tainted[lhs] = sources
            elif lhs in tainted and op == "=":
                del tainted[lhs]  # overwritten with clean data

    summary = FunctionSummary(
        name=func.name, qualifier=func.qualifier, type_scope=func.type_scope,
        path=model.path, line=toks[func.sig_start].line
        if func.sig_start < len(toks) else 0,
        params=params, calls=calls, acquires=acquires, requires=requires,
        sig_annotated=sig_annotated, guarded_uses=guarded_uses,
        crash_points=crash_points, sink_flows=sink_flows,
        arg_flows=arg_flows, returns_direct_raw=returns_direct_raw,
        return_dep_calls=sorted(return_dep_calls),
        return_dep_params=sorted(return_dep_params),
        raw_sink_findings=None)
    return summary, raw_sink_findings


def collect_guarded_fields(model):
    """{field_name: mutex_name} from PRC_GUARDED_BY annotations in one
    file (declared in headers, enforced across the matching .h/.cc pair)."""
    fields = {}
    toks = model.tokens
    for i, tok in enumerate(toks):
        if tok.kind != "ident" or tok.text != "PRC_GUARDED_BY":
            continue
        if i + 2 >= len(toks) or toks[i + 1].text != "(":
            continue
        mutex = toks[i + 2].text
        if toks[i - 1].kind != "ident":
            continue
        fields[toks[i - 1].text] = mutex
    return fields


def summarize_file(model):
    """(summaries, guarded_fields, local_findings) for one FileModel."""
    summaries = []
    findings = []
    for func in model.functions:
        summary, raw_findings = summarize_function(model, func)
        summaries.append(summary)
        findings.extend(raw_findings)
    return summaries, collect_guarded_fields(model), findings
