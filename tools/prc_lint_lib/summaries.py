"""Per-function summaries: the unit of whole-program analysis.

A summary captures everything the interprocedural rules need to know
about one function WITHOUT re-reading its tokens: calls made (the call
graph edges), locks acquired/required, guarded-field uses, WAL
intent/commit appends, mint calls, and a symbolic taint dataflow.

The taint pass runs the same function-local propagation the old
`no-raw-to-sink` rule used, but where the old rule could only say
"tainted or not", the summary keeps SYMBOLIC dependencies: a local fed
from `helper()` depends on `call:helper`, a sink fed from a parameter
depends on `param:x`.  The interprocedural pass later resolves those
symbols against every other function's summary at fixed point — which is
exactly what catches the two-call laundering chain
(`helper() { return raw.get(); }` -> `telemetry::gauge(helper())`) that
a per-function view must miss.

Summaries are plain dicts of plain values, so the content-hash cache can
serialize them as JSON and a warm run never re-tokenizes an unchanged
file.
"""

from .findings import Finding
from .model import statement_ranges, stem
from .rules import RAW_SAMPLE_IDENTS

SINK_IDENTS = {"to_json", "to_csv", "write_csv", "serialize",
               "export_telemetry", "write_row", "append_row",
               # Privacy-budget audit timeline (market/audit_log.h): events
               # are exported as JSONL, so a raw estimate reaching
               # append_event leaks exactly like a telemetry record would.
               "append_event"}

LOCK_ACQUIRE_IDENTS = {"lock_guard", "scoped_lock", "unique_lock",
                       "shared_lock"}
LOCK_SIG_ANNOTATIONS = {"PRC_REQUIRES", "PRC_ACQUIRE",
                        "PRC_NO_THREAD_SAFETY_ANALYSIS"}

#: Calls that can block the caller for an unbounded time (disk, sockets,
#: pool fan-out, cv waits).  Reaching one of these while holding a mutex
#: that GUARDS data (PRC_GUARDED_BY) serializes every reader of that data
#: behind the slow operation — the blocking-under-lock rule's subject.
BLOCKING_CALL_IDENTS = {
    # Raw file I/O and the WAL's durable-write helpers.
    "fsync", "fdatasync", "write", "pwrite", "write_fully", "fsync_or_die",
    "flush",
    # The WAL public surface: append_* fsync in kMediaDurable mode, and
    # compact rewrites the whole log.  Holding any OTHER hot mutex across
    # them queues every concurrent sale behind one disk flush.
    "append_intent", "append_commit", "append_checkpoint", "compact",
    # Socket operations (metrics_http's exposition endpoint).
    "accept", "recv", "send", "connect",
    # Pool submission: a parallel region under a lock means every worker
    # the region fans out to is effectively inside the critical section.
    "parallel_for", "parallel_for_each", "parallel_reduce", "submit",
}

#: condition_variable wait entry points, matched as member calls on a
#: receiver whose name contains "cv" (wake_cv_, done_cv_, cv).  The wait's
#: OWN mutex (the lock variable passed as first argument) is exempt — that
#: is how cv waits work — but holding any second guard-mutex across a wait
#: is a classic lost-throughput/deadlock shape.
CV_WAIT_IDENTS = {"wait", "wait_for", "wait_until"}

#: Non-CAS read-modify-write operators.  `counter_++` on another module's
#: relaxed atomic moves contended-update logic outside the owning class,
#: where the memory-ordering contract that makes it safe is invisible.
RMW_OPS = {"++", "--", "+=", "-=", "*=", "/=", "|=", "&=", "^="}

#: Call results never recorded as taint dependencies: ubiquitous accessor
#: names whose cross-class collisions would drown the analysis in noise.
#: (`.get()` on a Raw local is special-cased to RAW separately.)
ACCESSOR_STOPLIST = {
    "value", "get", "size", "count", "length", "empty", "c_str", "data",
    "begin", "end", "cbegin", "cend", "front", "back", "at", "find",
    "insert", "erase", "push_back", "emplace_back", "reserve", "resize",
    "clear", "append", "substr", "str", "first", "second", "to_string",
    "min", "max", "abs", "clamp", "move", "swap", "isfinite", "isnan",
    "increment", "add", "set", "record", "observe", "string", "vector",
    "what", "name",
}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "throw", "new", "delete", "decltype", "noexcept", "typeid", "do",
    "else", "case", "default", "break", "continue", "operator",
}

#: The raw "RAW" dependency: a pre-noise estimate reached this value
#: directly (no symbol resolution needed).
RAW = "RAW"

WAL_INTENT_CALLS = {"append_intent"}
WAL_COMMIT_CALLS = {"append_commit", "absorb_orphaned"}


def _looks_like_macro(name):
    return name.isupper()


class FunctionSummary:
    __slots__ = ("name", "qualifier", "type_scope", "path", "line",
                 "params", "calls", "acquires", "requires", "sig_annotated",
                 "guarded_uses", "crash_points", "sink_flows", "arg_flows",
                 "returns_direct_raw", "return_dep_calls",
                 "return_dep_params", "raw_sink_findings",
                 "lock_events", "blocking_calls", "rmw_uses", "branch_uses")

    def __init__(self, **kw):
        for slot in self.__slots__:
            setattr(self, slot, kw.get(slot))

    @property
    def owner(self):
        return self.qualifier or self.type_scope

    def is_structor(self):
        owner = self.owner
        return owner is not None and self.name in (owner, "~" + owner)

    def is_locked_helper(self):
        return self.name.endswith("_locked")

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


def _parse_params(toks, func):
    """Parameter names from the signature segment (last ident of each
    comma-separated chunk inside the first paren group)."""
    i = func.sig_start
    while i < func.body_start and toks[i].text != "(":
        i += 1
    if i >= func.body_start:
        return []
    params = []
    depth = 0
    chunk = []
    for j in range(i, func.body_start):
        t = toks[j]
        if t.text == "(":
            depth += 1
            continue
        if t.text == ")":
            depth -= 1
            if depth == 0:
                if chunk:
                    params.append(chunk)
                break
            continue
        if t.text == "," and depth == 1:
            params.append(chunk)
            chunk = []
        elif depth >= 1:
            chunk.append(t)
    names = []
    for chunk in params:
        idents = [t.text for t in chunk if t.kind == "ident"]
        # `= default_value` trailers: the name precedes the first `=`.
        for k, t in enumerate(chunk):
            if t.text == "=":
                idents = [x.text for x in chunk[:k] if x.kind == "ident"]
                break
        if idents and idents[-1] not in ("void", "const"):
            names.append(idents[-1])
    return names


def _expr_sources(toks, start, end, raw_vars, tainted, params):
    """Symbolic source set of an expression range: RAW for direct pre-noise
    sources, call:<name> for unresolved call results, param:<name> for
    function parameters (resolved later against the caller's arguments)."""
    sources = set()
    for j in range(start, end):
        t = toks[j]
        if t.kind != "ident":
            continue
        nxt = toks[j + 1].text if j + 1 < len(toks) else ""
        prev = toks[j - 1].text if j > 0 else ""
        if t.text in RAW_SAMPLE_IDENTS and nxt in ("(", ".", ";", ")", ","):
            sources.add(RAW)
            continue
        if t.text.startswith(("raw_", "exact_")):
            sources.add(RAW)
            continue
        if t.text == "get" and nxt == "(" and j >= 2 \
                and toks[j - 1].text == "." \
                and toks[j - 2].text in raw_vars:
            sources.add(RAW)
            continue
        if t.text in tainted:
            sources.update(tainted[t.text])
            continue
        if nxt == "(" and t.text not in ACCESSOR_STOPLIST \
                and t.text not in CPP_KEYWORDS \
                and not _looks_like_macro(t.text) \
                and prev != "~":
            sources.add("call:" + t.text)
            continue
        if t.text in params and prev not in (".", "->"):
            sources.add("param:" + t.text)
    return sources


def _is_sink_statement(toks, start, end):
    for j in range(start, end):
        t = toks[j]
        if t.kind != "ident":
            continue
        if t.text in SINK_IDENTS:
            return True
        if t.text == "telemetry" and j + 1 < end and toks[j + 1].text == "::":
            return True
        if t.text == "record" and j >= 2 and toks[j - 1].text in (".", "->") \
                and "ledger" in toks[j - 2].text:
            return True
    return False


def _assignment_split(toks, start, end):
    """(lhs_name, rhs_start) for an assignment or direct-init statement,
    or (None, None)."""
    eq_at = None
    depth = 0
    for j in range(start, end):
        t = toks[j].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif depth == 0 and t in ("=", "+=", "-=", "*=", "/="):
            eq_at = j
            break
    if eq_at is not None:
        if toks[eq_at - 1].kind == "ident":
            return toks[eq_at - 1].text, eq_at + 1, toks[eq_at].text
        return None, None, None
    if end - start >= 3 and toks[end - 1].text == ")" \
            and toks[start].kind == "ident":
        # Direct-init declaration: `double x(expr)` — a TYPE ident must
        # precede the name, so bare call statements `helper(args)` are not
        # mistaken for declarations of a variable named `helper`.
        for j in range(start, end):
            if toks[j].text == "(":
                if j - 1 > start and toks[j - 1].kind == "ident" \
                        and toks[j - 2].kind == "ident":
                    return toks[j - 1].text, j + 1, None
                break
    return None, None, None


def _raw_var_declaration(toks, start, end):
    """Variable name declared as units::Raw<...> in this statement."""
    texts = [toks[j].text for j in range(start, end)]
    if "Raw" not in texts:
        return None
    raw_at = start + texts.index("Raw")
    depth = 0
    for j in range(raw_at + 1, end):
        t = toks[j]
        if t.text == "<":
            depth += 1
        elif t.text == ">":
            depth -= 1
            if depth == 0:
                if j + 1 < end and toks[j + 1].kind == "ident":
                    return toks[j + 1].text
                break
    return None


def _call_argument_range(toks, call_index, end):
    """(args_start, args_end) token range for the call at call_index."""
    if call_index + 1 >= end or toks[call_index + 1].text != "(":
        return None
    depth = 0
    for j in range(call_index + 1, end):
        if toks[j].text == "(":
            depth += 1
        elif toks[j].text == ")":
            depth -= 1
            if depth == 0:
                return (call_index + 2, j)
    return (call_index + 2, end)


#: Helper names never treated as a mutex operand of a lock constructor
#: (`std::unique_lock lk(m, std::defer_lock)` and friends).
_LOCK_TAG_IDENTS = {"std", "defer_lock", "adopt_lock", "try_to_lock",
                    "mutex", "shared_mutex", "recursive_mutex"}


def _brace_close_map(toks, func):
    """{open_brace_index: close_brace_index} for every block inside the
    function body (the body braces themselves included)."""
    pairs = {}
    stack = []
    for i in range(func.body_start, func.body_end + 1):
        t = toks[i].text
        if t == "{":
            stack.append(i)
        elif t == "}" and stack:
            pairs[stack.pop()] = i
    return pairs


def _innermost_scope_end(brace_pairs, func, index):
    """Token index of the `}` closing the innermost block containing
    `index` — the point where an RAII lock taken at `index` releases."""
    best = func.body_end
    for open_at, close_at in brace_pairs.items():
        if open_at < index <= close_at and close_at < best:
            best = close_at
    return best


def _qualify_mutex(name, owner, path):
    """Member-style mutex names (trailing underscore) are qualified by the
    owning class so `Ledger::mutex_` and `BaseStation::mutex_` stay
    distinct nodes in the global lock graph; free/namespace-scope names
    (pool_mutex, g_sink_mutex) are already unique and stay bare."""
    if name.endswith("_"):
        return f"{owner or stem(path)}::{name}"
    return name


def _lock_event(toks, i, func, owner, path, brace_pairs):
    """Parses the RAII lock construction starting at the LOCK_ACQUIRE_IDENTS
    token `i` into a lock event, or None when no mutex operand is visible
    (deferred locks, bare declarations).

    A multi-mutex `std::scoped_lock lock(a, b)` is ONE event: the standard
    acquires its operands deadlock-free, so no ordering edge may be drawn
    between them."""
    # Find the constructor's paren, skipping any template argument list.
    j = i + 1
    limit = min(func.body_end, i + 40)
    if j < limit and toks[j].text == "<":
        depth = 0
        while j < limit:
            if toks[j].text == "<":
                depth += 1
            elif toks[j].text == ">":
                depth -= 1
                if depth == 0:
                    j += 1
                    break
            j += 1
    var = None
    while j < limit and toks[j].text not in ("(", ";", "{", "}"):
        if toks[j].kind == "ident":
            var = toks[j].text
        j += 1
    if j >= limit or toks[j].text != "(":
        return None  # deferred/bare declaration: nothing acquired here
    # Comma-split the argument list; the mutex of each chunk is its last
    # ident (`mutex_`, `other.mutex_`, `pool_mutex()` all end on it).
    depth = 0
    chunks = [[]]
    k = j
    while k <= func.body_end:
        t = toks[k]
        if t.text == "(":
            depth += 1
            if depth == 1:
                k += 1
                continue
        elif t.text == ")":
            depth -= 1
            if depth == 0:
                break
        elif t.text == "," and depth == 1:
            chunks.append([])
            k += 1
            continue
        if depth >= 1:
            chunks[-1].append(t)
        k += 1
    mutexes = []
    for chunk in chunks:
        idents = [t.text for t in chunk if t.kind == "ident"]
        if not idents or idents[-1] in _LOCK_TAG_IDENTS:
            continue
        mutexes.append(_qualify_mutex(idents[-1], owner, path))
    if not mutexes:
        return None
    return {"mutexes": sorted(set(mutexes)), "var": var,
            "line": toks[i].line, "order": i,
            "scope_end": _innermost_scope_end(brace_pairs, func, i)}


def _condition_uses(toks, i, func):
    """Own-member idents (trailing underscore, not behind `.`/`->` of
    another object) read inside the `if`/`while` condition starting after
    token `i`."""
    if i + 1 > func.body_end or toks[i + 1].text != "(":
        return []
    uses = []
    depth = 0
    for j in range(i + 1, func.body_end):
        t = toks[j]
        if t.text == "(":
            depth += 1
        elif t.text == ")":
            depth -= 1
            if depth == 0:
                break
        elif t.kind == "ident" and t.text.endswith("_"):
            prev = toks[j - 1].text if j > 0 else ""
            prev2 = toks[j - 2].text if j > 1 else ""
            if prev in (".", "->") and prev2 != "this":
                continue
            uses.append({"name": t.text, "line": t.line})
    return uses


def summarize_function(model, func):
    """Builds the FunctionSummary for one function, plus any function-local
    no-raw-to-sink findings (direct RAW reaching a sink)."""
    toks = model.tokens
    params = _parse_params(toks, func)
    param_set = set(params)

    sig = toks[func.sig_start:func.body_start]
    sig_annotated = any(t.kind == "ident" and t.text in LOCK_SIG_ANNOTATIONS
                        for t in sig)
    requires = []
    for k, t in enumerate(sig):
        if t.kind == "ident" and t.text in ("PRC_REQUIRES", "PRC_ACQUIRE"):
            for u in sig[k + 1:k + 6]:
                if u.kind == "ident":
                    requires.append(u.text)
                    break

    owner = func.qualifier or func.type_scope
    brace_pairs = _brace_close_map(toks, func)
    calls = []
    acquires = []
    guarded_uses = []
    crash_points = []
    lock_events = []
    blocking_calls = []
    rmw_uses = []
    branch_uses = []
    for i in range(func.body_start + 1, func.body_end):
        t = toks[i]
        if t.kind != "ident":
            continue
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        prev = toks[i - 1].text if i > 0 else ""
        prev2 = toks[i - 2].text if i > 1 else ""
        if t.text == "PRC_CRASH_POINT" and nxt == "(" \
                and i + 2 < len(toks) and toks[i + 2].kind == "string":
            crash_points.append(toks[i + 2].text.strip('"'))
            continue
        if t.text in ("if", "while") and nxt == "(":
            branch_uses.extend(_condition_uses(toks, i, func))
            continue
        if nxt == "(" and t.text not in CPP_KEYWORDS \
                and not _looks_like_macro(t.text) and prev != "~" \
                and not (prev == ">"
                         or (i > 0 and toks[i - 1].kind == "ident"
                             and prev not in CPP_KEYWORDS)):
            # `Type name(args)` / `Tmpl<...> name(args)` is a declarator,
            # not a call — recording `name` would wire the variable into
            # the call graph (a lock_guard named `serialize` must not
            # resolve to some class's serialize() method).
            member = prev in (".", "->")
            recv = prev2 if member and i > 1 and \
                toks[i - 2].kind == "ident" else None
            calls.append({"name": t.text, "line": t.line, "order": i,
                          "member": member, "recv": recv})
            if t.text in BLOCKING_CALL_IDENTS:
                blocking_calls.append({"name": t.text, "line": t.line,
                                       "order": i, "cv_arg": None})
            elif t.text in CV_WAIT_IDENTS and member and recv \
                    and "cv" in recv:
                # The wait's own lock variable (first argument) is exempt
                # from the held set when the blocking rule judges this
                # site; any OTHER mutex held across the wait is a finding.
                cv_arg = None
                for u in toks[i + 2:i + 5]:
                    if u.kind == "ident":
                        cv_arg = u.text
                        break
                blocking_calls.append({"name": f"{recv}.{t.text}",
                                       "line": t.line, "order": i,
                                       "cv_arg": cv_arg or ""})
        if t.text in LOCK_ACQUIRE_IDENTS:
            window = [x.text for x in toks[i:i + 12] if x.kind == "ident"]
            acquires.append({"names": window, "order": i})
            event = _lock_event(toks, i, func, owner, model.path,
                                brace_pairs)
            if event:
                lock_events.append(event)
        elif nxt == "." and i + 2 < len(toks) \
                and toks[i + 2].text == "lock":
            acquires.append({"names": [t.text], "order": i})
            if t.text.endswith("_") or "mutex" in t.text:
                lock_events.append({
                    "mutexes": [_qualify_mutex(t.text, owner, model.path)],
                    "var": t.text, "line": t.line, "order": i,
                    # .lock()/.unlock() pairs are not scope-bound; assume
                    # held to the end of the function (conservative).
                    "scope_end": func.body_end})
        if t.text.endswith("_") and nxt != "(":
            if prev in (".", "->") and prev2 != "this":
                continue  # member of some other object
            guarded_uses.append({"name": t.text, "line": t.line, "order": i})
            if nxt in RMW_OPS or prev in ("++", "--"):
                rmw_uses.append({"name": t.text, "line": t.line})

    # --- symbolic taint dataflow --------------------------------------
    raw_vars = set()
    tainted = {}        # local name -> set of source symbols
    sink_flows = []     # unresolved flows into sinks
    arg_flows = []      # tainted data passed as call arguments
    returns_direct_raw = False
    return_dep_calls = set()
    return_dep_params = set()
    raw_sink_findings = []

    for start, end in statement_ranges(toks, func):
        raw_var = _raw_var_declaration(toks, start, end)
        if raw_var:
            raw_vars.add(raw_var)

        if _is_sink_statement(toks, start, end):
            sources = _expr_sources(toks, start, end, raw_vars, tainted,
                                    param_set)
            if RAW in sources:
                raw_sink_findings.append(Finding(
                    "no-raw-to-sink", model.path, toks[start].line,
                    "a pre-noise (raw) estimate flows into an export "
                    "sink; only RELEASED (perturbed) values, counts and "
                    "prices may leave the process.  Perturb first, or "
                    "add `// lint:allow raw-sink` with a justification",
                    function=func.name))
            elif sources:
                sink_flows.append({"line": toks[start].line,
                                   "deps": sorted(sources)})
            continue

        if toks[start].text == "return":
            sources = _expr_sources(toks, start + 1, end, raw_vars, tainted,
                                    param_set)
            if RAW in sources:
                returns_direct_raw = True
            for dep in sources:
                if dep.startswith("call:"):
                    return_dep_calls.add(dep[5:])
                elif dep.startswith("param:"):
                    return_dep_params.add(dep[6:])
            continue

        # Tainted data handed to another function: the callee may sink it.
        for k in range(start, end):
            t = toks[k]
            if t.kind != "ident" or t.text in CPP_KEYWORDS \
                    or t.text in ACCESSOR_STOPLIST \
                    or _looks_like_macro(t.text):
                continue
            arg_range = _call_argument_range(toks, k, end)
            if arg_range is None:
                continue
            sources = _expr_sources(toks, arg_range[0], arg_range[1],
                                    raw_vars, tainted, param_set)
            if sources:
                arg_flows.append({"callee": t.text, "line": t.line,
                                  "deps": sorted(sources)})

        lhs, rhs_start, op = _assignment_split(toks, start, end)
        if lhs and rhs_start is not None:
            sources = _expr_sources(toks, rhs_start, end, raw_vars, tainted,
                                    param_set)
            if sources:
                tainted[lhs] = sources
            elif lhs in tainted and op == "=":
                del tainted[lhs]  # overwritten with clean data

    summary = FunctionSummary(
        name=func.name, qualifier=func.qualifier, type_scope=func.type_scope,
        path=model.path, line=toks[func.sig_start].line
        if func.sig_start < len(toks) else 0,
        params=params, calls=calls, acquires=acquires, requires=requires,
        sig_annotated=sig_annotated, guarded_uses=guarded_uses,
        crash_points=crash_points, sink_flows=sink_flows,
        arg_flows=arg_flows, returns_direct_raw=returns_direct_raw,
        return_dep_calls=sorted(return_dep_calls),
        return_dep_params=sorted(return_dep_params),
        raw_sink_findings=None,
        lock_events=lock_events, blocking_calls=blocking_calls,
        rmw_uses=rmw_uses, branch_uses=branch_uses)
    return summary, raw_sink_findings


def collect_guarded_fields(model):
    """{field_name: mutex_name} from PRC_GUARDED_BY annotations in one
    file (declared in headers, enforced across the matching .h/.cc pair)."""
    fields = {}
    toks = model.tokens
    for i, tok in enumerate(toks):
        if tok.kind != "ident" or tok.text != "PRC_GUARDED_BY":
            continue
        if i + 2 >= len(toks) or toks[i + 1].text != "(":
            continue
        mutex = toks[i + 2].text
        if toks[i - 1].kind != "ident":
            continue
        fields[toks[i - 1].text] = mutex
    return fields


#: Annotation macros whose arguments NAME a mutex: a mutex referenced by
#: any of these is documented — some field's guard, a capability the API
#: declares.  Used by the atomic-discipline coverage check.
_GUARD_REF_MACROS = {"PRC_GUARDED_BY", "PRC_PT_GUARDED_BY", "PRC_REQUIRES",
                     "PRC_ACQUIRE", "PRC_RELEASE", "PRC_EXCLUDES"}

#: std:: concurrency primitive type names whose field declarations the
#: adoption gate inventories.  condition_variable is deliberately absent:
#: a cv pairs with an (already inventoried) mutex and guards nothing.
_PRIMITIVE_KINDS = {"mutex": "mutex", "shared_mutex": "mutex",
                    "recursive_mutex": "mutex", "timed_mutex": "mutex",
                    "atomic": "atomic", "atomic_flag": "atomic"}


def collect_concurrency(model):
    """Concurrency-primitive inventory for one file: every std::mutex /
    std::atomic FIELD declaration (class or namespace scope — locals and
    parameters are skipped) plus the set of mutex names referenced by any
    thread-safety annotation.

    {"decls": [{"kind", "name", "owner", "line"}], "guards": [names]}"""
    toks = model.tokens
    decls = []
    guards = set()
    spans = [(f.sig_start, f.body_end) for f in model.functions
             if f.body_end is not None]

    def in_function(index):
        return any(a <= index <= b for a, b in spans)

    for i, tok in enumerate(toks):
        if tok.kind != "ident":
            continue
        if tok.text in _GUARD_REF_MACROS:
            if i + 2 < len(toks) and toks[i + 1].text == "(":
                for u in toks[i + 2:i + 8]:
                    if u.text == ")":
                        break
                    if u.kind == "ident":
                        guards.add(u.text)
            continue
        kind = _PRIMITIVE_KINDS.get(tok.text)
        if kind is None:
            continue
        prev = toks[i - 1].text if i > 0 else ""
        prev2 = toks[i - 2].text if i > 1 else ""
        if not (prev == "::" and prev2 == "std"):
            continue
        if in_function(i):
            continue  # local variable or parameter, not a shared field
        # Find the declared name: skip the template argument list, then
        # take the next ident; require a declarator tail (`;`, `{`, `=`)
        # so function declarations/returns are not mistaken for fields.
        j = i + 1
        if j < len(toks) and toks[j].text == "<":
            depth = 0
            while j < len(toks):
                if toks[j].text == "<":
                    depth += 1
                elif toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        j += 1
                        break
                j += 1
        while j < len(toks) and toks[j].text in ("&", "*", "const"):
            j += 1
        if j >= len(toks) or toks[j].kind != "ident":
            continue
        name = toks[j].text
        tail = toks[j + 1].text if j + 1 < len(toks) else ""
        if tail not in (";", "{", "="):
            continue
        decls.append({"kind": kind, "name": name,
                      "owner": model.token_type[i], "line": toks[j].line})
    return {"decls": decls, "guards": sorted(guards)}


def summarize_file(model):
    """(summaries, guarded_fields, concurrency, local_findings) for one
    FileModel."""
    summaries = []
    findings = []
    for func in model.functions:
        summary, raw_findings = summarize_function(model, func)
        summaries.append(summary)
        findings.extend(raw_findings)
    return (summaries, collect_guarded_fields(model),
            collect_concurrency(model), findings)
