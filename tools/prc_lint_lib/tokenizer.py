"""C++ tokenizer for the prc_lint engine.

Comments, string and char literals become opaque single tokens and
preprocessor lines are blanked, so no rule can ever fire on the TEXT of a
comment, a literal, or an #include path.  `lint:allow <tag>` escape
hatches are harvested from comments during tokenization.
"""

import re

TOKEN_RE = re.compile(
    r"""
      (?P<lcomment>//[^\n]*)
    | (?P<bcomment>/\*.*?\*/)
    | (?P<rawstr>R"(?P<rawtag>[^()\\\s]{0,16})\(.*?\)(?P=rawtag)")
    | (?P<string>"(?:[^"\\\n]|\\.)*")
    | (?P<char>'(?:[^'\\\n]|\\.)+')
    | (?P<number>\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*)
    | (?P<ident>[A-Za-z_]\w*)
    | (?P<punct><<=|>>=|<=>|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=|
                &&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\S)
    """,
    re.VERBOSE | re.DOTALL,
)

ALLOW_RE = re.compile(r"lint:allow\s+([\w-]+)")


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, L{self.line})"


def scrub_preprocessor(text):
    """Blanks preprocessor directives (and their continuation lines) while
    preserving newlines, so #include paths and macro bodies never feed the
    rules."""
    out = []
    in_directive = False
    for line in text.split("\n"):
        stripped = line.lstrip()
        if in_directive or stripped.startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            out.append("")
        else:
            in_directive = False
            out.append(line)
    return "\n".join(out)


def tokenize(text):
    """Returns (tokens, allow_lines) where allow_lines maps an escape-hatch
    tag to the set of line numbers carrying `// lint:allow <tag>`."""
    tokens = []
    allows = {}
    line = 1
    pos = 0
    text = scrub_preprocessor(text)
    for match in TOKEN_RE.finditer(text):
        line += text.count("\n", pos, match.start())
        pos = match.start()
        kind = match.lastgroup
        if kind == "rawtag":  # inner group of rawstr
            kind = "rawstr"
        if kind in ("lcomment", "bcomment"):
            for tag in ALLOW_RE.findall(match.group()):
                allows.setdefault(tag, set()).add(line)
        elif kind in ("rawstr", "string", "char"):
            tokens.append(Token("string", match.group(), line))
        else:
            tokens.append(Token(kind, match.group(), line))
    return tokens, allows
