"""Content-hash summary cache.

Per-file analysis (tokenization + token rules + summary extraction) is
pure in the file's bytes and the analyzer's own source, so results are
cached keyed by sha256(file) and invalidated wholesale when any module in
prc_lint_lib changes.  Interprocedural rules are recomputed every run
from the (cheap) cached summaries — they depend on the whole program, so
they can never be cached per file.
"""

import hashlib
import json
import os

CACHE_VERSION = 1


def engine_fingerprint():
    """Hash of every prc_lint_lib module: editing the analyzer invalidates
    the whole cache."""
    lib_dir = os.path.dirname(os.path.abspath(__file__))
    digest = hashlib.sha256()
    for name in sorted(os.listdir(lib_dir)):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(lib_dir, name), "rb") as handle:
            digest.update(name.encode())
            digest.update(handle.read())
    return digest.hexdigest()


def content_hash(data):
    return hashlib.sha256(data).hexdigest()


def default_cache_path(repo_root):
    build = os.path.join(repo_root, "build")
    base = build if os.path.isdir(build) else repo_root
    return os.path.join(base, ".prc_lint_cache.json")


class SummaryCache:
    def __init__(self, path, fingerprint):
        self.path = path
        self.fingerprint = fingerprint
        self.entries = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self):
        try:
            with open(self.path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return
        if data.get("version") != CACHE_VERSION \
                or data.get("fingerprint") != self.fingerprint:
            return  # analyzer changed: start cold
        self.entries = data.get("files", {})

    def get(self, path, file_hash):
        entry = self.entries.get(path)
        if entry is not None and entry.get("hash") == file_hash:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, path, file_hash, payload):
        payload = dict(payload)
        payload["hash"] = file_hash
        self.entries[path] = payload

    def save(self):
        data = {"version": CACHE_VERSION, "fingerprint": self.fingerprint,
                "files": self.entries}
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(data, handle)
            os.replace(tmp, self.path)
        except OSError:
            pass  # caching is best-effort; analysis already succeeded
