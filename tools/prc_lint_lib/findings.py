"""Finding record plus the rule registry (rule name -> escape-hatch tag).

Rules emit findings unconditionally; the ENGINE applies `lint:allow <tag>`
suppression centrally.  That split is what makes the suppression-staleness
audit possible: an allow that never matches an emitted finding is itself
an error (`stale-suppression`), so escape hatches cannot outlive the code
they excused.
"""

RULES = {
    # rule name                      allow tags that silence it
    "no-raw-random":                 (),
    "no-bare-assert":                (),
    "no-float-eq-budget":            ("float-eq",),
    "checked-byte-access":           ("index",),
    "no-raw-samples-in-telemetry":   ("telemetry",),
    "no-telemetry-lookup-in-loop":   ("telemetry-lookup",),
    "no-raw-to-sink":                ("raw-sink",),
    "lock-discipline":               ("lock",),
    "unit-suffix-consistency":       ("unit-suffix",),
    "no-unbarriered-mint":           ("mint", "barrier"),
    # Interprocedural (whole-program) rules.
    "interproc-raw-taint":           ("raw-sink", "interproc-taint"),
    "budget-barrier-dominance":      ("barrier", "mint"),
    "wal-intent-commit-pairing":     ("wal-pairing",),
    # Concurrency-soundness rules (whole-program).
    "lock-order":                    ("lockorder",),
    "blocking-under-lock":           ("blocking",),
    "atomic-discipline":             ("atomic",),
    # Meta rule: emitted by the engine itself, not suppressible.
    "stale-suppression":             (),
}

#: Tags a `lint:allow` may legally carry (anything else is flagged as an
#: unknown suppression by the staleness audit).
KNOWN_TAGS = frozenset(tag for tags in RULES.values() for tag in tags)

RULE_NAMES = tuple(RULES)


class Finding:
    __slots__ = ("rule", "path", "lineno", "message", "function",
                 "suppressed")

    def __init__(self, rule, path, lineno, message, function=None):
        self.rule = rule
        self.path = path
        self.lineno = lineno
        self.message = message
        self.function = function  # enclosing function name when known
        self.suppressed = False   # set by the engine's allow filter

    def __str__(self):
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"

    def to_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.lineno,
            "message": self.message,
            "function": self.function,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["rule"], data["path"], data["line"], data["message"],
                   data.get("function"))
