"""Finding emitters: plain text (the GitHub problem matcher's format),
JSON Lines for tooling, and SARIF 2.1.0 for code-scanning upload."""

import json

from .findings import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

RULE_HELP = {
    "interproc-raw-taint":
        "Pre-noise (raw) estimates must never reach an export sink, even "
        "through helper calls (Raw/Released wall).",
    "budget-barrier-dominance":
        "Every path to LaplaceMechanism::perturb must cross "
        "DataBroker::mint_answer_with_intent (ledger conservation).",
    "wal-intent-commit-pairing":
        "A WAL intent needs a reachable commit or absorb, else recovery "
        "over-counts epsilon forever.",
    "stale-suppression":
        "A lint:allow escape hatch that no longer suppresses anything "
        "must be removed.",
}


def emit_text(findings, stream):
    for finding in findings:
        print(finding, file=stream)


def emit_jsonl(findings, stream):
    for finding in findings:
        print(json.dumps(finding.to_dict(), sort_keys=True), file=stream)


def emit_sarif(findings, stream):
    rules = []
    for rule in RULES:
        entry = {"id": rule}
        help_text = RULE_HELP.get(rule)
        if help_text:
            entry["shortDescription"] = {"text": help_text}
        rules.append(entry)
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": max(finding.lineno, 1)},
                },
            }],
        })
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {"name": "prc_lint",
                                "informationUri":
                                    "tools/prc_lint (in-repo analyzer)",
                                "rules": rules}},
            "results": results,
        }],
    }
    json.dump(doc, stream, indent=2, sort_keys=True)
    stream.write("\n")


EMITTERS = {"text": emit_text, "jsonl": emit_jsonl, "sarif": emit_sarif}
