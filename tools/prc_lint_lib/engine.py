"""Analysis driver: per-file pass (cached), whole-program pass, central
`lint:allow` filtering, the suppression-staleness audit, output formats,
and the fixture self-test."""

import argparse
import os
import shutil
import subprocess
import sys
import time

from .cache import (SummaryCache, content_hash, default_cache_path,
                    engine_fingerprint)
from .findings import Finding, KNOWN_TAGS, RULES, RULE_NAMES
from .interproc import lock_order_report, run_interproc
from .model import FileModel, SOURCE_EXTENSIONS
from .output import EMITTERS
from .rules import TOKEN_RULES
from .summaries import FunctionSummary, summarize_file

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
DEFAULT_SCAN_DIRS = ("src", "tests", "tools", "examples")
FIXTURE_DIR = os.path.join("tools", "lint_fixtures")


def iter_source_files(paths):
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(SOURCE_EXTENSIONS):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [d for d in dirnames
                           if d not in ("build", "lint_fixtures", ".git",
                                        "compile_fail")]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(dirpath, name)


class Analysis:
    """One whole-program run: findings (visible and suppressed), per-file
    allows, and cache statistics."""

    def __init__(self):
        self.findings = []          # every emitted finding, incl. suppressed
        self.allows_by_path = {}
        self.used_allows = {}       # path -> {(tag, line)}
        self.summaries = []         # retained for --lock-order-out
        self.files = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.seconds = 0.0

    @property
    def visible(self):
        return [f for f in self.findings if not f.suppressed]


def _analyze_one(path, data):
    """Uncached per-file pass: token rules + function summaries."""
    model = FileModel(path, data.decode("utf-8", errors="replace"))
    findings = [f for rule in TOKEN_RULES for f in rule(model)]
    summaries, guarded_fields, concurrency, raw_findings = \
        summarize_file(model)
    findings.extend(raw_findings)
    return findings, summaries, guarded_fields, concurrency, model.allows


def _apply_allows(analysis):
    """Central suppression: a finding is silenced when one of its rule's
    tags carries a `lint:allow` on the finding's line.  Every allow that
    silences something is recorded so the staleness audit can flag the
    rest."""
    for finding in analysis.findings:
        allows = analysis.allows_by_path.get(finding.path)
        if not allows:
            continue
        for tag in RULES.get(finding.rule, ()):
            if finding.lineno in allows.get(tag, ()):
                finding.suppressed = True
                analysis.used_allows.setdefault(finding.path, set()) \
                    .add((tag, finding.lineno))
                break


def _staleness_findings(analysis):
    out = []
    for path in sorted(analysis.allows_by_path):
        used = analysis.used_allows.get(path, set())
        for tag in sorted(analysis.allows_by_path[path]):
            for line in sorted(analysis.allows_by_path[path][tag]):
                if (tag, line) in used:
                    continue
                if tag not in KNOWN_TAGS:
                    message = (f"`lint:allow {tag}` names an unknown tag; "
                               "known tags: "
                               + ", ".join(sorted(KNOWN_TAGS)))
                else:
                    message = (f"`lint:allow {tag}` no longer suppresses "
                               "any finding on this line; the escape hatch "
                               "is stale — delete it (or fix the tag) so "
                               "hatches cannot outlive the code they "
                               "excused")
                out.append(Finding("stale-suppression", path, line, message))
    return out


def analyze_paths(files, use_cache=True, cache_path=None):
    start = time.monotonic()
    analysis = Analysis()
    cache = None
    if use_cache:
        cache = SummaryCache(cache_path or default_cache_path(REPO_ROOT),
                             engine_fingerprint())
    summaries = []
    guarded_by_path = {}
    concurrency_by_path = {}
    for path in files:
        analysis.files += 1
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as error:
            analysis.findings.append(Finding("io", path, 0, str(error)))
            continue
        file_hash = content_hash(data)
        entry = cache.get(path, file_hash) if cache else None
        if entry is None:
            findings, file_summaries, guarded_fields, concurrency, allows = \
                _analyze_one(path, data)
            if cache:
                cache.put(path, file_hash, {
                    "findings": [f.to_dict() for f in findings],
                    "summaries": [s.to_dict() for s in file_summaries],
                    "guarded_fields": guarded_fields,
                    "concurrency": concurrency,
                    "allows": {tag: sorted(lines)
                               for tag, lines in allows.items()},
                })
        else:
            findings = [Finding.from_dict(d) for d in entry["findings"]]
            file_summaries = [FunctionSummary.from_dict(d)
                              for d in entry["summaries"]]
            guarded_fields = entry["guarded_fields"]
            concurrency = entry.get("concurrency") or {}
            allows = {tag: set(lines)
                      for tag, lines in entry["allows"].items()}
        analysis.findings.extend(findings)
        summaries.extend(file_summaries)
        if guarded_fields:
            guarded_by_path[path] = guarded_fields
        if concurrency and (concurrency.get("decls")
                            or concurrency.get("guards")):
            concurrency_by_path[path] = concurrency
        if allows:
            analysis.allows_by_path[path] = allows

    analysis.summaries = summaries
    analysis.findings.extend(run_interproc(summaries, guarded_by_path,
                                           analysis.allows_by_path,
                                           concurrency_by_path))
    _apply_allows(analysis)
    analysis.findings.extend(_staleness_findings(analysis))
    analysis.findings.sort(key=lambda f: (f.path, f.lineno, f.rule))
    if cache:
        analysis.cache_hits = cache.hits
        analysis.cache_misses = cache.misses
        cache.save()
    else:
        analysis.cache_misses = analysis.files
    analysis.seconds = time.monotonic() - start
    return analysis


def run_clang_tidy(files, build_dir):
    binary = shutil.which("clang-tidy")
    if binary is None:
        print("prc_lint: clang-tidy not found on PATH; skipping the "
              "clang-tidy layer (project rules still enforced)")
        return 0
    compile_db = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(compile_db):
        print(f"prc_lint: no {compile_db}; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON to enable clang-tidy")
        return 0
    from .model import norm
    sources = [f for f in files
               if f.endswith(".cc") and norm(f)
               .startswith(("src/", norm(os.path.join(REPO_ROOT, "src"))
                            + "/"))]
    if not sources:
        return 0
    command = [binary, "-p", build_dir, "--quiet",
               "--warnings-as-errors=*"] + sources
    result = subprocess.run(command, cwd=REPO_ROOT)
    return 1 if result.returncode != 0 else 0


def list_suppressions(analysis, stream):
    """Report every `lint:allow` in the analyzed files with its status."""
    total = stale = 0
    for path in sorted(analysis.allows_by_path):
        used = analysis.used_allows.get(path, set())
        for tag in sorted(analysis.allows_by_path[path]):
            for line in sorted(analysis.allows_by_path[path][tag]):
                total += 1
                if (tag, line) in used:
                    status = "USED"
                elif tag not in KNOWN_TAGS:
                    status = "UNKNOWN-TAG"
                    stale += 1
                else:
                    status = "STALE"
                    stale += 1
                print(f"{path}:{line}: lint:allow {tag} [{status}]",
                      file=stream)
    print(f"prc_lint: {total} suppression(s), {stale} stale/unknown",
          file=stream)
    return 1 if stale else 0


def self_test():
    """Joint run over tools/lint_fixtures: every rule must fire at least
    once on the bad_* fixtures, and nothing may fire on good_* files or
    clean_* functions (comment/string/correct-usage regression)."""
    fixture_root = os.path.join(REPO_ROOT, FIXTURE_DIR)
    fixtures = [os.path.join(fixture_root, name)
                for name in sorted(os.listdir(fixture_root))
                if name.endswith(SOURCE_EXTENSIONS)]
    analysis = analyze_paths(fixtures, use_cache=False)
    visible = analysis.visible
    fired = {finding.rule for finding in visible}
    status = 0
    for rule in RULE_NAMES:
        if rule in fired:
            print(f"self-test: rule {rule} fired OK")
        else:
            print(f"self-test: rule {rule} DID NOT FIRE on the fixtures")
            status = 1
    for finding in visible:
        base = os.path.basename(finding.path)
        if base.startswith("good_") or (finding.function or "") \
                .startswith("clean_"):
            print(f"self-test: FALSE POSITIVE {finding} "
                  f"(function {finding.function})")
            status = 1
    print("self-test:", "PASS" if status == 0 else "FAIL")
    return status


def main(argv):
    parser = argparse.ArgumentParser(
        prog="prc_lint",
        description="project privacy-flow linter (token rules + "
                    "whole-program interprocedural analysis)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             f"(default: {', '.join(DEFAULT_SCAN_DIRS)})")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rules against tools/lint_fixtures: "
                             "every rule must fire on bad_*, none on good_*")
    parser.add_argument("--no-clang-tidy", action="store_true",
                        help="skip the clang-tidy layer even if available")
    parser.add_argument("--build-dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--format", choices=("text", "jsonl", "sarif"),
                        default="text", help="finding output format")
    parser.add_argument("--list-suppressions", action="store_true",
                        help="report every lint:allow with USED/STALE "
                             "status instead of findings")
    parser.add_argument("--expect-rule", metavar="RULE",
                        help="exit 0 iff RULE fires on the given paths "
                             "(regression gate for weakened-invariant "
                             "fixtures)")
    parser.add_argument("--changed", action="store_true",
                        help="analyze the whole default tree (interproc "
                             "rules need the full call graph) but report "
                             "only findings in the given paths")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the summary cache")
    parser.add_argument("--lock-order-out", metavar="PATH",
                        help="write the canonical lock-acquisition order "
                             "derived from the whole-program lock graph "
                             "(e.g. build/lock_order.txt)")
    parser.add_argument("--timing", action="store_true",
                        help="print analysis wall time and cache hit/miss "
                             "counts")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    os.chdir(REPO_ROOT)
    if args.changed:
        report_paths = {os.path.relpath(p) for p in args.paths}
        scan = [d for d in DEFAULT_SCAN_DIRS if os.path.isdir(d)]
    else:
        report_paths = None
        scan = args.paths or [d for d in DEFAULT_SCAN_DIRS
                              if os.path.isdir(d)]
    files = list(iter_source_files(scan))
    if not files:
        print("prc_lint: no source files found", file=sys.stderr)
        return 2

    analysis = analyze_paths(files, use_cache=not args.no_cache)

    if args.lock_order_out:
        report, cycles = lock_order_report(analysis.summaries)
        out_dir = os.path.dirname(args.lock_order_out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.lock_order_out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"prc_lint: lock order written to {args.lock_order_out}"
              + (f" ({len(cycles)} cycle(s)!)" if cycles else ""))

    if args.expect_rule:
        fired = {f.rule for f in analysis.visible}
        if args.expect_rule in fired:
            print(f"prc_lint: expected rule {args.expect_rule} fired OK")
            return 0
        print(f"prc_lint: expected rule {args.expect_rule} DID NOT FIRE",
              file=sys.stderr)
        for finding in analysis.visible:
            print(f"  (visible instead: {finding})", file=sys.stderr)
        return 1

    if args.list_suppressions:
        return list_suppressions(analysis, sys.stdout)

    visible = analysis.visible
    if report_paths is not None:
        visible = [f for f in visible
                   if os.path.relpath(f.path) in report_paths]
    EMITTERS[args.format](visible, sys.stdout)

    status = 1 if visible else 0
    if not args.no_clang_tidy and args.format == "text":
        status = max(status, run_clang_tidy(files, args.build_dir))

    summary = (f"prc_lint: {len(files)} files, {len(visible)} project-rule "
               f"finding(s)")
    if args.timing:
        summary += (f"; analysis {analysis.seconds:.2f}s "
                    f"(cache: {analysis.cache_hits} hit, "
                    f"{analysis.cache_misses} miss)")
    print(summary, file=sys.stderr if args.format != "text" else sys.stdout)
    return status
