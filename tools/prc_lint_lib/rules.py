"""Token-local lint rules: each inspects one FileModel independently.

Cross-file rules (lock-discipline, the interprocedural pass) live in
interproc.py and run on function summaries instead, so they stay valid
when per-file results are served from the summary cache.
"""

import os

from .findings import Finding
from .model import norm, statement_end

RAW_RANDOM_IDENTS = {"random_device", "mt19937", "mt19937_64",
                     "default_random_engine"}


def is_codec_path(path):
    return "codec" in os.path.basename(norm(path))


def check_raw_random(model):
    if norm(model.path).endswith("common/rng.h"):
        return []
    findings = []
    toks = model.tokens
    for i, tok in enumerate(toks):
        if tok.kind != "ident":
            continue
        hit = False
        if tok.text in RAW_RANDOM_IDENTS:
            hit = i >= 2 and toks[i - 1].text == "::" and \
                toks[i - 2].text == "std"
        elif tok.text in ("rand", "srand"):
            prev = toks[i - 1].text if i else ""
            hit = i + 1 < len(toks) and toks[i + 1].text == "(" and \
                prev not in (".", "->", "::")
        if hit:
            findings.append(Finding(
                "no-raw-random", model.path, tok.line,
                "use prc::Rng (src/common/rng.h); raw std randomness breaks "
                "reproducibility",
                function=getattr(model.token_function[i], "name", None)))
    return findings


def check_bare_assert(model):
    if norm(model.path).endswith("common/check.h"):
        return []
    findings = []
    toks = model.tokens
    for i, tok in enumerate(toks):
        if tok.kind == "ident" and tok.text == "assert" \
                and i + 1 < len(toks) and toks[i + 1].text == "(":
            findings.append(Finding(
                "no-bare-assert", model.path, tok.line,
                "use PRC_CHECK/PRC_DCHECK so the invariant survives NDEBUG "
                "and raises prc::ContractViolation",
                function=getattr(model.token_function[i], "name", None)))
    return findings


BUDGET_WORDS = ("epsilon", "price", "budget", "revenue", "spend", "alpha",
                "delta")
OPERAND_STOP = {";", ",", "(", "{", "}", "&&", "||", "!", "=", "<", ">",
                "<=", ">=", "==", "!=", "+", "-", "*", "/", "%", "<<", ">>",
                "?", ":", "return"}
# Operand chains containing these are not float comparisons: iterator
# sentinels, and compile-time size/trait queries (static_asserts on unit
# layout compare sizeof results by design).
ITERATOR_IDENTS = {"end", "begin", "cend", "cbegin", "nullptr", "npos",
                   "sizeof", "alignof"}


def _operand_idents(tokens, index, direction):
    """Identifiers forming the operand chain next to a comparison operator
    (walking over `.`/`->`/`::`/calls/subscripts until an operator)."""
    idents = []
    depth = 0
    i = index + direction
    while 0 <= i < len(tokens):
        t = tokens[i]
        if direction < 0:
            if t.text in (")", "]"):
                depth += 1
            elif t.text in ("(", "["):
                if depth == 0:
                    break
                depth -= 1
        else:
            if t.text in ("(", "["):
                depth += 1
            elif t.text in (")", "]"):
                if depth == 0:
                    break
                depth -= 1
        if depth == 0 and t.text in OPERAND_STOP and \
                t.text not in ("(", ")", "[", "]"):
            break
        if t.kind == "ident":
            idents.append(t.text)
        i += direction
    return idents


def check_float_eq_budget(model):
    findings = []
    toks = model.tokens
    for i, tok in enumerate(toks):
        if tok.text not in ("==", "!=") or tok.kind != "punct":
            continue
        left = _operand_idents(toks, i, -1)
        right = _operand_idents(toks, i, +1)
        if any(name in ITERATOR_IDENTS for name in left + right):
            continue
        joined = " ".join(left + right).lower()
        if any(word in joined for word in BUDGET_WORDS):
            findings.append(Finding(
                "no-float-eq-budget", model.path, tok.line,
                f"exact {tok.text} on budget-like value; compare against a "
                "tolerance or add `// lint:allow float-eq` with a "
                "justification",
                function=getattr(model.token_function[i], "name", None)))
    return findings


BOUNDS_GUARD_IDENTS = {"PRC_CHECK", "PRC_DCHECK", "PRC_CHECK_PROB",
                       "PRC_CHECK_FINITE", "CodecError", "size",
                       "kHeaderSize"}


def check_byte_access(model):
    if not is_codec_path(model.path):
        return []
    findings = []
    toks = model.tokens
    for i, tok in enumerate(toks):
        if tok.text != "[" or tok.kind != "punct":
            continue
        prev = toks[i - 1] if i else None
        if prev is None or not (prev.kind == "ident"
                                or prev.text in (")", "]")):
            continue  # lambda introducers, attributes
        func = model.token_function[i]
        if func is None:
            continue
        guarded = any(
            t.kind == "ident" and (t.text in BOUNDS_GUARD_IDENTS
                                   or t.text == "256")
            or (t.kind == "number" and t.text == "256")
            for t in toks[func.body_start:i])
        if not guarded:
            findings.append(Finding(
                "checked-byte-access", model.path, tok.line,
                "raw subscript in codec path without a bounds guard in the "
                "enclosing function; add PRC_DCHECK(offset + n <= "
                "buf.size()) or validate the frame first",
                function=func.name))
    return findings


RAW_SAMPLE_IDENTS = {"sampled_estimate", "rank_counting_estimate",
                     "rank_counting_estimate_batch",
                     "basic_counting_estimate", "quantile_estimate"}


def _mentions_raw_data(tokens, start, end):
    for j in range(start, end):
        t = tokens[j]
        if t.kind != "ident":
            continue
        if t.text in RAW_SAMPLE_IDENTS:
            return True
        if t.text.startswith(("raw_", "exact_")):
            return True
        if t.text == "value" and j > 0 and tokens[j - 1].text == "->":
            return True
        if t.text == "value" and j > 1 and tokens[j - 1].text in (".", "::") \
                and tokens[j - 2].text in ("record", "Record"):
            return True
        if t.text == "values" and j + 1 < end and tokens[j + 1].text == "(":
            return True
    return False


def check_raw_samples_in_telemetry(model):
    findings = []
    toks = model.tokens
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind == "ident" and t.text == "telemetry" \
                and i + 1 < len(toks) and toks[i + 1].text == "::":
            end = statement_end(toks, i)
            if _mentions_raw_data(toks, i, end):
                findings.append(Finding(
                    "no-raw-samples-in-telemetry", model.path, t.line,
                    "telemetry must never record raw sensor values or "
                    "unperturbed estimates; export counts/sizes/durations/"
                    "prices or the RELEASED (noised) value, or add "
                    "`// lint:allow telemetry` with a justification",
                    function=getattr(model.token_function[i], "name", None)))
            i = end
        else:
            i += 1
    return findings


def check_telemetry_lookup_in_loop(model):
    findings = []
    toks = model.tokens
    for func in model.functions:
        depth = 0
        loop_depths = []
        pending_loop = False   # saw for/while(...), waiting for its `{`
        paren_depth = 0
        in_loop_header = 0
        for i in range(func.body_start + 1, func.body_end):
            t = toks[i]
            if t.kind == "ident" and t.text in ("for", "while") \
                    and i + 1 < len(toks) and toks[i + 1].text == "(":
                pending_loop = True
                in_loop_header = paren_depth + 1
            elif t.text == "(":
                paren_depth += 1
            elif t.text == ")":
                paren_depth -= 1
                if in_loop_header and paren_depth < in_loop_header:
                    in_loop_header = 0
            elif t.text == "{":
                if pending_loop:
                    loop_depths.append(depth)
                    pending_loop = False
                depth += 1
            elif t.text == "}":
                depth -= 1
                while loop_depths and depth <= loop_depths[-1]:
                    loop_depths.pop()
            if t.kind == "ident" and t.text == "telemetry" \
                    and (loop_depths or pending_loop or in_loop_header) \
                    and i + 3 < len(toks) \
                    and toks[i + 1].text == "::" \
                    and toks[i + 2].text in ("counter", "histogram", "gauge") \
                    and toks[i + 3].text == "(":
                seg_start = model.segment_start(i)
                if any(s.text == "static"
                       for s in toks[seg_start:i]):
                    continue
                findings.append(Finding(
                    "no-telemetry-lookup-in-loop", model.path, t.line,
                    "name-keyed telemetry lookup inside a loop re-hashes the "
                    "name and locks the registry every iteration; hoist it "
                    "into a `static telemetry::Counter& ... = "
                    "telemetry::counter(...)` (registry references are "
                    "process-lifetime stable) or add `// lint:allow "
                    "telemetry-lookup` with a justification",
                    function=func.name))
    return findings


UNIT_WORDS = ("epsilon", "delta", "alpha")
UNIT_SKIP_QUALIFIERS = {"const", "*", "&", "&&"}


def unit_rule_applies(path):
    p = norm(path)
    return "src/dp/" in p or "src/pricing/" in p \
        or "unit_suffix" in os.path.basename(p)


def check_unit_suffix_consistency(model):
    """In the DP and pricing layers, epsilon/delta/alpha-named parameters
    and fields must carry the phantom unit types, not bare double."""
    if not unit_rule_applies(model.path):
        return []
    findings = []
    toks = model.tokens
    for i, tok in enumerate(toks):
        if tok.kind != "ident" or tok.text != "double":
            continue
        j = i + 1
        while j < len(toks) and toks[j].text in UNIT_SKIP_QUALIFIERS:
            j += 1
        if j >= len(toks) or toks[j].kind != "ident":
            continue
        name = toks[j].text.lower()
        if not any(word in name for word in UNIT_WORDS):
            continue
        after = toks[j + 1].text if j + 1 < len(toks) else ""
        in_function = model.token_function[i] is not None
        is_param = after in (",", ")") and not in_function
        is_field = after in (";", "=") and not in_function \
            and model.token_type[i] is not None
        if not (is_param or is_field):
            continue
        kind = "parameter" if is_param else "field"
        findings.append(Finding(
            "unit-suffix-consistency", model.path, tok.line,
            f"{kind} `double {toks[j].text}` names a privacy quantity; use "
            "the unit types from common/units.h (Epsilon, EffectiveEpsilon, "
            "Delta, Alpha, Probability) so unit mix-ups fail to compile, or "
            "add `// lint:allow unit-suffix` with a justification"))
    return findings


MINT_CALL_IDENTS = ("answer", "perturb")
MINT_BARRIER_FUNCTION = "mint_answer_with_intent"


def mint_rule_applies(path):
    p = norm(path)
    return "src/market/" in p or "mint" in os.path.basename(p)


def check_unbarriered_mint(model):
    """In the market layer, every budget release must cross the WAL intent
    barrier: .answer()/.perturb() member calls are legal only inside
    mint_answer_with_intent, so a crash can orphan an intent (over-count)
    but never mint unrecorded epsilon (under-count)."""
    if not mint_rule_applies(model.path):
        return []
    findings = []
    toks = model.tokens
    for func in model.functions:
        if func.name == MINT_BARRIER_FUNCTION:
            continue
        for i in range(func.body_start + 1, func.body_end):
            t = toks[i]
            if t.kind != "ident" or t.text not in MINT_CALL_IDENTS:
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            if toks[i - 1].text not in (".", "->"):
                continue
            findings.append(Finding(
                "no-unbarriered-mint", model.path, t.line,
                f"`.{t.text}(...)` mints privacy budget outside "
                f"`{MINT_BARRIER_FUNCTION}`; a crash here under-counts "
                "released epsilon because no durable intent precedes the "
                "noise draw.  Route the call through "
                f"`{MINT_BARRIER_FUNCTION}` or add `// lint:allow mint` "
                "with a justification",
                function=func.name))
    return findings


TOKEN_RULES = (check_raw_random, check_bare_assert, check_float_eq_budget,
               check_byte_access, check_raw_samples_in_telemetry,
               check_telemetry_lookup_in_loop, check_unit_suffix_consistency,
               check_unbarriered_mint)
