"""Per-file source model: tokens plus reconstructed function scopes.

Brace tracking classifies every `{` as namespace / type / function /
plain block, so rules can ask "which function owns this token" and walk
cross-line statements instead of single lines.
"""

import os

from .tokenizer import tokenize

SOURCE_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do", "else",
                    "return"}
TYPE_KEYWORDS = {"class", "struct", "enum", "union"}


def norm(path):
    return path.replace(os.sep, "/")


def stem(path):
    base = os.path.basename(norm(path))
    for ext in SOURCE_EXTENSIONS:
        if base.endswith(ext):
            return base[: -len(ext)]
    return base


class Function:
    __slots__ = ("name", "qualifier", "type_scope", "sig_start", "body_start",
                 "body_end")

    def __init__(self, name, qualifier, type_scope, sig_start, body_start):
        self.name = name
        self.qualifier = qualifier      # Foo in `Foo::bar(...)`, or None
        self.type_scope = type_scope    # enclosing class/struct name, or None
        self.sig_start = sig_start      # token index of signature start
        self.body_start = body_start    # token index of the opening `{`
        self.body_end = None            # token index of the closing `}`

    @property
    def owner(self):
        """The class a method belongs to, from either the out-of-line
        qualifier (`Foo::bar`) or the enclosing type (inline `bar`)."""
        return self.qualifier or self.type_scope

    def is_structor(self):
        """Constructor or destructor: runs before the object is shared (or
        after it stopped being), so lock discipline does not apply."""
        owner = self.owner
        return owner is not None and self.name in (owner, "~" + owner)


class FileModel:
    """One parsed source file: tokens, escape hatches, and the function
    index (token_function[i] is the innermost Function covering token i, or
    None; token_type[i] is the innermost class/struct name)."""

    def __init__(self, path, text):
        self.path = path
        self.tokens, self.allows = tokenize(text)
        self.functions = []
        self.token_function = [None] * len(self.tokens)
        self.token_type = [None] * len(self.tokens)
        self._build_scopes()

    def segment_start(self, index):
        """Token index where the declaration segment owning tokens[index]
        begins (just past the previous `;`, `{` or `}`)."""
        i = index - 1
        while i >= 0 and self.tokens[i].text not in (";", "{", "}"):
            i -= 1
        return i + 1

    def _classify_brace(self, index, scope_stack):
        toks = self.tokens
        seg = toks[self.segment_start(index):index]
        texts = [t.text for t in seg]
        if "namespace" in texts:
            return ("ns", None)
        first_paren = texts.index("(") if "(" in texts else -1
        for kw in TYPE_KEYWORDS:
            if kw in texts:
                kw_at = texts.index(kw)
                if first_paren == -1 or kw_at < first_paren:
                    name = None
                    for t in seg[kw_at + 1:]:
                        if t.kind == "ident" and t.text != "final":
                            name = t.text
                            break
                    return ("type", name)
        in_function = any(kind == "func" for kind, _ in scope_stack)
        if first_paren > 0:
            before = texts[:first_paren]
            if any(t in CONTROL_KEYWORDS for t in before):
                return ("block", None)
            if "[" in before:  # lambda introducer
                return ("block", None) if in_function else ("func", "<lambda>")
            name_tok = seg[first_paren - 1]
            if name_tok.kind != "ident":
                return ("block", None)
            if in_function:
                # Nested braces with parens inside a function body are
                # blocks/lambdas, not new functions.
                return ("block", None)
            name = name_tok.text
            tilde_at = first_paren - 2
            if tilde_at >= 0 and texts[tilde_at] == "~":
                # Destructor: `~Foo() {` or `Foo::~Foo() {`.  Folding the
                # `~` into the name lets Function.is_structor() recognize
                # it, so lock discipline skips sole-owner teardown.
                name = "~" + name
                first_paren -= 1  # the qualifier check below looks past ~
            qualifier = None
            if first_paren >= 3 and texts[first_paren - 2] == "::":
                q = seg[first_paren - 3]
                if q.kind == "ident":
                    qualifier = q.text
            return ("func", (name, qualifier))
        if in_function:
            return ("block", None)
        if any(kind == "type" for kind, _ in scope_stack):
            return ("type", None)
        return ("block", None)

    def _build_scopes(self):
        toks = self.tokens
        scope_stack = []  # (kind, payload); payload: Function | type name
        for i, tok in enumerate(toks):
            current_func = None
            current_type = None
            for kind, payload in reversed(scope_stack):
                if current_func is None and kind == "func":
                    current_func = payload
                if current_type is None and kind == "type":
                    current_type = payload
            self.token_function[i] = current_func
            self.token_type[i] = current_type
            if tok.text == "{":
                kind, payload = self._classify_brace(i, scope_stack)
                if kind == "func":
                    name, qualifier = (payload if isinstance(payload, tuple)
                                       else (payload, None))
                    func = Function(name, qualifier, current_type,
                                    self.segment_start(i), i)
                    self.functions.append(func)
                    scope_stack.append(("func", func))
                else:
                    scope_stack.append((kind, payload))
            elif tok.text == "}":
                if scope_stack:
                    kind, payload = scope_stack.pop()
                    if kind == "func":
                        payload.body_end = i
        # Unterminated scopes (truncated file): close at EOF.
        for kind, payload in scope_stack:
            if kind == "func" and payload.body_end is None:
                payload.body_end = len(toks)


def statement_end(tokens, start, limit=160):
    """Token index just past the `;` terminating the statement at `start`
    (bounded; brace-bodied constructs cut off at `{`)."""
    depth = 0
    for i in range(start, min(start + limit, len(tokens))):
        t = tokens[i].text
        if t in ("(", "["):
            depth += 1
        elif t in (")", "]"):
            depth -= 1
        elif t == ";" and depth <= 0:
            return i + 1
        elif t == "{" and depth <= 0:
            return i
    return min(start + limit, len(tokens))


def statement_ranges(tokens, func):
    """Yields (start, end) token ranges approximating statements in a
    function body (split on top-level-ish `;`)."""
    start = func.body_start + 1
    i = start
    while i < func.body_end:
        if tokens[i].text in (";", "{", "}"):
            if i > start:
                yield (start, i)
            start = i + 1
        i += 1
    if start < func.body_end:
        yield (start, func.body_end)
