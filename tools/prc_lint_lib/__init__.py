"""prc_lint_lib: the project linter as an importable package.

`tools/prc_lint` is a thin CLI over this package, and
`scripts/check_units_adoption.py` imports the unit-suffix rule from here,
so there is exactly one tokenizer/scope engine in the repo.
"""

from .engine import (DEFAULT_SCAN_DIRS, REPO_ROOT, analyze_paths,
                     iter_source_files, main, self_test)
from .findings import Finding, RULES, RULE_NAMES
from .model import FileModel, SOURCE_EXTENSIONS, norm, stem
from .rules import check_unit_suffix_consistency, unit_rule_applies

__all__ = [
    "DEFAULT_SCAN_DIRS", "REPO_ROOT", "analyze_paths", "iter_source_files",
    "main", "self_test", "Finding", "RULES", "RULE_NAMES", "FileModel",
    "SOURCE_EXTENSIONS", "norm", "stem", "check_unit_suffix_consistency",
    "unit_rule_applies",
]
