"""Whole-program rules: fixed-point propagation over function summaries.

Call edges are resolved by NAME (C++ overload/virtual resolution is out of
reach for a tokenizer), which over-approximates the real call graph — a
deliberate choice for a privacy linter: over-taint produces a reviewable
finding with an escape hatch, under-taint silently leaks a pre-noise
estimate.

Rules:
  interproc-raw-taint       Raw-derived values must not reach an export
                            sink through ANY call chain (raw-returning
                            helpers, param-sinking helpers).
  budget-barrier-dominance  Every path from market/tool code to
                            LaplaceMechanism::perturb must cross
                            DataBroker::mint_answer_with_intent, the sole
                            function allowed to flush a WAL intent before
                            the noise draw (Theorem 4.2's ledger
                            conservation depends on that dominance).
  wal-intent-commit-pairing A function appending a WAL intent must have a
                            commit/absorb_orphaned reachable from itself
                            or a transitive caller, else recovery charges
                            every sale as an orphan.
  lock-discipline           PRC_GUARDED_BY fields need the mutex held, and
                            callers of `_locked` helpers must hold or
                            PRC_REQUIRES the callee's mutex.
  lock-order                Global lock-acquisition graph (which mutex is
                            taken while which is held, through any call
                            chain); every cycle is a potential deadlock.
                            The acyclic graph's topological order is the
                            canonical lock order (build/lock_order.txt).
  blocking-under-lock       Blocking operations (disk, sockets, pool
                            fan-out, cv waits) must not be reachable while
                            a PRC_GUARDED_BY mutex is held, unless the
                            hold is load-bearing (`lint:allow blocking`).
  atomic-discipline         Every std::mutex/std::atomic field carries a
                            documented annotation or an allow-list hatch;
                            relaxed atomics may not feed control flow or
                            non-CAS RMW outside their owning module.
"""

import os

from .findings import Finding
from .model import norm, stem
from .rules import (MINT_BARRIER_FUNCTION, RAW_SAMPLE_IDENTS,
                    mint_rule_applies)
from .summaries import ACCESSOR_STOPLIST, BLOCKING_CALL_IDENTS

MINT_MEMBER_NAMES = ("answer", "perturb")
WAL_INTENT_CALLS = {"append_intent"}
WAL_COMMIT_CALLS = {"append_commit", "absorb_orphaned"}


def _name_is_raw_source(name):
    return name in RAW_SAMPLE_IDENTS or name.startswith(("raw_", "exact_"))


def _build_name_index(summaries):
    by_name = {}
    for s in summaries:
        by_name.setdefault(s.name, []).append(s)
    return by_name


def _call_edges(summaries):
    """{caller_name: set(callee_names)} and the reverse map."""
    out = {}
    rev = {}
    for s in summaries:
        callees = out.setdefault(s.name, set())
        for c in s.calls:
            callees.add(c["name"])
            rev.setdefault(c["name"], set()).add(s.name)
    return out, rev


def _closure(seed, edges):
    """Transitive closure of `seed` names over the name graph `edges`."""
    seen = set(seed)
    frontier = list(seed)
    while frontier:
        name = frontier.pop()
        for nxt in edges.get(name, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


# ---------------------------------------------------------------------------
# interproc-raw-taint
# ---------------------------------------------------------------------------

def _raw_returning_names(summaries):
    """Fixed point: functions whose return value derives from a pre-noise
    estimate (directly, or through a raw-returning callee)."""
    raw = {s.name for s in summaries if s.returns_direct_raw}
    changed = True
    while changed:
        changed = False
        for s in summaries:
            if s.name in raw:
                continue
            for callee in s.return_dep_calls:
                if callee in raw or _name_is_raw_source(callee):
                    raw.add(s.name)
                    changed = True
                    break
    return raw


def _param_sinking_names(summaries):
    """Fixed point: functions that forward a parameter into an export sink
    (directly, or by passing it to another param-sinking function)."""
    sinking = set()
    for s in summaries:
        for flow in s.sink_flows:
            if any(d.startswith("param:") for d in flow["deps"]):
                sinking.add(s.name)
                break
    changed = True
    while changed:
        changed = False
        for s in summaries:
            if s.name in sinking:
                continue
            for flow in s.arg_flows:
                if flow["callee"] in sinking \
                        and any(d.startswith("param:")
                                for d in flow["deps"]):
                    sinking.add(s.name)
                    changed = True
                    break
    return sinking


def check_interproc_raw_taint(summaries):
    raw_names = _raw_returning_names(summaries)
    sinking = _param_sinking_names(summaries)

    def raw_deps(deps):
        hits = []
        for dep in deps:
            if dep == "RAW":
                hits.append("a raw estimate")
            elif dep.startswith("call:"):
                callee = dep[5:]
                if callee in raw_names or _name_is_raw_source(callee):
                    hits.append(f"`{callee}()` (returns a raw estimate)")
        return hits

    findings = []
    for s in summaries:
        for flow in s.sink_flows:
            hits = raw_deps(flow["deps"])
            if hits:
                findings.append(Finding(
                    "interproc-raw-taint", s.path, flow["line"],
                    f"value derived from {', '.join(hits)} reaches an "
                    "export sink through a call chain; only RELEASED "
                    "(perturbed) values may leave the process.  Perturb "
                    "first, or add `// lint:allow interproc-taint` with a "
                    "justification", function=s.name))
        for flow in s.arg_flows:
            if flow["callee"] not in sinking:
                continue
            hits = raw_deps(flow["deps"])
            if hits:
                findings.append(Finding(
                    "interproc-raw-taint", s.path, flow["line"],
                    f"value derived from {', '.join(hits)} is passed to "
                    f"`{flow['callee']}()`, which forwards its parameter "
                    "into an export sink; only RELEASED (perturbed) values "
                    "may leave the process.  Perturb first, or add "
                    "`// lint:allow interproc-taint` with a justification",
                    function=s.name))
    return findings


# ---------------------------------------------------------------------------
# budget-barrier-dominance
# ---------------------------------------------------------------------------

def _dominance_scope(path):
    p = norm(path)
    base = os.path.basename(p)
    if "lint_fixtures" in p:
        return "mint" in base or "barrier" in base
    return mint_rule_applies(p) or "tools/" in p


def _mint_reaching_names(summaries, blessed):
    """Names that transitively reach a `.answer()`/`.perturb()` mint call
    WITHOUT crossing mint_answer_with_intent.  Calls to the barrier are
    not followed: the barrier is the legal gateway, so a function whose
    only path to perturb runs through it does not 'reach' a mint.  A call
    whose line carries `lint:allow barrier|mint` is likewise not followed
    — one hatch at the true mint site blesses the whole chain above it,
    instead of demanding a hatch at every transitive caller."""
    reach = set()
    for s in summaries:
        if s.name == MINT_BARRIER_FUNCTION:
            continue
        if any(c["member"] and c["name"] in MINT_MEMBER_NAMES
               and not blessed(s.path, c["line"]) for c in s.calls):
            reach.add(s.name)
    changed = True
    while changed:
        changed = False
        for s in summaries:
            if s.name in reach or s.name == MINT_BARRIER_FUNCTION:
                continue
            for c in s.calls:
                if c["name"] == MINT_BARRIER_FUNCTION \
                        or blessed(s.path, c["line"]):
                    continue
                if c["name"] in reach:
                    reach.add(s.name)
                    changed = True
                    break
    return reach


def check_budget_barrier_dominance(summaries, allows_by_path):
    def blessed(path, line):
        allows = allows_by_path.get(path)
        if not allows:
            return False
        return line in allows.get("barrier", ()) \
            or line in allows.get("mint", ())

    reach = _mint_reaching_names(summaries, blessed)
    findings = []
    for s in summaries:
        if not _dominance_scope(s.path):
            continue
        if s.name == MINT_BARRIER_FUNCTION \
                or s.name in MINT_MEMBER_NAMES:
            continue
        seen = set()
        for c in s.calls:
            if c["name"] == MINT_BARRIER_FUNCTION or c["name"] in seen:
                continue
            direct_mint = c["member"] and c["name"] in MINT_MEMBER_NAMES
            if not direct_mint and c["name"] not in reach:
                continue
            seen.add(c["name"])
            how = ("mints privacy budget directly" if direct_mint
                   else "reaches `LaplaceMechanism::perturb` through its "
                        "call chain")
            findings.append(Finding(
                "budget-barrier-dominance", s.path, c["line"],
                f"`{c['name']}(...)` {how} without crossing "
                f"`{MINT_BARRIER_FUNCTION}`; every noise draw must be "
                "dominated by the WAL intent barrier or a crash can mint "
                "epsilon the ledger never saw (under-count).  Route the "
                "call through the broker, or add `// lint:allow barrier` "
                "with a justification", function=s.name))
    return findings


# ---------------------------------------------------------------------------
# wal-intent-commit-pairing
# ---------------------------------------------------------------------------

def _wal_scope(path):
    p = norm(path)
    base = os.path.basename(p)
    if "lint_fixtures" in p:
        return "wal" in base or "intent" in base
    # Tests construct orphaned logs on purpose (crash/recovery coverage).
    return "tests/" not in p


def check_wal_intent_commit_pairing(summaries):
    _, rev_edges = _call_edges(summaries)
    commit_reach = {s.name for s in summaries
                    if any(c["name"] in WAL_COMMIT_CALLS for c in s.calls)}
    changed = True
    while changed:
        changed = False
        for s in summaries:
            if s.name in commit_reach:
                continue
            if any(c["name"] in commit_reach for c in s.calls):
                commit_reach.add(s.name)
                changed = True
    findings = []
    for s in summaries:
        if not _wal_scope(s.path):
            continue
        if s.name.startswith("append_"):
            continue  # the WAL implementation itself
        intent_calls = [c for c in s.calls if c["name"] in WAL_INTENT_CALLS]
        if not intent_calls:
            continue
        # The commit may live in this function, below it, or in any
        # transitive caller (the broker commits AFTER the barrier returns).
        region = _closure({s.name}, rev_edges)
        if any(name in commit_reach for name in region):
            continue
        findings.append(Finding(
            "wal-intent-commit-pairing", s.path, intent_calls[0]["line"],
            "appends a WAL intent, but no `append_commit` or "
            "`absorb_orphaned` is reachable from this function or any "
            "caller; recovery would charge every sale here as an orphan "
            "(permanent epsilon over-count).  Pair the intent with a "
            "commit, or add `// lint:allow wal-pairing` with a "
            "justification", function=s.name))
    return findings


# ---------------------------------------------------------------------------
# lock-discipline (summary-based; local + interprocedural)
# ---------------------------------------------------------------------------

def _acquired_before(summary, mutex, order):
    if mutex in summary.requires:
        return True
    return any(a["order"] < order and mutex in a["names"]
               for a in summary.acquires)


def check_lock_discipline(summaries, fields_by_stem, by_name):
    findings = []
    for s in summaries:
        if s.is_locked_helper() or s.sig_annotated or s.is_structor():
            continue
        fields = fields_by_stem.get(stem(s.path), {})
        done = False
        for use in s.guarded_uses:
            mutex = fields.get(use["name"])
            if mutex is None:
                continue
            if _acquired_before(s, mutex, use["order"]):
                break  # the function holds the lock from there on
            findings.append(Finding(
                "lock-discipline", s.path, use["line"],
                f"field `{use['name']}` is PRC_GUARDED_BY({mutex}) but "
                f"`{s.name}` neither ends in _locked, acquires {mutex}, "
                "nor carries PRC_REQUIRES; lock first or add "
                "`// lint:allow lock` with a justification",
                function=s.name))
            done = True
            break  # one finding per function is enough signal
        if done:
            continue
        # Interprocedural half: calling a `_locked` helper asserts the
        # caller already holds the helper's mutex.
        flagged = set()
        for c in s.calls:
            if not c["name"].endswith("_locked") or c["name"] in flagged:
                continue
            callees = by_name.get(c["name"], ())
            mutex = next((r for cs in callees for r in cs.requires),
                         None) or "mutex_"
            if _acquired_before(s, mutex, c["order"]):
                continue
            flagged.add(c["name"])
            findings.append(Finding(
                "lock-discipline", s.path, c["line"],
                f"`{c['name']}` is a _locked helper (requires {mutex} "
                f"held) but `{s.name}` neither acquires {mutex} before "
                "the call nor carries PRC_REQUIRES; lock first or add "
                "`// lint:allow lock` with a justification",
                function=s.name))
    return findings


# ---------------------------------------------------------------------------
# lock-order (whole-program lock-acquisition graph)
# ---------------------------------------------------------------------------

def _qualified_requires(summary):
    """PRC_REQUIRES mutexes of a summary, qualified like lock events."""
    out = []
    owner = summary.owner or stem(summary.path)
    for r in summary.requires:
        out.append(f"{owner}::{r}" if r.endswith("_") else r)
    return out


def _held_at(events, req, order):
    """Qualified mutexes held at token `order`: everything PRC_REQUIRES
    plus every RAII event acquired earlier whose scope is still open."""
    held = set(req)
    for e in events:
        if e["order"] < order <= e["scope_end"]:
            held.update(e["mutexes"])
    return held


def _call_resolver(summaries):
    """resolve(caller, name) -> candidate callee summaries, narrowing the
    name-merged call graph before lock edges are drawn from it.  A bare
    name prefers candidates in the caller's own class, then the caller's
    own file, and only then falls back to the global merge — so
    `entries_.size()` inside PlanCache::insert resolves to PlanCache's
    own `size()` (a self-edge, which call edges drop) instead of wiring
    PlanCache::mutex_ to every OTHER class whose `size()` locks.
    Ubiquitous accessor names are never followed at all: almost every
    occurrence is a container/value accessor, and one collision with a
    locking method threads fictional edges across the whole graph."""
    by_name = {}
    for s in summaries:
        by_name.setdefault(s.name, []).append(s)

    def resolve(caller, name):
        if name in ACCESSOR_STOPLIST:
            return ()
        cands = by_name.get(name)
        if not cands:
            return ()
        owner = caller.owner
        if owner:
            same_class = [c for c in cands if c.owner == owner]
            if same_class:
                return same_class
        caller_stem = stem(caller.path)
        same_stem = [c for c in cands if stem(c.path) == caller_stem]
        if same_stem:
            return same_stem
        return cands

    return resolve


def _acquisition_closure(summaries, resolve):
    """summary-id -> qualified mutexes the function may ACQUIRE itself or
    through any callee.  PRC_REQUIRES mutexes are excluded: a REQUIRES
    callee holds its mutex, the acquisition (and the ordering edge)
    belongs to whichever caller actually locked it."""
    acq = {}
    for s in summaries:
        acc = acq.setdefault(id(s), set())
        for e in (s.lock_events or ()):
            acc.update(e["mutexes"])
    changed = True
    while changed:
        changed = False
        for s in summaries:
            acc = acq[id(s)]
            before = len(acc)
            for c in s.calls:
                for t in resolve(s, c["name"]):
                    acc.update(acq[id(t)])
            if len(acc) != before:
                changed = True
    return acq


def build_lock_graph(summaries):
    """(edges, nodes): edges maps (held, acquired) qualified-name pairs to
    the first (path, line, function) witness; nodes maps every mutex seen
    in a lock event to its first witness location.

    A multi-mutex scoped_lock event contributes no internal edges (the
    standard acquires its operands deadlock-free), and a callee acquiring
    the SAME mutex the caller holds is not drawn as a self-edge — name
    merging across classes makes that too noisy; overlapping re-acquisition
    inside ONE function is still reported (a genuine self-deadlock)."""
    resolve = _call_resolver(summaries)
    acq_closure = _acquisition_closure(summaries, resolve)
    edges = {}
    nodes = {}
    for s in sorted(summaries, key=lambda x: (x.path, x.line)):
        events = sorted(s.lock_events or (), key=lambda e: e["order"])
        if not events and not s.requires:
            continue
        req = _qualified_requires(s)
        for e in events:
            for m in e["mutexes"]:
                nodes.setdefault(m, (s.path, e["line"]))
            held = _held_at(events, req, e["order"])
            for h in sorted(held):
                for m in e["mutexes"]:
                    edges.setdefault((h, m), (s.path, e["line"], s.name))
        for c in s.calls:
            held = _held_at(events, req, c["order"])
            if not held:
                continue
            acquired = set()
            for t in resolve(s, c["name"]):
                acquired.update(acq_closure[id(t)])
            for m in sorted(acquired):
                for h in sorted(held):
                    if h == m:
                        continue
                    edges.setdefault((h, m), (s.path, c["line"], s.name))
    return edges, nodes


def _strongly_connected(nodes, adj):
    """Iterative Tarjan; returns the list of SCCs, each sorted, in a
    deterministic order."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]
    for root in sorted(nodes):
        if root in index:
            continue
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        work = [(root, iter(sorted(adj.get(root, ()))))]
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(sorted(scc))
    return sccs


def lock_graph_cycles(edges):
    """Deterministic list of cycles in the lock graph: self-loops as
    1-element lists, larger SCCs as sorted node lists."""
    adj = {}
    node_set = set()
    for (h, m) in edges:
        adj.setdefault(h, set()).add(m)
        node_set.add(h)
        node_set.add(m)
    cycles = [[h] for (h, m) in sorted(edges) if h == m]
    for scc in _strongly_connected(node_set, adj):
        if len(scc) > 1:
            cycles.append(scc)
    return cycles


def check_lock_order(summaries):
    edges, _ = build_lock_graph(summaries)
    adj = {}
    for (h, m) in edges:
        adj.setdefault(h, set()).add(m)
    findings = []
    for (h, m), (path, line, fn) in sorted(edges.items()):
        if h != m:
            continue
        findings.append(Finding(
            "lock-order", path, line,
            f"`{fn}` acquires `{m}` while a still-open scope already holds "
            "it — std::mutex self-deadlocks on re-acquisition.  Take both "
            "instances in one std::scoped_lock (deadlock-free) or narrow "
            "the first scope, or add `// lint:allow lockorder` with a "
            "justification", function=fn))
    for scc in lock_graph_cycles(edges):
        if len(scc) < 2:
            continue  # self-loops reported above
        internal = sorted((h, m) for h in scc
                          for m in adj.get(h, ()) if m in scc and h != m)
        detail = ", ".join(
            f"{h} -> {m} ({norm(edges[(h, m)][0])}:{edges[(h, m)][1]})"
            for h, m in internal)
        path, line, fn = min(edges[e] for e in internal)
        findings.append(Finding(
            "lock-order", path, line,
            "lock-order cycle (potential deadlock) between "
            f"{{{', '.join(scc)}}}: {detail}.  Pick one global order "
            "(see build/lock_order.txt) and restructure the later "
            "acquisition, or add `// lint:allow lockorder` with a "
            "justification", function=fn))
    return findings


def lock_order_report(summaries):
    """(report_text, cycles) — the deterministic build/lock_order.txt
    artifact.  Nodes and edges are restricted to those witnessed from
    src/ (fixtures and tests would pollute the canonical order)."""
    edges, nodes = build_lock_graph(summaries)

    def in_src(path):
        p = norm(path)
        return p.startswith("src/") or "/src/" in p

    src_edges = {e: w for e, w in edges.items() if in_src(w[0])}
    src_nodes = {n for e in src_edges for n in e}
    src_nodes.update(n for n, (path, _) in nodes.items() if in_src(path))
    cycles = lock_graph_cycles(src_edges)

    # Kahn's algorithm with a sorted frontier: a deterministic topological
    # order that is also stable under unrelated-node insertion.
    indegree = {n: 0 for n in src_nodes}
    adj = {}
    for (h, m) in src_edges:
        if h == m:
            continue
        adj.setdefault(h, set()).add(m)
        indegree[m] += 1
    order = []
    frontier = sorted(n for n, d in indegree.items() if d == 0)
    while frontier:
        n = frontier.pop(0)
        order.append(n)
        for m in sorted(adj.get(n, ())):
            indegree[m] -= 1
            if indegree[m] == 0:
                # Keep the frontier sorted (small graphs; clarity wins).
                frontier.append(m)
                frontier.sort()
    stuck = sorted(n for n in src_nodes if n not in order)

    lines = [
        "# Canonical lock-acquisition order (generated by prc_lint).",
        "# A thread holding a mutex may only acquire mutexes listed BELOW",
        "# it.  Derived from the whole-program lock graph; regenerate via",
        "#   ./tools/prc_lint --no-clang-tidy --lock-order-out build/lock_order.txt",
        "",
        "order:",
    ]
    for i, n in enumerate(order, 1):
        lines.append(f"  {i}. {n}")
    for n in stuck:
        lines.append(f"  !  {n}  (cycle member — no valid position)")
    lines.append("")
    lines.append("edges (held -> acquired, first witness):")
    for (h, m), (path, line, fn) in sorted(src_edges.items()):
        lines.append(f"  {h} -> {m}  ({norm(path)}:{line} in {fn})")
    if not src_edges:
        lines.append("  (none)")
    lines.append("")
    if cycles:
        lines.append("cycles:")
        for c in cycles:
            lines.append("  " + " <-> ".join(c))
    else:
        lines.append("cycles: none")
    return "\n".join(lines) + "\n", cycles


# ---------------------------------------------------------------------------
# blocking-under-lock
# ---------------------------------------------------------------------------

def _blocking_reach(summaries, blessed):
    """name -> witness chain string for functions from which an UNBLESSED
    blocking operation is reachable.  A `lint:allow blocking` on a site
    cuts the chain there: one hatch at the true blocking site blesses
    every transitive caller (mirrors budget-barrier-dominance).  cv waits
    are judged only at their own hold site — whether a wait is safe
    depends on which lock IT uses, which callers cannot see."""
    reach = {}
    for s in summaries:
        for b in (s.blocking_calls or ()):
            if b.get("cv_arg") is not None:
                continue
            if blessed(s.path, b["line"]):
                continue
            reach.setdefault(s.name, b["name"])
    changed = True
    while changed:
        changed = False
        for s in summaries:
            if s.name in reach:
                continue
            for c in s.calls:
                if c["name"] in BLOCKING_CALL_IDENTS:
                    continue  # direct sites recorded above
                if c["name"] not in reach or blessed(s.path, c["line"]):
                    continue
                reach[s.name] = f"{c['name']} -> {reach[c['name']]}"
                changed = True
                break
    return reach


def check_blocking_under_lock(summaries, fields_by_stem, allows_by_path):
    def blessed(path, line):
        allows = allows_by_path.get(path)
        return bool(allows) and line in allows.get("blocking", ())

    reach = _blocking_reach(summaries, blessed)
    findings = []
    for s in summaries:
        fields = fields_by_stem.get(stem(s.path), {})
        guard_mutexes = set(fields.values())
        if not guard_mutexes:
            continue
        events = sorted(s.lock_events or (), key=lambda e: e["order"])
        req = [r for r in s.requires if r in guard_mutexes]
        if not events and not req:
            continue

        def held_guards(order):
            """bare guard-mutex name -> lock variable, for every guard
            mutex held at `order`.  Only mutexes that GUARD annotated
            fields count: a pure serialization mutex protects no reader
            from queueing behind the blocking call."""
            held = {r: None for r in req}
            for e in events:
                if e["order"] < order <= e["scope_end"]:
                    for m in e["mutexes"]:
                        bare = m.rsplit("::", 1)[-1]
                        if bare in guard_mutexes:
                            held[bare] = e.get("var")
            return held

        for b in (s.blocking_calls or ()):
            held = held_guards(b["order"])
            cv_arg = b.get("cv_arg")
            if cv_arg:
                # The wait releases ITS lock while sleeping; only other
                # mutexes held across the wait are findings.
                held = {m: v for m, v in held.items() if v != cv_arg}
            if not held:
                continue
            mutexes = ", ".join(sorted(held))
            findings.append(Finding(
                "blocking-under-lock", s.path, b["line"],
                f"`{b['name']}(...)` can block (disk/socket/pool/cv) while "
                f"`{mutexes}` — a PRC_GUARDED_BY mutex — is held; every "
                "reader of the guarded data queues behind the slow "
                "operation.  Stage outside the lock and commit under it "
                "(QuoteCache-style), or add `// lint:allow blocking` with "
                "a justification if the hold is load-bearing",
                function=s.name))
        seen = set()
        for c in s.calls:
            if c["name"] in BLOCKING_CALL_IDENTS or c["name"] not in reach \
                    or c["name"] in seen:
                continue
            held = held_guards(c["order"])
            if not held:
                continue
            seen.add(c["name"])
            mutexes = ", ".join(sorted(held))
            findings.append(Finding(
                "blocking-under-lock", s.path, c["line"],
                f"`{c['name']}(...)` transitively reaches blocking "
                f"`{reach[c['name']]}` while `{mutexes}` — a "
                "PRC_GUARDED_BY mutex — is held; every reader of the "
                "guarded data queues behind the slow operation.  Stage "
                "outside the lock and commit under it, or add "
                "`// lint:allow blocking` with a justification if the "
                "hold is load-bearing", function=s.name))
    return findings


# ---------------------------------------------------------------------------
# atomic-discipline
# ---------------------------------------------------------------------------

def _atomic_scope(path):
    p = norm(path)
    base = os.path.basename(p)
    if "lint_fixtures" in p:
        return "atomic" in base
    return p.startswith("src/") or "/src/" in p


def check_atomic_discipline(summaries, concurrency_by_path, fields_by_stem):
    decls_by_stem = {}
    guards_by_stem = {}
    for path, conc in concurrency_by_path.items():
        st = stem(path)
        decls_by_stem.setdefault(st, []).extend(
            dict(d, path=path) for d in conc.get("decls", ()))
        guards_by_stem.setdefault(st, set()).update(conc.get("guards", ()))

    findings = []
    # (a) Coverage: every concurrency primitive is documented.  A mutex
    # must be named by some annotation (it guards a field, or an API
    # declares it via REQUIRES/ACQUIRE/EXCLUDES); an atomic must either
    # be PRC_GUARDED_BY a mutex (belt-and-braces fields) or carry an
    # allow-list hatch spelling out its ordering contract.
    for st in sorted(decls_by_stem):
        guards = guards_by_stem.get(st, set())
        fields = fields_by_stem.get(st, {})
        for d in sorted(decls_by_stem[st],
                        key=lambda d: (norm(d["path"]), d["line"])):
            if not _atomic_scope(d["path"]):
                continue
            where = f"{d['owner']}::{d['name']}" if d["owner"] else d["name"]
            if d["kind"] == "mutex":
                if d["name"] in guards:
                    continue
                findings.append(Finding(
                    "atomic-discipline", d["path"], d["line"],
                    f"mutex `{where}` is referenced by no thread-safety "
                    "annotation: nothing documents what it protects.  Add "
                    "PRC_GUARDED_BY(...) to the fields it guards (or "
                    "PRC_REQUIRES/PRC_EXCLUDES on the API that uses it), "
                    "or add `// lint:allow atomic` naming its role",
                    function=None))
            else:
                if d["name"] in fields:
                    continue
                findings.append(Finding(
                    "atomic-discipline", d["path"], d["line"],
                    f"atomic field `{where}` has no documented ordering "
                    "contract.  Annotate it PRC_GUARDED_BY(...) if a mutex "
                    "already serializes its writers, or add "
                    "`// lint:allow atomic` stating the memory-order "
                    "discipline it relies on", function=None))

    # (b) Relaxed atomics may not feed control flow or non-CAS RMW outside
    # their owning module: the ordering contract that makes the access
    # safe lives with the declaring class, and cross-module uses silently
    # turn monitoring state into synchronization.
    atomic_index = {}
    for st, decls in decls_by_stem.items():
        for d in decls:
            if d["kind"] == "atomic":
                atomic_index.setdefault(d["name"], []).append(d)

    def owning_decl(s, name):
        """The atomic declaration a member-style use in summary `s` refers
        to, matched by owner class (namespace-scope atomics are exempt:
        name matching across free functions is too weak to trust)."""
        for d in atomic_index.get(name, ()):
            if d["owner"] is not None and s.owner == d["owner"]:
                return d
        return None

    for s in summaries:
        if not _atomic_scope(s.path):
            continue
        s_stem = stem(s.path)
        for r in (s.rmw_uses or ()):
            d = owning_decl(s, r["name"])
            if d is None or stem(d["path"]) == s_stem:
                continue
            findings.append(Finding(
                "atomic-discipline", s.path, r["line"],
                f"non-CAS read-modify-write on atomic `{d['owner']}::"
                f"{r['name']}` outside its owning module "
                f"({norm(d['path'])}); use the owner's API (or an "
                "explicit fetch_add with a documented order), or add "
                "`// lint:allow atomic` with a justification",
                function=s.name))
        for b in (s.branch_uses or ()):
            d = owning_decl(s, b["name"])
            if d is None or stem(d["path"]) == s_stem:
                continue
            findings.append(Finding(
                "atomic-discipline", s.path, b["line"],
                f"control-flow decision on relaxed atomic `{d['owner']}::"
                f"{b['name']}` outside its owning module "
                f"({norm(d['path'])}); a relaxed load carries no "
                "happens-before edge, so branching on it elsewhere turns "
                "monitoring state into unsynchronized logic.  Route the "
                "decision through the owner's API, or add "
                "`// lint:allow atomic` with a justification",
                function=s.name))
    return findings


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def run_interproc(summaries, guarded_fields_by_path, allows_by_path=None,
                  concurrency_by_path=None):
    """All whole-program findings for one analysis universe."""
    fields_by_stem = {}
    for path, fields in guarded_fields_by_path.items():
        fields_by_stem.setdefault(stem(path), {}).update(fields)
    by_name = _build_name_index(summaries)
    findings = []
    findings.extend(check_interproc_raw_taint(summaries))
    findings.extend(check_budget_barrier_dominance(summaries,
                                                   allows_by_path or {}))
    findings.extend(check_wal_intent_commit_pairing(summaries))
    findings.extend(check_lock_discipline(summaries, fields_by_stem,
                                          by_name))
    findings.extend(check_lock_order(summaries))
    findings.extend(check_blocking_under_lock(summaries, fields_by_stem,
                                              allows_by_path or {}))
    findings.extend(check_atomic_discipline(summaries,
                                            concurrency_by_path or {},
                                            fields_by_stem))
    return findings
