"""Whole-program rules: fixed-point propagation over function summaries.

Call edges are resolved by NAME (C++ overload/virtual resolution is out of
reach for a tokenizer), which over-approximates the real call graph — a
deliberate choice for a privacy linter: over-taint produces a reviewable
finding with an escape hatch, under-taint silently leaks a pre-noise
estimate.

Rules:
  interproc-raw-taint       Raw-derived values must not reach an export
                            sink through ANY call chain (raw-returning
                            helpers, param-sinking helpers).
  budget-barrier-dominance  Every path from market/tool code to
                            LaplaceMechanism::perturb must cross
                            DataBroker::mint_answer_with_intent, the sole
                            function allowed to flush a WAL intent before
                            the noise draw (Theorem 4.2's ledger
                            conservation depends on that dominance).
  wal-intent-commit-pairing A function appending a WAL intent must have a
                            commit/absorb_orphaned reachable from itself
                            or a transitive caller, else recovery charges
                            every sale as an orphan.
  lock-discipline           PRC_GUARDED_BY fields need the mutex held, and
                            callers of `_locked` helpers must hold or
                            PRC_REQUIRES the callee's mutex.
"""

import os

from .findings import Finding
from .model import norm, stem
from .rules import (MINT_BARRIER_FUNCTION, RAW_SAMPLE_IDENTS,
                    mint_rule_applies)

MINT_MEMBER_NAMES = ("answer", "perturb")
WAL_INTENT_CALLS = {"append_intent"}
WAL_COMMIT_CALLS = {"append_commit", "absorb_orphaned"}


def _name_is_raw_source(name):
    return name in RAW_SAMPLE_IDENTS or name.startswith(("raw_", "exact_"))


def _build_name_index(summaries):
    by_name = {}
    for s in summaries:
        by_name.setdefault(s.name, []).append(s)
    return by_name


def _call_edges(summaries):
    """{caller_name: set(callee_names)} and the reverse map."""
    out = {}
    rev = {}
    for s in summaries:
        callees = out.setdefault(s.name, set())
        for c in s.calls:
            callees.add(c["name"])
            rev.setdefault(c["name"], set()).add(s.name)
    return out, rev


def _closure(seed, edges):
    """Transitive closure of `seed` names over the name graph `edges`."""
    seen = set(seed)
    frontier = list(seed)
    while frontier:
        name = frontier.pop()
        for nxt in edges.get(name, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


# ---------------------------------------------------------------------------
# interproc-raw-taint
# ---------------------------------------------------------------------------

def _raw_returning_names(summaries):
    """Fixed point: functions whose return value derives from a pre-noise
    estimate (directly, or through a raw-returning callee)."""
    raw = {s.name for s in summaries if s.returns_direct_raw}
    changed = True
    while changed:
        changed = False
        for s in summaries:
            if s.name in raw:
                continue
            for callee in s.return_dep_calls:
                if callee in raw or _name_is_raw_source(callee):
                    raw.add(s.name)
                    changed = True
                    break
    return raw


def _param_sinking_names(summaries):
    """Fixed point: functions that forward a parameter into an export sink
    (directly, or by passing it to another param-sinking function)."""
    sinking = set()
    for s in summaries:
        for flow in s.sink_flows:
            if any(d.startswith("param:") for d in flow["deps"]):
                sinking.add(s.name)
                break
    changed = True
    while changed:
        changed = False
        for s in summaries:
            if s.name in sinking:
                continue
            for flow in s.arg_flows:
                if flow["callee"] in sinking \
                        and any(d.startswith("param:")
                                for d in flow["deps"]):
                    sinking.add(s.name)
                    changed = True
                    break
    return sinking


def check_interproc_raw_taint(summaries):
    raw_names = _raw_returning_names(summaries)
    sinking = _param_sinking_names(summaries)

    def raw_deps(deps):
        hits = []
        for dep in deps:
            if dep == "RAW":
                hits.append("a raw estimate")
            elif dep.startswith("call:"):
                callee = dep[5:]
                if callee in raw_names or _name_is_raw_source(callee):
                    hits.append(f"`{callee}()` (returns a raw estimate)")
        return hits

    findings = []
    for s in summaries:
        for flow in s.sink_flows:
            hits = raw_deps(flow["deps"])
            if hits:
                findings.append(Finding(
                    "interproc-raw-taint", s.path, flow["line"],
                    f"value derived from {', '.join(hits)} reaches an "
                    "export sink through a call chain; only RELEASED "
                    "(perturbed) values may leave the process.  Perturb "
                    "first, or add `// lint:allow interproc-taint` with a "
                    "justification", function=s.name))
        for flow in s.arg_flows:
            if flow["callee"] not in sinking:
                continue
            hits = raw_deps(flow["deps"])
            if hits:
                findings.append(Finding(
                    "interproc-raw-taint", s.path, flow["line"],
                    f"value derived from {', '.join(hits)} is passed to "
                    f"`{flow['callee']}()`, which forwards its parameter "
                    "into an export sink; only RELEASED (perturbed) values "
                    "may leave the process.  Perturb first, or add "
                    "`// lint:allow interproc-taint` with a justification",
                    function=s.name))
    return findings


# ---------------------------------------------------------------------------
# budget-barrier-dominance
# ---------------------------------------------------------------------------

def _dominance_scope(path):
    p = norm(path)
    base = os.path.basename(p)
    if "lint_fixtures" in p:
        return "mint" in base or "barrier" in base
    return mint_rule_applies(p) or "tools/" in p


def _mint_reaching_names(summaries, blessed):
    """Names that transitively reach a `.answer()`/`.perturb()` mint call
    WITHOUT crossing mint_answer_with_intent.  Calls to the barrier are
    not followed: the barrier is the legal gateway, so a function whose
    only path to perturb runs through it does not 'reach' a mint.  A call
    whose line carries `lint:allow barrier|mint` is likewise not followed
    — one hatch at the true mint site blesses the whole chain above it,
    instead of demanding a hatch at every transitive caller."""
    reach = set()
    for s in summaries:
        if s.name == MINT_BARRIER_FUNCTION:
            continue
        if any(c["member"] and c["name"] in MINT_MEMBER_NAMES
               and not blessed(s.path, c["line"]) for c in s.calls):
            reach.add(s.name)
    changed = True
    while changed:
        changed = False
        for s in summaries:
            if s.name in reach or s.name == MINT_BARRIER_FUNCTION:
                continue
            for c in s.calls:
                if c["name"] == MINT_BARRIER_FUNCTION \
                        or blessed(s.path, c["line"]):
                    continue
                if c["name"] in reach:
                    reach.add(s.name)
                    changed = True
                    break
    return reach


def check_budget_barrier_dominance(summaries, allows_by_path):
    def blessed(path, line):
        allows = allows_by_path.get(path)
        if not allows:
            return False
        return line in allows.get("barrier", ()) \
            or line in allows.get("mint", ())

    reach = _mint_reaching_names(summaries, blessed)
    findings = []
    for s in summaries:
        if not _dominance_scope(s.path):
            continue
        if s.name == MINT_BARRIER_FUNCTION \
                or s.name in MINT_MEMBER_NAMES:
            continue
        seen = set()
        for c in s.calls:
            if c["name"] == MINT_BARRIER_FUNCTION or c["name"] in seen:
                continue
            direct_mint = c["member"] and c["name"] in MINT_MEMBER_NAMES
            if not direct_mint and c["name"] not in reach:
                continue
            seen.add(c["name"])
            how = ("mints privacy budget directly" if direct_mint
                   else "reaches `LaplaceMechanism::perturb` through its "
                        "call chain")
            findings.append(Finding(
                "budget-barrier-dominance", s.path, c["line"],
                f"`{c['name']}(...)` {how} without crossing "
                f"`{MINT_BARRIER_FUNCTION}`; every noise draw must be "
                "dominated by the WAL intent barrier or a crash can mint "
                "epsilon the ledger never saw (under-count).  Route the "
                "call through the broker, or add `// lint:allow barrier` "
                "with a justification", function=s.name))
    return findings


# ---------------------------------------------------------------------------
# wal-intent-commit-pairing
# ---------------------------------------------------------------------------

def _wal_scope(path):
    p = norm(path)
    base = os.path.basename(p)
    if "lint_fixtures" in p:
        return "wal" in base or "intent" in base
    # Tests construct orphaned logs on purpose (crash/recovery coverage).
    return "tests/" not in p


def check_wal_intent_commit_pairing(summaries):
    _, rev_edges = _call_edges(summaries)
    commit_reach = {s.name for s in summaries
                    if any(c["name"] in WAL_COMMIT_CALLS for c in s.calls)}
    changed = True
    while changed:
        changed = False
        for s in summaries:
            if s.name in commit_reach:
                continue
            if any(c["name"] in commit_reach for c in s.calls):
                commit_reach.add(s.name)
                changed = True
    findings = []
    for s in summaries:
        if not _wal_scope(s.path):
            continue
        if s.name.startswith("append_"):
            continue  # the WAL implementation itself
        intent_calls = [c for c in s.calls if c["name"] in WAL_INTENT_CALLS]
        if not intent_calls:
            continue
        # The commit may live in this function, below it, or in any
        # transitive caller (the broker commits AFTER the barrier returns).
        region = _closure({s.name}, rev_edges)
        if any(name in commit_reach for name in region):
            continue
        findings.append(Finding(
            "wal-intent-commit-pairing", s.path, intent_calls[0]["line"],
            "appends a WAL intent, but no `append_commit` or "
            "`absorb_orphaned` is reachable from this function or any "
            "caller; recovery would charge every sale here as an orphan "
            "(permanent epsilon over-count).  Pair the intent with a "
            "commit, or add `// lint:allow wal-pairing` with a "
            "justification", function=s.name))
    return findings


# ---------------------------------------------------------------------------
# lock-discipline (summary-based; local + interprocedural)
# ---------------------------------------------------------------------------

def _acquired_before(summary, mutex, order):
    if mutex in summary.requires:
        return True
    return any(a["order"] < order and mutex in a["names"]
               for a in summary.acquires)


def check_lock_discipline(summaries, fields_by_stem, by_name):
    findings = []
    for s in summaries:
        if s.is_locked_helper() or s.sig_annotated or s.is_structor():
            continue
        fields = fields_by_stem.get(stem(s.path), {})
        done = False
        for use in s.guarded_uses:
            mutex = fields.get(use["name"])
            if mutex is None:
                continue
            if _acquired_before(s, mutex, use["order"]):
                break  # the function holds the lock from there on
            findings.append(Finding(
                "lock-discipline", s.path, use["line"],
                f"field `{use['name']}` is PRC_GUARDED_BY({mutex}) but "
                f"`{s.name}` neither ends in _locked, acquires {mutex}, "
                "nor carries PRC_REQUIRES; lock first or add "
                "`// lint:allow lock` with a justification",
                function=s.name))
            done = True
            break  # one finding per function is enough signal
        if done:
            continue
        # Interprocedural half: calling a `_locked` helper asserts the
        # caller already holds the helper's mutex.
        flagged = set()
        for c in s.calls:
            if not c["name"].endswith("_locked") or c["name"] in flagged:
                continue
            callees = by_name.get(c["name"], ())
            mutex = next((r for cs in callees for r in cs.requires),
                         None) or "mutex_"
            if _acquired_before(s, mutex, c["order"]):
                continue
            flagged.add(c["name"])
            findings.append(Finding(
                "lock-discipline", s.path, c["line"],
                f"`{c['name']}` is a _locked helper (requires {mutex} "
                f"held) but `{s.name}` neither acquires {mutex} before "
                "the call nor carries PRC_REQUIRES; lock first or add "
                "`// lint:allow lock` with a justification",
                function=s.name))
    return findings


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def run_interproc(summaries, guarded_fields_by_path, allows_by_path=None):
    """All whole-program findings for one analysis universe."""
    fields_by_stem = {}
    for path, fields in guarded_fields_by_path.items():
        fields_by_stem.setdefault(stem(path), {}).update(fields)
    by_name = _build_name_index(summaries)
    findings = []
    findings.extend(check_interproc_raw_taint(summaries))
    findings.extend(check_budget_barrier_dominance(summaries,
                                                   allows_by_path or {}))
    findings.extend(check_wal_intent_commit_pairing(summaries))
    findings.extend(check_lock_discipline(summaries, fields_by_stem,
                                          by_name))
    return findings
