// Interactive-ish explorer: for a user-supplied contract, print the whole
// decision chain the broker walks — required sampling probability, the
// optimizer's (alpha', delta', epsilon) split, the amplified budget, the
// expected answer variance and the Theorem 4.2 price — before spending
// anything.  Useful for choosing a contract and budget offline.
//
// Run: ./build/examples/accuracy_explorer [alpha delta]
//      ./build/examples/accuracy_explorer 0.05 0.8
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "data/citypulse.h"
#include "data/dataset.h"
#include "dp/optimizer.h"
#include "estimator/accuracy.h"
#include "pricing/pricing.h"

int main(int argc, char** argv) {
  using namespace prc;

  query::AccuracySpec contract{0.05, 0.8};
  if (argc == 3) {
    contract.alpha = std::atof(argv[1]);
    contract.delta = std::atof(argv[2]);
  }
  contract.validate();

  const auto records = data::CityPulseGenerator().generate();
  const std::size_t n = records.size();
  const std::size_t k = 8;

  std::cout << "contract " << contract.to_string() << " over n=" << n
            << " records on k=" << k << " nodes\n\n";

  const double p_required = std::min(
      1.0, estimator::required_sampling_probability(contract, k, n));
  std::cout << "Theorem 3.3 sampling probability : " << p_required << " ("
            << static_cast<std::size_t>(p_required * static_cast<double>(n))
            << " samples expected)\n";

  const dp::PerturbationOptimizer optimizer;
  const pricing::VarianceModel model(n, k);
  const pricing::InverseVariancePricing pricing(
      model, query::AccuracySpec{0.1, 0.5}, 100.0, 1.0);

  std::cout << "\nplans at increasing cache levels:\n\n";
  TextTable table({"p_cache", "alpha'", "delta'", "epsilon", "eps'(amplified)",
                   "noise_scale", "plan_variance", "price"});
  for (double factor : {1.5, 2.0, 4.0, 8.0, 16.0}) {
    const double p = std::min(1.0, p_required * factor);
    const auto plan = optimizer.optimize(contract, p, k, n);
    if (!plan) {
      table.add_row({table.format(p), "infeasible", "-", "-", "-", "-", "-",
                     "-"});
      continue;
    }
    table.add_numeric_row({p, plan->alpha_prime, plan->delta_prime,
                           plan->epsilon, plan->epsilon_amplified,
                           plan->laplace_scale, plan->total_variance(k),
                           pricing.price(contract)});
  }
  std::cout << table.to_string();

  std::cout << "\ncontract-level variance sold: "
            << model.contract_variance(contract)
            << "  |  Thm 4.2 price: " << pricing.price(contract) << "\n"
            << "note: the price is keyed on the contract (its variance), not\n"
            << "on the cache level - more cached samples buy a smaller\n"
            << "effective epsilon', never a different bill.\n";
  return 0;
}
