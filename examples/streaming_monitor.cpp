// Continuous monitoring: data streams in from the sensors while an agency
// keeps a three-band pollution dashboard fresh under ONE total privacy
// budget per reporting period (the WorkloadAnswerer splits it across the
// bands, weighting the band regulators care about most).
//
// Demonstrates: append_data / refresh_samples (incremental collection),
// WorkloadAnswerer budget splitting, and the cost ledger of a long-running
// deployment.
//
// Run: ./build/examples/streaming_monitor
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "data/citypulse.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "dp/workload_answerer.h"
#include "iot/network.h"
#include "query/range_query.h"

int main() {
  using namespace prc;

  // Two months of ozone readings, streamed week by week.
  const auto records = data::CityPulseGenerator().generate();
  const data::Dataset dataset(records);
  const auto& ozone = dataset.column(data::AirQualityIndex::kOzone);
  const auto& values = ozone.values();
  const std::size_t kNodes = 8;
  const std::size_t week = 288 * 7;  // records per week at 5-min cadence

  // Bootstrap with the first week.
  std::vector<double> seen(values.begin(),
                           values.begin() + static_cast<std::ptrdiff_t>(week));
  Rng rng(42);
  iot::FlatNetwork network(data::partition_values(
      seen, kNodes, data::PartitionStrategy::kRoundRobin, rng));
  network.ensure_sampling_probability(0.12);

  const std::vector<query::RangeQuery> bands = {
      {0.0, 50.0}, {50.0, 100.0}, {100.0, 200.0}};
  // The unhealthy band matters most to the regulator: weight it 16x, which
  // the cube-root allocation turns into ~2.5x the per-band budget.
  const std::vector<double> weights = {1.0, 1.0, 16.0};
  const double weekly_epsilon = 0.5;

  dp::WorkloadAnswerer answerer;
  Rng noise_rng(43);

  TextTable dashboard({"week", "good", "moderate", "unhealthy",
                       "unhealthy_exact", "eps'_spent", "uplink_kB"});
  std::size_t reported_week = 1;
  double cumulative_amplified = 0.0;
  for (std::size_t offset = week; offset < values.size(); offset += week) {
    const std::size_t end = std::min(offset + week, values.size());
    std::vector<double> batch(
        values.begin() + static_cast<std::ptrdiff_t>(offset),
        values.begin() + static_cast<std::ptrdiff_t>(end));
    seen.insert(seen.end(), batch.begin(), batch.end());
    // This week's readings arrive at one gateway node (rotating).
    network.append_data(reported_week % kNodes, batch);
    network.refresh_samples();

    const auto result = answerer.answer(network, bands, weekly_epsilon,
                                        dp::BudgetSplit::kWeighted,
                                        noise_rng, weights);
    cumulative_amplified += result.total_epsilon_amplified;
    const double unhealthy_exact = static_cast<double>(
        query::exact_range_count(seen, bands[2]));
    dashboard.add_row(
        {std::to_string(reported_week),
         dashboard.format(result.answers[0].value),
         dashboard.format(result.answers[1].value),
         dashboard.format(result.answers[2].value),
         dashboard.format(unhealthy_exact),
         dashboard.format(result.total_epsilon_amplified),
         dashboard.format(
             static_cast<double>(network.stats().uplink_bytes) / 1024.0)});
    ++reported_week;
  }
  std::cout << "weekly pollution dashboard (weighted budget "
            << weekly_epsilon << " per week, unhealthy band weighted 16x)\n\n"
            << dashboard.to_string() << "\n"
            << "cumulative amplified budget over the deployment: "
            << cumulative_amplified << "\n"
            << "total uplink: " << network.stats().uplink_bytes / 1024
            << " kB vs " << values.size() * sizeof(double) / 1024
            << " kB raw\n";
  return 0;
}
