// Smart-city scenario from the paper's introduction: an environmental
// agency monitors pollution levels by range counting over road-side
// sensors, without collecting the raw data.
//
// The agency tracks three standing questions per air-quality index:
//   - how many readings were in the "good" band,
//   - how many in the "moderate" band,
//   - how many in the "unhealthy" band,
// and refreshes them each reporting period under one accuracy contract.
// The one-sample-many-queries property means only the FIRST period pays
// for sampling; later periods reuse the cache.
//
// Run: ./build/examples/pollution_monitoring [csv-path]
#include <iomanip>
#include <iostream>

#include "common/table.h"
#include "data/citypulse.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "dp/private_counting.h"
#include "iot/network.h"
#include "query/range_query.h"

namespace {

struct Band {
  const char* label;
  double lower;
  double upper;
};

constexpr Band kBands[] = {
    {"good", 0.0, 50.0},
    {"moderate", 50.0, 100.0},
    {"unhealthy", 100.0, 200.0},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace prc;

  const auto records = argc > 1
                           ? data::read_records_csv(argv[1])
                           : data::CityPulseGenerator().generate();
  const data::Dataset dataset(records);
  const query::AccuracySpec contract{0.04, 0.85};

  std::cout << "Pollution monitoring over " << dataset.record_count()
            << " records, contract " << contract.to_string() << "\n\n";

  TextTable report({"index", "band", "private_count", "share", "exact",
                    "err"});
  std::size_t total_uplink = 0;
  for (auto index : data::kAllAirQualityIndexes) {
    const auto& column = dataset.column(index);

    Rng rng(static_cast<std::uint64_t>(index) + 11);
    auto node_data = data::partition_values(
        column.values(), 8, data::PartitionStrategy::kContiguous, rng);
    iot::FlatNetwork network(std::move(node_data));
    dp::PrivateRangeCounter counter(network, {},
                                    static_cast<std::uint64_t>(index) + 97);

    for (const auto& band : kBands) {
      const query::RangeQuery range{band.lower, band.upper};
      const auto answer = counter.answer(range, contract);
      const double truth = static_cast<double>(
          column.exact_range_count(range.lower, range.upper));
      report.add_row(
          {std::string(data::index_name(index)), band.label,
           report.format(answer.value),
           report.format(answer.value / static_cast<double>(column.size())),
           report.format(truth),
           report.format(std::abs(answer.value - truth))});
    }
    total_uplink += network.stats().uplink_bytes;
  }
  std::cout << report.to_string();

  const std::size_t raw_bytes =
      dataset.record_count() * data::kAirQualityIndexCount * sizeof(double);
  std::cout << "\nall 15 band counts served from " << total_uplink
            << " uplink bytes; shipping raw data would cost " << raw_bytes
            << " bytes (" << std::fixed << std::setprecision(1)
            << static_cast<double>(raw_bytes) /
                   static_cast<double>(total_uplink)
            << "x more)\n";
  return 0;
}
