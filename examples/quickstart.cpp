// Quickstart: the five-minute tour of the prc public API.
//
//   1. generate a CityPulse-like dataset,
//   2. spread it over a simulated IoT network,
//   3. ask for a differentially private (alpha, delta)-range counting,
//   4. inspect the plan the broker used and what it cost to communicate.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <iostream>

#include "data/citypulse.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "dp/private_counting.h"
#include "iot/network.h"
#include "query/range_query.h"

int main() {
  using namespace prc;

  // 1. A two-month air-quality dataset (17,568 records, five indexes).
  const auto records = data::CityPulseGenerator().generate();
  const data::Dataset dataset(records);
  const auto& ozone = dataset.column(data::AirQualityIndex::kOzone);
  std::cout << "dataset: " << dataset.record_count()
            << " records, ozone domain [" << ozone.min() << ", "
            << ozone.max() << "]\n";

  // 2. Eight sensor nodes, flat network, base station collects samples.
  Rng rng(1);
  auto node_data = data::partition_values(
      ozone.values(), 8, data::PartitionStrategy::kRoundRobin, rng);
  iot::FlatNetwork network(std::move(node_data));

  // 3. "How many readings had ozone between 60 and 110, within 5% of the
  //    dataset size, with 80% confidence - privately?"
  dp::PrivateRangeCounter counter(network);
  const query::RangeQuery range{60.0, 110.0};
  const query::AccuracySpec contract{0.05, 0.8};
  const auto answer = counter.answer(range, contract);

  const double truth =
      static_cast<double>(ozone.exact_range_count(range.lower, range.upper));
  std::cout << "query " << range.to_string() << " with contract "
            << contract.to_string() << "\n"
            << "  private answer : " << answer.value << "\n"
            << "  exact count    : " << truth << " (never leaves the broker)\n"
            << "  abs error      : " << std::abs(answer.value - truth)
            << "  (contract allows "
            << contract.alpha * static_cast<double>(ozone.size())
            << ")\n";

  // 4. The plan behind the answer and the communication bill.
  std::cout << "  plan           : " << answer.plan.to_string() << "\n"
            << "  effective DP   : eps' = " << answer.plan.epsilon_amplified
            << " (amplified from eps = " << answer.plan.epsilon << ")\n"
            << "  uplink traffic : " << network.stats().uplink_bytes
            << " bytes for " << network.stats().samples_transferred
            << " samples (raw data would be "
            << ozone.size() * sizeof(double) << " bytes)\n";
  return 0;
}
