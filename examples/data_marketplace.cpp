// The full Fig. 1 system model as a running marketplace:
//
//   IoT network  ->  base station  ->  data broker  ->  consumers
//
// An honest analyst and an arbitrage attacker shop at the same broker,
// first under a naive steeply-discounted price sheet (the attacker wins),
// then under the Theorem 4.2 pricing (the attacker is forced honest).
// The broker's ledger shows revenue and the per-consumer privacy budget.
//
// Run: ./build/examples/data_marketplace
#include <iostream>
#include <memory>

#include "common/table.h"
#include "data/citypulse.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "dp/private_counting.h"
#include "iot/network.h"
#include "market/broker.h"
#include "market/consumer.h"
#include "pricing/arbitrage.h"
#include "pricing/pricing.h"

namespace {

using namespace prc;

void run_market(const data::Column& column, double pricing_exponent) {
  const std::size_t nodes = 8;
  Rng rng(5);
  auto node_data = data::partition_values(
      column.values(), nodes, data::PartitionStrategy::kRoundRobin, rng);
  iot::FlatNetwork network(std::move(node_data));
  dp::PrivateRangeCounter counter(network, {}, 1234);

  const pricing::VarianceModel model(column.size(), nodes);
  const query::AccuracySpec reference{0.1, 0.5};
  market::DataBroker broker(
      counter, std::make_unique<pricing::InverseVariancePricing>(
                   model, reference, 100.0, pricing_exponent));

  std::cout << "--- market under " << broker.pricing().name() << " ---\n";

  const query::RangeQuery range{column.quantile(0.3), column.quantile(0.9)};
  const query::AccuracySpec premium{0.05, 0.9};

  market::HonestConsumer analyst("analyst", broker);
  const auto honest = analyst.acquire(range, premium);
  std::cout << "analyst buys " << premium.to_string() << " for "
            << honest.total_cost << " -> answer " << honest.answer << "\n";

  market::ArbitrageAttacker attacker(
      "mallory", broker, pricing::AttackSimulator(model));
  const auto attack = attacker.acquire(range, premium);
  if (attacker.last_plan().profitable) {
    std::cout << "mallory ATTACKS: " << attack.queries_issued << " x "
              << attacker.last_plan().weaker_spec.to_string() << " for "
              << attack.total_cost << " total (saves "
              << attacker.last_plan().savings() * 100.0
              << "%) -> averaged answer " << attack.answer << "\n";
  } else {
    std::cout << "mallory finds no profitable attack and pays full price "
              << attack.total_cost << " -> answer " << attack.answer << "\n";
  }

  const auto& ledger = broker.ledger();
  TextTable audit({"consumer", "spend", "cumulative_eps'"});
  for (const char* who : {"analyst", "mallory"}) {
    audit.add_row({who, audit.format(ledger.consumer_spend(who)),
                   audit.format(ledger.consumer_epsilon(who))});
  }
  std::cout << "broker revenue " << ledger.total_revenue() << " over "
            << ledger.transaction_count() << " transactions\n"
            << audit.to_string() << "\n";
}

}  // namespace

int main() {
  const auto records = data::CityPulseGenerator().generate();
  const data::Dataset dataset(records);
  const auto& column = dataset.column(data::AirQualityIndex::kOzone);
  const double truth_selectivity = 0.6;
  std::cout << "marketplace over " << column.size()
            << " ozone readings (premium query covers ~"
            << truth_selectivity * 100 << "% of data)\n\n";

  // Naive steep discount: price ~ 1/V^2 -> Example 4.1 arbitrage succeeds.
  run_market(column, 2.0);
  // Theorem 4.2 pricing: price ~ 1/V -> no attack is profitable.
  run_market(column, 1.0);
  return 0;
}
