#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/table.h"

namespace prc {
namespace {

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(HistogramTest, BucketsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, EdgeValuesSaturate) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  h.add(1.0);  // == hi lands in last bin, not overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 2u);
}

TEST(HistogramTest, BinGeometry) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 3.25);
  EXPECT_THROW(h.bin_low(4), std::out_of_range);
}

TEST(HistogramTest, DensitySumsToOne) {
  Histogram h(0.0, 1.0, 8);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform());
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) sum += h.density(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, TotalVariationDistanceZeroForIdenticalLaws) {
  Histogram a(0.0, 1.0, 16), b(0.0, 1.0, 16);
  Rng rng(6);
  for (int i = 0; i < 50000; ++i) {
    a.add(rng.uniform());
    b.add(rng.uniform());
  }
  EXPECT_LT(a.total_variation_distance(b), 0.05);
  Histogram c(0.0, 2.0, 16);
  EXPECT_THROW(a.total_variation_distance(c), std::invalid_argument);
}

TEST(HistogramTest, TotalVariationDetectsDifferentLaws) {
  Histogram a(0.0, 1.0, 16), b(0.0, 1.0, 16);
  Rng rng(7);
  for (int i = 0; i < 50000; ++i) {
    a.add(rng.uniform());
    b.add(rng.uniform() * rng.uniform());  // skewed toward 0
  }
  EXPECT_GT(a.total_variation_distance(b), 0.2);
}

TEST(TextTableTest, AlignsAndFormats) {
  TextTable table({"p", "error"}, 3);
  table.add_numeric_row({0.1, 0.0321});
  table.add_row({"0.2", "low"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("p"), std::string::npos);
  EXPECT_NE(text.find("0.032"), std::string::npos);
  EXPECT_NE(text.find("low"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTableTest, RejectsBadRows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, CsvOutput) {
  TextTable table({"a", "b"}, 2);
  table.add_numeric_row({1.0, 2.0});
  EXPECT_EQ(table.to_csv(), "a,b\n1.00,2.00\n");
}

TEST(TextTableTest, CsvOutputQuotesStructuralCharacters) {
  TextTable table({"contract", "price"}, 2);
  table.add_row({"(alpha=0.05, delta=0.9)", "100"});
  table.add_row({"say \"hi\"", "5"});
  EXPECT_EQ(table.to_csv(),
            "contract,price\n\"(alpha=0.05, delta=0.9)\",100\n"
            "\"say \"\"hi\"\"\",5\n");
  // The emitted text parses back with the CSV reader.
  const auto parsed = parse_csv(table.to_csv());
  ASSERT_EQ(parsed.row_count(), 2u);
  EXPECT_EQ(parsed.field(0, 0), "(alpha=0.05, delta=0.9)");
  EXPECT_EQ(parsed.field(1, 0), "say \"hi\"");
}

}  // namespace
}  // namespace prc
